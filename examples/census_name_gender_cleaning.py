"""Cleaning a person registry: first names determine gender.

This example mirrors the paper's motivating workload (Table 1 / Table 3):
a directory of people written as ``Last, First M.`` where the *first name*
token — a partial attribute value — determines the gender.  Plain FDs cannot
express this; PFDs can, and the discovered PFDs find the miscoded rows.

Run with:  python examples/census_name_gender_cleaning.py
"""

from repro import DiscoveryConfig, PFDDiscoverer, detect_errors
from repro.constraints import FD
from repro.cleaning import cell_precision_recall
from repro.datagen import build_name_gender_table
from repro.discovery import rank_dependencies


def main() -> None:
    # A synthetic registry with 2% of the gender cells flipped; the generator
    # records exactly which cells it corrupted so we can score ourselves.
    table = build_name_gender_table(rows=800, seed=17, dirt_rate=0.02)
    relation = table.relation
    print(f"{relation.row_count} people, {len(table.error_cells)} corrupted gender cells")
    print(relation.pretty(limit=6))

    # A classical FD is useless here: full names are (almost) unique, so the
    # FD full_name -> gender holds trivially and flags nothing.
    fd = FD("full_name", "gender", relation.name)
    print(f"\nclassical FD {fd}: holds={fd.holds_on(relation)} (flags nothing)")

    # Discover PFDs: the first-name token determines the gender.
    config = DiscoveryConfig(min_support=4, noise_ratio=0.05, min_coverage=0.10)
    result = PFDDiscoverer(config).discover(relation)
    dependency = result.dependency_for(("full_name",), "gender")
    if dependency is None:
        print("no full_name -> gender dependency found; try a larger table")
        return
    print("\ndiscovered dependency:")
    print(dependency.pfd.describe() if len(dependency.pfd.tableau) <= 12
          else f"{dependency.pfd} (first rows)\n"
          + "\n".join("  " + r.render(('full_name',), ('gender',))
                      for r in dependency.pfd.tableau.rows[:12]))

    # Rank all discovered dependencies by trustworthiness (Section 4.5).
    print("\nranked dependencies:")
    for entry in rank_dependencies(result.dependencies, relation):
        print(f"  score={entry.score:.2f} coverage={entry.coverage:.2f} "
              f"rows={entry.tableau_size}  {entry.dependency}")

    # Detect the miscoded genders and score against the generator's truth.
    report = detect_errors(relation, [dependency.pfd])
    detected = {cell for cell in report.error_cells if cell.attribute == "gender"}
    metrics = cell_precision_recall(detected, table.error_cells.keys())
    print(f"\ndetected {len(detected)} suspicious gender cells: {metrics}")
    for error in report.errors[:8]:
        row = relation.row_dict(error.cell.row_id)
        print(f"  {row['full_name']:28s} gender={row['gender']} "
              f"suggested={error.suggested_value}")


if __name__ == "__main__":
    main()
