"""Reproduce the paper's evaluation tables and figures from the command line.

This drives the same experiment runners as the benchmark harness and prints
the reproduced rows/series next to a reminder of the paper's qualitative
claims.  A scale factor keeps the runtime laptop-friendly; raise it to get
closer to the paper's table sizes.

Run with:  python examples/reproduce_paper_experiments.py [scale]
"""

import sys

from repro.experiments import (
    run_efficiency,
    run_figure5,
    run_figure6,
    run_table3,
    run_table7,
    run_table8,
)


def main(scale: float = 0.3) -> None:
    print("=" * 78)
    print("Table 3 — real-world-style PFDs and the errors they uncover")
    print("=" * 78)
    print(run_table3(scale=scale).render())

    print()
    print("=" * 78)
    print("Table 7 — PFD vs FDep vs CFDFinder discovery on the 15-table suite")
    print("(paper: PFD finds more valid dependencies, ~78% precision / ~93% recall)")
    print("=" * 78)
    print(run_table7(scale=scale, run_multi_lhs=False).render())

    print()
    print("=" * 78)
    print("Table 8 — precision & coverage of validated PFDs")
    print("(paper: >97% precision for all three dependencies)")
    print("=" * 78)
    print(run_table8(scale=max(scale, 0.4)).render())

    print()
    print("=" * 78)
    print("Figure 5 — injected errors from outside the active domain")
    print("(paper: K up => precision up / recall down; error rate up => recall down)")
    print("=" * 78)
    rows = max(300, int(920 * scale))
    print(run_figure5(rows=rows).render())

    print()
    print("=" * 78)
    print("Figure 6 — injected errors from the active domain (similar curves)")
    print("=" * 78)
    print(run_figure6(rows=rows).render())

    print()
    print("=" * 78)
    print("Section 5.4 — discovery runtime scaling")
    print("=" * 78)
    print(run_efficiency(row_counts=(250, 500, 1000)).render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.3)
