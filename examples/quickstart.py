"""Quickstart: define a PFD, check it, discover PFDs, detect and repair errors.

Run with:  python examples/quickstart.py
"""

from repro import CleaningSession, DiscoveryConfig, Relation, make_pfd


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The paper's Table 2: a tiny zip/city table with one wrong city.
    # ------------------------------------------------------------------
    zips = Relation.from_rows(
        ["zip", "city"],
        [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("90003", "Los Angeles"),
            ("90004", "New York"),  # <- the erroneous cell s4[city]
        ],
        name="Zip",
    )
    print("Input table:")
    print(zips.pretty())

    # ------------------------------------------------------------------
    # 2. Write a PFD by hand: zip codes starting with 900 are Los Angeles
    #    (λ3 in the paper), and the variable form λ5: the first three digits
    #    of a zip code determine the city.
    # ------------------------------------------------------------------
    constant_pfd = make_pfd(
        "zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"}], "Zip"
    )
    variable_pfd = make_pfd("zip", "city", [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}], "Zip")

    for pfd in (constant_pfd, variable_pfd):
        print()
        print(pfd.describe())
        for violation in pfd.violations(zips):
            print("  violation:", violation)

    # ------------------------------------------------------------------
    # 3. Discover PFDs automatically (a slightly larger, dirtier table),
    #    through a CleaningSession so detection and repair below reuse the
    #    engine state discovery primes.
    # ------------------------------------------------------------------
    rows = []
    for prefix, city in (("900", "Los Angeles"), ("606", "Chicago"), ("100", "New York")):
        for index in range(12):
            rows.append((f"{prefix}{index:02d}", city))
    table = Relation.from_rows(["zip", "city"], rows, name="ZipBig")
    table.set_cell(5, "city", "Chicago")      # inject two errors
    table.set_cell(20, "city", "Los Angeles")

    session = CleaningSession(table, config=DiscoveryConfig(min_support=5, noise_ratio=0.1))
    result = session.discover()
    print()
    print(result.summary())
    for dependency in result.dependencies:
        print(dependency.pfd.describe())

    # ------------------------------------------------------------------
    # 4. Detect and repair the injected errors.  As Section 4.5 of the paper
    #    recommends, only the dependency a human would validate (zip -> city)
    #    is applied — discovery also proposes reverse dependencies whose
    #    repairs we would not want to trust blindly.
    # ------------------------------------------------------------------
    validated = result.dependency_for(("zip",), "city")
    assert validated is not None
    report = session.detect([validated.pfd])
    print()
    print(report.summary())

    repaired = session.repair([validated.pfd])
    print()
    print(repaired.summary())
    print("\nrow 5 after repair:", repaired.relation.row_dict(5))
    print("row 20 after repair:", repaired.relation.row_dict(20))
    print()
    print(session.stats().summary())


if __name__ == "__main__":
    main()
