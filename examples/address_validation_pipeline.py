"""An address-validation pipeline: zip prefixes determine city and state.

This example exercises the full library surface on the paper's second
motivating workload (Table 2 / Table 3's ZIP rows):

1. generate an address table and export/re-import it through CSV (the path a
   downstream user of the library would take with their own data);
2. profile the table (the zip column is recognized as a *code* column even
   though it is numeric);
3. discover PFDs, inspect constant vs generalized (variable) forms;
4. inject fresh errors at a controlled rate, detect them, repair them, and
   report precision/recall;
5. use the inference API to show that the generalized PFD implies the
   agreement-form of every constant PFD it replaced.

Run with:  python examples/address_validation_pipeline.py
"""

import io

from repro import DiscoveryConfig, PFDDiscoverer, detect_errors, repair_errors
from repro.cleaning import cell_precision_recall, inject_errors
from repro.core import PFD, PatternTableau, PatternTuple, WILDCARD
from repro.datagen import build_gov_addresses
from repro.dataset import profile_relation, read_csv, relation_to_csv_string
from repro.inference import implies


def main() -> None:
    # 1. Generate, round-trip through CSV.
    table = build_gov_addresses(rows=600, seed=23, dirt_rate=0.0)
    csv_text = relation_to_csv_string(table.relation)
    relation = read_csv(io.StringIO(csv_text), name="addresses")
    print(f"loaded {relation.row_count} addresses with columns {relation.attribute_names}")

    # 2. Profile: zip is a code column (kept), street is free text.
    profile = profile_relation(relation)
    for column in profile.columns:
        print(f"  {column.name:8s} role={column.role.value:12s} strategy={column.strategy}")

    # 3. Discover.
    config = DiscoveryConfig(min_support=5, noise_ratio=0.05, min_coverage=0.10)
    result = PFDDiscoverer(config).discover(relation)
    print()
    print(result.summary())
    zip_city = result.dependency_for(("zip",), "city")
    assert zip_city is not None
    print(zip_city.pfd.describe())

    # 4. Controlled injection -> detection -> repair.
    injected = inject_errors(relation, "city", error_rate=0.05, mode="active", seed=5)
    dirty = injected.relation
    rediscovered = PFDDiscoverer(config).discover(dirty)
    pfds = [d.pfd for d in rediscovered.dependencies if d.rhs in ("city", "state")]
    report = detect_errors(dirty, pfds)
    detected = {cell for cell in report.error_cells if cell.attribute == "city"}
    print(f"\ninjected {len(injected.errors)} city errors, detected {len(detected)}")
    print("  ", cell_precision_recall(detected, injected.error_cells))
    repaired = repair_errors(dirty, pfds)
    restored = sum(
        1
        for error in injected.errors
        if repaired.relation.cell(error.cell.row_id, "city") == error.original_value
    )
    print(f"  repaired {restored}/{len(injected.errors)} cells back to their true value")

    # 5. Inference: the generalized PFD implies agreement on every prefix.
    if zip_city.is_variable:
        constant_row = PatternTuple.from_mapping({"zip": r"{{900}}\D{2}", "city": WILDCARD})
        agreement_pfd = PFD(("zip",), ("city",), PatternTableau([constant_row]), "addresses")
        print(
            "\nvariable PFD implies '900xx zips agree on the city':",
            implies([zip_city.pfd], agreement_pfd),
        )


if __name__ == "__main__":
    main()
