"""The ``pfd-discover repair`` and ``pfd-discover clean`` subcommands, plus
the ``--stats`` routing through :class:`~repro.session.SessionStats`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core.pfd import make_pfd
from repro.core.serialization import save_pfds
from repro.dataset.csvio import read_csv, write_csv
from repro.dataset.relation import Relation


@pytest.fixture
def dirty_zip_csv(tmp_path):
    rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(4)] * 4
    rows.append(("90000", "Las Angeles"))  # minority typo inside the 90000 group
    relation = Relation.from_rows(["zip", "city"], rows, name="zips")
    path = tmp_path / "zips.csv"
    write_csv(relation, path)
    return path


def test_cli_repair_discovers_and_repairs(dirty_zip_csv, tmp_path, capsys):
    out_path = tmp_path / "repaired.csv"
    code = cli_main(
        ["repair", str(dirty_zip_csv), "--min-support", "2", "--noise", "0.1", "--output", str(out_path)]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "repairs applied" in output
    assert "verification:" in output
    assert out_path.exists()
    repaired = read_csv(out_path)
    assert "Las Angeles" not in repaired.column("city")


def test_cli_repair_load_and_stats(dirty_zip_csv, tmp_path, capsys):
    saved = tmp_path / "pfds.json"
    assert cli_main(
        ["discover", str(dirty_zip_csv), "--min-support", "2", "--noise", "0.1", "--save", str(saved)]
    ) == 0
    capsys.readouterr()
    code = cli_main(["repair", str(dirty_zip_csv), "--load", str(saved), "--stats"])
    assert code == 0
    output = capsys.readouterr().out
    assert "loaded" in output
    assert "session stats" in output
    assert "partition cache:" in output


def test_cli_clean_end_to_end_exit_zero(dirty_zip_csv, tmp_path, capsys):
    out_path = tmp_path / "cleaned.csv"
    report_path = tmp_path / "report.json"
    code = cli_main(
        [
            "clean", str(dirty_zip_csv),
            "--min-support", "2", "--noise", "0.1",
            "--output", str(out_path),
            "--report", str(report_path),
            "--stats",
        ]
    )
    assert code == 0  # every suspect cell was repaired
    output = capsys.readouterr().out
    assert "suspected errors" in output
    assert "repairs applied" in output
    assert "wrote repaired CSV to" in output
    assert "wrote JSON report to" in output
    assert "session stats" in output

    repaired = read_csv(out_path)
    assert "Las Angeles" not in repaired.column("city")

    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["clean"] is True
    assert report["remaining_errors"] == 0
    assert report["repairs_applied"] >= 1
    assert report["detected_errors"] >= report["repairs_applied"]
    assert report["stats"]["partition_misses"] >= 1
    assert report["output"] == str(out_path)


def test_cli_clean_default_output_path(dirty_zip_csv, capsys):
    code = cli_main(["clean", str(dirty_zip_csv), "--min-support", "2", "--noise", "0.1"])
    assert code == 0
    capsys.readouterr()
    default_output = dirty_zip_csv.with_suffix(".cleaned.csv")
    assert default_output.exists()


def test_cli_clean_exit_one_when_errors_remain(tmp_path, capsys):
    # A variable-row violation whose majority bucket does NOT match the RHS
    # pattern yields no repair suggestion: the suspect cell stays flagged
    # after repair, so clean reports "not clean" via exit code 1.
    relation = Relation.from_rows(
        ["city", "zip"],
        [
            ("Springfield", "ABCDE"),
            ("Springfield", "ABCDE"),
            ("Springfield", "10001"),
        ],
        name="towns",
    )
    csv_path = tmp_path / "towns.csv"
    write_csv(relation, csv_path)
    pfds_path = tmp_path / "pfds.json"
    save_pfds(
        pfds_path,
        [make_pfd("city", "zip", [{"city": "⊥", "zip": r"{{1000}}\D"}])],
    )
    code = cli_main(["clean", str(csv_path), "--load", str(pfds_path)])
    assert code == 1
    output = capsys.readouterr().out
    assert "suspect cell(s) remain" in output


def test_cli_clean_missing_input_exits_two(tmp_path, capsys):
    code = cli_main(["clean", str(tmp_path / "nope.csv")])
    assert code == 2
    assert capsys.readouterr().err.startswith("error:")


def test_cli_validate_stats_flag(dirty_zip_csv, tmp_path, capsys):
    saved = tmp_path / "pfds.json"
    assert cli_main(
        ["discover", str(dirty_zip_csv), "--min-support", "2", "--noise", "0.1", "--save", str(saved)]
    ) == 0
    capsys.readouterr()
    code = cli_main(["validate", str(dirty_zip_csv), "--load", str(saved), "--stats"])
    assert code == 0
    output = capsys.readouterr().out
    assert "coverage=" in output
    assert "session stats" in output
    assert "partition cache:" in output
