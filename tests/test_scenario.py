"""ScenarioSpec: declarative tables, error injection, and CRUD streams.

The scenario suite replaces hand-rolled generators with schema-driven specs.
Pinned here: spec validation, dict round-trips, deterministic builds, that
planted dependencies genuinely hold before error injection, the op-mix of
the mutation stream, the four-shape scenario matrix, and the CLI
``scenario`` / ``update`` / ``delete`` subcommands that consume the same
machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.datagen.scenario import (
    SCENARIO_MATRIX,
    ColumnSpec,
    ErrorProfile,
    OpMix,
    ScenarioSpec,
    load_scenario,
)
from repro.dataset.csvio import write_csv
from repro.dataset.mutations import DeleteOp, UpdateOp, UpsertOp
from repro.dataset.relation import Relation
from repro.exceptions import ReproError

_CLEAN_SPEC = ScenarioSpec(
    name="clean",
    rows=120,
    seed=7,
    columns=(
        ColumnSpec(name="code", pattern="@@###", cardinality=30),
        ColumnSpec(name="region", pattern="R#", cardinality=5,
                   determined_by="code", key_prefix=2),
    ),
    mix=OpMix(update=0.7, append=0.2, delete=0.1),
)


class TestSpecValidation:
    def test_column_needs_pattern_or_domain(self):
        with pytest.raises(ReproError):
            ColumnSpec(name="x")
        with pytest.raises(ReproError):
            ColumnSpec(name="x", pattern="#", domain=("a",))

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec(
                name="dup",
                columns=(
                    ColumnSpec(name="a", pattern="#"),
                    ColumnSpec(name="a", pattern="#"),
                ),
            )

    def test_unknown_determinant_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec(
                name="bad",
                columns=(ColumnSpec(name="a", pattern="#", determined_by="ghost"),),
            )

    def test_self_determination_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec(
                name="self",
                columns=(ColumnSpec(name="a", pattern="#", determined_by="a"),),
            )

    def test_zero_op_mix_rejected(self):
        with pytest.raises(ReproError):
            OpMix(update=0, append=0, delete=0)

    def test_error_rate_bounds(self):
        with pytest.raises(ReproError):
            ErrorProfile(rate=1.5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ReproError):
            ScenarioSpec.from_dict({"name": "x", "columns": [], "bogus": 1})


class TestBuild:
    def test_build_is_deterministic(self):
        a = _CLEAN_SPEC.build()
        b = _CLEAN_SPEC.build()
        assert list(a.relation.iter_rows()) == list(b.relation.iter_rows())

    def test_dict_round_trip_builds_identically(self):
        clone = ScenarioSpec.from_dict(_CLEAN_SPEC.to_dict())
        assert list(clone.build().relation.iter_rows()) == list(
            _CLEAN_SPEC.build().relation.iter_rows()
        )

    def test_planted_dependency_holds_on_clean_build(self):
        table = _CLEAN_SPEC.build()
        mapping = {}
        for row in table.relation.iter_rows():
            code, region = row
            assert mapping.setdefault(code[:2], region) == region
        assert table.true_dependencies == {(("code",), ("region",))}
        assert table.error_cells == {}

    def test_error_injection_records_originals(self):
        spec = ScenarioSpec(
            name="dirty",
            rows=200,
            seed=3,
            columns=(
                ColumnSpec(name="k", pattern="@@##", cardinality=40),
                ColumnSpec(name="v", pattern="V#", cardinality=6, determined_by="k"),
            ),
            errors=ErrorProfile(rate=0.1, kind="swap"),
        )
        table = spec.build()
        assert table.error_cells
        for cell, original in table.error_cells.items():
            assert table.relation.cell(cell.row_id, cell.attribute) != original
        clean = table.clean_relation()
        mapping = {}
        for row in clean.iter_rows():
            assert mapping.setdefault(row[0], row[1]) == row[1]

    def test_scale_shrinks_rows(self):
        assert _CLEAN_SPEC.build(scale=0.5).relation.row_count == 60

    def test_skewed_column_repeats_head_values(self):
        spec = ScenarioSpec(
            name="skew",
            rows=300,
            seed=11,
            columns=(ColumnSpec(name="a", pattern="@@@@", cardinality=50, skew=2.0),),
        )
        relation = spec.build().relation
        counts = {}
        for row in relation.iter_rows():
            counts[row[0]] = counts.get(row[0], 0) + 1
        assert max(counts.values()) > 300 // 50 * 3  # far above uniform


class TestMutationStream:
    def test_stream_is_deterministic(self):
        table = _CLEAN_SPEC.build()
        a = list(_CLEAN_SPEC.mutation_stream(table.relation, operations=30))
        b = list(_CLEAN_SPEC.mutation_stream(table.relation, operations=30))
        assert a == b

    def test_stream_respects_op_mix(self):
        table = _CLEAN_SPEC.build()
        kinds = {"update": 0, "append": 0, "delete": 0}
        for batch in _CLEAN_SPEC.mutation_stream(
            table.relation, operations=300, batch_size=10
        ):
            for op in batch:
                if isinstance(op, UpdateOp):
                    kinds["update"] += 1
                elif isinstance(op, DeleteOp):
                    kinds["delete"] += 1
                else:
                    assert isinstance(op, UpsertOp)
                    kinds["append"] += 1
        assert sum(kinds.values()) == 300
        assert kinds["update"] > kinds["append"] > kinds["delete"] > 0

    def test_deleted_rows_are_never_retargeted(self):
        table = _CLEAN_SPEC.build()
        deleted = set()
        for batch in _CLEAN_SPEC.mutation_stream(table.relation, operations=200):
            for op in batch:
                if isinstance(op, UpdateOp):
                    assert op.row_id not in deleted
                elif isinstance(op, DeleteOp):
                    for row_id in op.row_ids:
                        assert row_id not in deleted
                        deleted.add(row_id)

    def test_clean_stream_applies_cleanly(self):
        """A zero-error-rate stream keeps the planted dependency intact."""
        table = _CLEAN_SPEC.build()
        relation = table.relation
        for batch in _CLEAN_SPEC.mutation_stream(relation, operations=60, batch_size=10):
            relation.apply(batch)
        mapping = {}
        for row in relation.iter_rows():
            code, region = row
            if not code:
                continue  # tombstoned
            assert mapping.setdefault(code[:2], region) == region


class TestScenarioMatrix:
    def test_matrix_has_the_four_canonical_shapes(self):
        assert set(SCENARIO_MATRIX) == {
            "tall_narrow", "wide_sparse", "high_cardinality", "adversarial_free_start",
        }

    @pytest.mark.parametrize("name", sorted(SCENARIO_MATRIX))
    def test_each_shape_builds_and_is_update_heavy(self, name):
        spec = SCENARIO_MATRIX[name]
        table = spec.build(scale=0.1)
        assert table.relation.row_count >= 1
        assert spec.mix.weights()[0] == pytest.approx(0.7)
        assert table.true_dependencies


class TestLoadScenario:
    def test_load_json_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_CLEAN_SPEC.to_dict()), encoding="utf-8")
        spec = load_scenario(path)
        assert spec.name == "clean"
        assert list(spec.build().relation.iter_rows()) == list(
            _CLEAN_SPEC.build().relation.iter_rows()
        )

    def test_load_yaml_spec(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(yaml.safe_dump(_CLEAN_SPEC.to_dict()), encoding="utf-8")
        assert load_scenario(path).name == "clean"

    def test_bad_json_is_repro_error(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError):
            load_scenario(path)


class TestCliScenario:
    def test_clean_scenario_exits_zero(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_CLEAN_SPEC.to_dict()), encoding="utf-8")
        report_path = tmp_path / "report.json"
        exit_code = cli_main(
            ["scenario", str(path), "--operations", "30", "--batch-size", "10",
             "--min-support", "4", "--report", str(report_path)]
        )
        assert exit_code == 0
        report = json.loads(report_path.read_text())
        assert report["clean"] is True
        assert report["operations"] == 30
        assert sum(report["op_counts"].values()) == 30

    def test_matrix_name_resolves(self, tmp_path):
        report_path = tmp_path / "report.json"
        exit_code = cli_main(
            ["scenario", "tall_narrow", "--scale", "0.1", "--operations", "10",
             "--min-support", "4", "--report", str(report_path)]
        )
        assert exit_code in (0, 1)  # dirt injection may or may not surface
        report = json.loads(report_path.read_text())
        assert report["scenario"] == "tall_narrow"


class TestCliUpdateDelete:
    @pytest.fixture
    def base_csv(self, tmp_path):
        rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(4)] * 4
        relation = Relation.from_rows(["zip", "city"], rows, name="base")
        path = tmp_path / "base.csv"
        write_csv(relation, path)
        return path

    def test_update_reports_delta_errors(self, tmp_path, base_csv):
        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps({"cells": [[0, "city", "Las Angeles"]]}))
        report_path = tmp_path / "delta.json"
        exit_code = cli_main(
            ["update", str(base_csv), "--ops", str(ops),
             "--min-support", "2", "--noise", "0.1",
             "--report", str(report_path)]
        )
        assert exit_code == 1
        report = json.loads(report_path.read_text())
        assert report["kind"] == "update"
        assert report["rows_updated"] == 1
        assert report["error_rows"] == [0]
        assert report["errors"][0]["suggested"] == "Los Angeles"
        assert report["clean"] is False

    def test_update_via_cell_flags(self, tmp_path, base_csv):
        report_path = tmp_path / "delta.json"
        exit_code = cli_main(
            ["update", str(base_csv), "--cell", "0", "city", "Los Angeles",
             "--min-support", "2", "--report", str(report_path)]
        )
        assert exit_code == 0
        report = json.loads(report_path.read_text())
        assert report["rows_updated"] == 0  # no-op write
        assert report["clean"] is True

    def test_update_without_ops_exits_two(self, base_csv):
        assert cli_main(["update", str(base_csv)]) == 2

    def test_delete_rows_is_clean_delta(self, tmp_path, base_csv):
        report_path = tmp_path / "delta.json"
        merged = tmp_path / "after.csv"
        exit_code = cli_main(
            ["delete", str(base_csv), "--rows", "1,3",
             "--min-support", "2",
             "--output", str(merged), "--report", str(report_path)]
        )
        assert exit_code == 0
        report = json.loads(report_path.read_text())
        assert report["kind"] == "delete"
        assert report["rows_deleted"] == 2
        assert report["requested_rows"] == [1, 3]
        assert report["clean"] is True
        lines = merged.read_text().splitlines()
        assert lines[2] == ","  # row 1 tombstoned to empty cells

    def test_delete_bad_rows_exits_two(self, base_csv):
        assert cli_main(["delete", str(base_csv), "--rows", "1,x"]) == 2
        assert cli_main(["delete", str(base_csv), "--rows", "999"]) == 2
