"""Tests for pattern induction from example strings."""

from repro.patterns.alphabet import CharClass
from repro.patterns.induction import (
    column_shape_histogram,
    dominant_shape,
    induce_pattern,
    induce_prefix_pattern,
    signature,
    string_runs,
)
from repro.patterns.matcher import matches


class TestRuns:
    def test_simple_runs(self):
        runs = string_runs("John ")
        assert [(run.cls, run.text) for run in runs] == [
            (CharClass.UPPER, "J"),
            (CharClass.LOWER, "ohn"),
            (CharClass.SYMBOL, " "),
        ]

    def test_empty_string(self):
        assert string_runs("") == ()

    def test_signature(self):
        assert signature("90001") == (CharClass.DIGIT,)
        assert signature("F-9-107") == (
            CharClass.UPPER,
            CharClass.SYMBOL,
            CharClass.DIGIT,
            CharClass.SYMBOL,
            CharClass.DIGIT,
        )


class TestInducePattern:
    def test_first_names(self):
        pattern = induce_pattern(["John ", "Susan ", "Tayseer "])
        assert pattern is not None
        for value in ("John ", "Susan ", "Tayseer ", "Maria "):
            assert matches(pattern, value)
        assert not matches(pattern, "john ")

    def test_zip_codes(self):
        pattern = induce_pattern(["90001", "60601", "10001"], keep_literals=False)
        assert pattern is not None
        assert pattern.to_pattern_string() == r"\D{5}"

    def test_literals_kept_when_identical(self):
        pattern = induce_pattern(["CHEMBL12", "CHEMBL99"])
        assert pattern is not None
        text = pattern.to_pattern_string()
        assert text.startswith("CHEMBL")
        assert matches(pattern, "CHEMBL42")

    def test_incompatible_shapes_return_none(self):
        assert induce_pattern(["90001", "John Smith"]) is None

    def test_single_value(self):
        pattern = induce_pattern(["90001"])
        assert pattern is not None
        assert matches(pattern, "90001")

    def test_empty_values_ignored(self):
        assert induce_pattern(["", ""]) is None

    def test_induced_pattern_covers_all_inputs(self):
        values = ["F-9-107", "H-2-993", "E-5-221"]
        pattern = induce_pattern(values, keep_literals=False)
        assert pattern is not None
        for value in values:
            assert matches(pattern, value)

    def test_varying_lengths_use_plus(self):
        pattern = induce_pattern(["ab", "abcd"], keep_literals=False)
        assert pattern is not None
        assert matches(pattern, "abcdef")
        assert not matches(pattern, "")


class TestPrefixInduction:
    def test_prefix_pattern(self):
        values = ["John Charles", "Mary Poppins"]
        pattern = induce_prefix_pattern(values, [5, 5], keep_literals=False)
        assert pattern is not None
        # Both prefixes are "Xxxx " so the induced pattern is \LU\LL{3}\S.
        assert matches(pattern, "John ")
        assert matches(pattern, "Anna ")
        assert not matches(pattern, "susan")
        assert not matches(pattern, "Susan")

    def test_length_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            induce_prefix_pattern(["abc"], [1, 2])


class TestColumnShapes:
    def test_histogram(self):
        histogram = column_shape_histogram(["90001", "60601", "abc", ""])
        assert histogram[(CharClass.DIGIT,)] == 2
        assert histogram[(CharClass.LOWER,)] == 1

    def test_dominant_shape(self):
        values = ["90001"] * 8 + ["abc"] * 2
        assert dominant_shape(values) == (CharClass.DIGIT,)

    def test_dominant_shape_below_threshold(self):
        values = ["90001"] * 4 + ["abc"] * 3 + ["A-1"] * 3
        assert dominant_shape(values, minimum_fraction=0.6) is None

    def test_dominant_shape_empty(self):
        assert dominant_shape([]) is None
