"""Tests for the restriction/generalization relation on constrained patterns."""

import pytest

from repro.patterns.containment import (
    is_generalization_of,
    is_restriction_of,
    patterns_compatible,
)


class TestPaperExamples:
    def test_constant_first_name_restricts_variable_first_name(self):
        # {{John }}\A* is a restriction of {{\LU\LL*\ }}\A* (Example 3 spirit).
        assert is_restriction_of(r"{{John\ }}\A*", r"{{\LU\LL*\ }}\A*")
        assert not is_restriction_of(r"{{\LU\LL*\ }}\A*", r"{{John\ }}\A*")

    def test_zip_example_4(self):
        # Q = \D{5}, Q' = \D* with the whole value constrained.
        assert is_restriction_of(r"{{\D{5}}}", r"{{\D*}}")
        assert not is_restriction_of(r"{{\D*}}", r"{{\D{5}}}")

    def test_zip_prefix_restrictions(self):
        assert is_restriction_of(r"{{900}}\D{2}", r"{{\D{3}}}\D{2}")
        assert not is_restriction_of(r"{{\D{3}}}\D{2}", r"{{900}}\D{2}")

    def test_constant_whole_value_restricts_wildcard_like_pattern(self):
        # A constant pins the whole value, so it restricts {{\A*}} (the ⊥ cell).
        assert is_restriction_of("M", r"{{\A*}}")
        assert is_restriction_of(r"Los\ Angeles", r"{{\A*}}")

    def test_partial_constraint_does_not_restrict_whole_value_equality(self):
        # Agreeing on the first name does not force whole-name equality.
        assert not is_restriction_of(r"{{John\ }}\A*", r"{{\A*}}")

    def test_language_mismatch_blocks_restriction(self):
        # {{900}}\LL* generates strings outside \D{5}, so it cannot restrict it.
        assert not is_restriction_of(r"{{900}}\LL+", r"{{\D{3}}}\D{2}")


class TestGeneralProperties:
    @pytest.mark.parametrize(
        "pattern",
        [r"{{900}}\D{2}", r"{{John\ }}\A*", r"{{\LU\LL*\ }}\A*", r"{{\A*}}", "M"],
    )
    def test_reflexivity(self, pattern):
        assert is_restriction_of(pattern, pattern)

    def test_transitivity_on_chain(self):
        chain = [r"{{900}}\D{2}", r"{{\D{3}}}\D{2}", r"{{\D{3}}}\A*"]
        assert is_restriction_of(chain[0], chain[1])
        assert is_restriction_of(chain[1], chain[2])
        assert is_restriction_of(chain[0], chain[2])

    def test_generalization_is_the_inverse(self):
        assert is_generalization_of(r"{{\LU\LL*\ }}\A*", r"{{John\ }}\A*")
        assert not is_generalization_of(r"{{John\ }}\A*", r"{{\LU\LL*\ }}\A*")

    def test_compatibility(self):
        assert patterns_compatible(r"{{John\ }}\A*", r"{{\LU\LL*\ }}\A*")
        assert patterns_compatible(r"{{\LU\LL*\ }}\A*", r"{{John\ }}\A*")
        assert not patterns_compatible(r"{{John\ }}\A*", r"{{900}}\D{2}")

    def test_unconstrained_general_pattern(self):
        # A pattern without a constrained group constrains nothing, so any
        # pattern whose language is contained restricts it.
        assert is_restriction_of(r"{{900}}\D{2}", r"\D{5}")
        assert not is_restriction_of(r"{{900}}\LL{2}", r"\D{5}")

    def test_unconstrained_specific_pattern(self):
        # An unconstrained specific pattern only restricts a constrained
        # general one when the general group is a constant.
        assert is_restriction_of(r"900\D{2}", r"{{900}}\D{2}")
        assert not is_restriction_of(r"\D{5}", r"{{\D{3}}}\D{2}")
