"""Tests for the synthetic dataset generators and the 15-table suite."""


from repro.constraints.fd import FD
from repro.datagen import (
    TABLE_IDS,
    benchmark_suite,
    build_gov_contacts,
    build_name_gender_table,
    build_table,
    build_udw_alumni,
    build_zip_state_table,
    dependency,
    materialize_suite,
    pools,
)
from repro.dataset.csvio import read_csv
from repro.dataset.schema import AttributeRole


class TestPools:
    def test_name_oracle_is_consistent_with_pools(self):
        oracle = pools.first_name_gender_oracle()
        for name in pools.MALE_FIRST_NAMES:
            assert oracle[name] == "M"
        for name in pools.FEMALE_FIRST_NAMES:
            assert oracle[name] == "F"
        for name in pools.UNISEX_FIRST_NAMES:
            assert name not in oracle

    def test_zip_oracles(self):
        assert pools.zip_prefix_city_oracle()["900"] == "Los Angeles"
        assert pools.zip_prefix_state_oracle()["606"] == "IL"

    def test_every_state_has_at_least_two_area_codes(self):
        by_state = {}
        for code, state in pools.AREA_CODES.items():
            by_state.setdefault(state, []).append(code)
        assert all(len(codes) >= 2 for codes in by_state.values())


class TestGenerators:
    def test_determinism(self):
        first = build_gov_contacts(rows=100, seed=5)
        second = build_gov_contacts(rows=100, seed=5)
        assert list(first.relation.iter_rows()) == list(second.relation.iter_rows())
        assert first.error_cells == second.error_cells

    def test_error_cells_record_originals(self):
        table = build_udw_alumni(rows=300, seed=9, dirt_rate=0.05)
        assert table.error_cells
        for cell, original in table.error_cells.items():
            assert table.relation.cell(cell.row_id, cell.attribute) != original

    def test_clean_relation_restores_truth(self):
        table = build_udw_alumni(rows=300, seed=9, dirt_rate=0.05)
        clean = table.clean_relation()
        for cell, original in table.error_cells.items():
            assert clean.cell(cell.row_id, cell.attribute) == original

    def test_true_dependencies_hold_on_clean_data(self):
        table = build_udw_alumni(rows=400, seed=3, dirt_rate=0.0)
        clean = table.clean_relation()
        # Full-value embedded FDs from the ground truth that do not rely on
        # partial values must hold exactly on clean data.
        assert FD("city", "state").holds_on(clean)

    def test_zero_dirt_rate(self):
        table = build_gov_contacts(rows=120, seed=2, dirt_rate=0.0)
        assert table.error_cells == {}

    def test_dependency_helper(self):
        assert dependency("b", "a") == (("b",), ("a",))
        assert dependency(["b", "a"], "c") == (("a", "b"), ("c",))

    def test_zip_state_table_is_clean_and_regular(self):
        table = build_zip_state_table(rows=500)
        assert table.error_cells == {}
        for zip_code, state in table.relation.iter_rows():
            assert len(zip_code) == 5 and zip_code.isdigit()
            assert pools.zip_prefix_state_oracle()[zip_code[:3]] == state

    def test_name_gender_table_format(self):
        table = build_name_gender_table(rows=200, dirt_rate=0.0)
        for name, gender in table.relation.iter_rows():
            assert ", " in name
            assert gender in ("M", "F")


class TestSuite:
    def test_all_fifteen_tables(self):
        suite = benchmark_suite(scale=0.1)
        assert set(suite) == set(TABLE_IDS)
        assert len(suite) == 15
        for table_id, table in suite.items():
            assert table.name == table_id
            assert table.relation.row_count >= 40
            assert table.true_dependencies
            assert table.repository in ("GOV", "CHE", "UDW")

    def test_scale_controls_row_count(self):
        small = build_table("T1", scale=0.1)
        large = build_table("T1", scale=0.5)
        assert large.row_count > small.row_count

    def test_quantitative_columns_declared(self):
        suite = benchmark_suite(scale=0.1, table_ids=("T5", "T9", "T15"))
        assert suite["T5"].relation.schema.role("amount") is AttributeRole.QUANTITATIVE
        assert suite["T9"].relation.schema.role("standard_value") is AttributeRole.QUANTITATIVE
        assert suite["T15"].relation.schema.role("salary") is AttributeRole.QUANTITATIVE

    def test_materialize_suite(self, tmp_path):
        paths = materialize_suite(tmp_path, scale=0.1)
        assert len(paths) == 15
        roundtrip = read_csv(paths[0])
        assert roundtrip.row_count >= 40

    def test_dirt_rate_override(self):
        clean = build_table("T2", scale=0.1, dirt_rate=0.0)
        dirty = build_table("T2", scale=0.1, dirt_rate=0.1)
        assert not clean.error_cells
        assert dirty.error_cells
