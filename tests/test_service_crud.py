"""Service-level CRUD: /update + /delete semantics and torn-report safety.

The mutation endpoints share one report schema with ``ingest`` (rows_before,
rows_updated/rows_deleted/rows_appended, changed_rows, errors, clean), mirror
every successful batch into the durable registry with a full atomic rewrite,
and — because reports are assembled under the tenant's writer lock — can
never hand a concurrent reader a torn view (half pre-update, half post).
"""

from __future__ import annotations

import threading

import pytest

from repro import DiscoveryConfig
from repro.exceptions import ServiceError
from repro.service import CleaningService, ConstraintRegistry

CONFIG = DiscoveryConfig(min_support=4)


def _zip_rows():
    return [[f"{90000 + i:05d}", "Los Angeles"] for i in range(8)] + [
        [f"{10000 + i:05d}", "New York"] for i in range(8)
    ]


@pytest.fixture
def service(tmp_path):
    registry = ConstraintRegistry(tmp_path / "registry")
    with CleaningService(registry, max_sessions=4, config=CONFIG) as svc:
        svc.load_tenant("acme", columns=["zip", "city"], rows=_zip_rows())
        svc.discover("acme")
        yield svc


class TestUpdateEndpoint:
    def test_update_reports_only_touched_errors(self, service):
        doc = service.update("acme", {"cells": [[0, "city", "New York"]]})
        assert doc["kind"] == "update"
        assert doc["rows_before"] == 16
        assert doc["rows_updated"] == 1
        assert doc["rows_deleted"] == 0
        assert doc["rows_appended"] == 0
        assert doc["changed_rows"] == [0]
        assert doc["clean"] is False
        # Both directions of the zip<->city dependency flag the flipped row —
        # and nothing else.
        assert {entry["row"] for entry in doc["errors"]} == {0}
        assert any(
            entry["attribute"] == "city" and entry["suggested"] == "Los Angeles"
            for entry in doc["errors"]
        )

    def test_update_mirrors_durably(self, service):
        service.update("acme", {"cells": [[0, "city", "Chicago"]]})
        persisted = service.registry.load_data("acme")
        assert persisted.cell(0, "city") == "Chicago"

    def test_noop_update_is_clean_and_reports_zero_rows(self, service):
        doc = service.update("acme", {"cells": [[0, "city", "Los Angeles"]]})
        assert doc["rows_updated"] == 0
        assert doc["clean"] is True
        assert doc["changed_rows"] == []

    def test_mixed_document_applies_all_op_kinds(self, service):
        doc = service.update(
            "acme",
            {
                "cells": [[1, "city", "New York"]],
                "delete": [2],
                "rows": [["90020", "Los Angeles"]],
            },
        )
        assert doc["rows_updated"] == 1
        assert doc["rows_deleted"] == 1
        assert doc["rows_appended"] == 1
        assert set(doc["changed_rows"]) == {1, 2, 16}

    def test_bad_document_is_service_error(self, service):
        with pytest.raises(ServiceError):
            service.update("acme", {})
        with pytest.raises(ServiceError):
            service.update("acme", {"cells": [[0, "city"]]})
        with pytest.raises(ServiceError):
            service.update("acme", {"cells": [[99, "city", "x"]]})


class TestDeleteEndpoint:
    def test_delete_tombstones_and_mirrors(self, service):
        doc = service.delete_rows("acme", [0, 3])
        assert doc["kind"] == "delete"
        assert doc["rows_deleted"] == 2
        assert doc["changed_rows"] == [0, 3]
        assert doc["clean"] is True
        persisted = service.registry.load_data("acme")
        assert persisted.row(0) == ("", "")
        assert persisted.row_count == 16

    def test_delete_requires_row_list(self, service):
        with pytest.raises(ServiceError):
            service.delete_rows("acme", [])
        with pytest.raises(ServiceError):
            service.delete_rows("acme", None)

    def test_deleting_the_minority_row_cleans_the_class(self, service):
        # Introduce an error, then delete the offending row: its class heals.
        doc = service.update("acme", {"rows": [["90050", "New York"]]})
        assert doc["clean"] is False
        doc = service.delete_rows("acme", [16])
        assert doc["clean"] is True


class TestTornReports:
    def test_concurrent_readers_never_see_torn_state(self, service):
        """A writer flips row 0 between its clean and dirty value while
        readers hammer ``detect``.  Every reader response must describe one
        of the two consistent states — never a mixture."""
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            for i in range(30):
                value = "New York" if i % 2 == 0 else "Los Angeles"
                service.update("acme", {"cells": [[0, "city", value]]})
            stop.set()

        def reader():
            while not stop.is_set():
                doc = service.detect("acme")
                errors = doc["errors"]
                if doc["error_count"] != len(errors):
                    failures.append("error_count disagrees with errors list")
                if doc["clean"] != (len(errors) == 0):
                    failures.append("clean flag disagrees with errors")
                rows = {entry["row"] for entry in errors}
                if rows not in (set(), {0}):
                    failures.append(f"unexpected error rows {rows}")

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=60)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
        assert not failures, failures[:5]
        # The final state is deterministic: 30 flips end on "Los Angeles".
        assert service.detect("acme")["clean"] is True
