"""Tests for the engine's set-at-a-time tier.

:meth:`PatternEvaluator.match_column_many` must agree exactly with the
per-pattern path, issue one shared-DFA scan per distinct value regardless of
the pattern-set size, grow incrementally as new patterns join a column's set,
seed later per-pattern calls from its masks, and fall back transparently for
single patterns, free-start patterns, and blown state budgets — and the
priming threaded through PFD evaluation, error detection, and ranking must
never change any result.
"""

from __future__ import annotations

import gc
import weakref

from hypothesis import given, settings, strategies as st

from repro.cleaning.detector import detect_errors
from repro.core.pfd import gather_tableau_patterns, make_pfd, prime_for_pfds
from repro.dataset.relation import Relation
from repro.engine.dictionary import DictionaryColumn
from repro.engine.evaluator import PatternEvaluator
from repro.patterns.matcher import compile_pattern

from test_patterns_properties import patterns

ZIPS = ["90001", "90002", "10001", "10002", "60601", "Chicago", ""]
PATTERNS = [r"{{900}}\D{2}", r"{{100}}\D{2}", r"{{606}}\D{2}", r"\LU\LL*"]


def _column() -> DictionaryColumn:
    return DictionaryColumn.from_values(ZIPS * 3, attribute="zip")


class TestMatchColumnMany:
    def test_masks_agree_with_per_pattern_matching(self):
        column = _column()
        match_set = PatternEvaluator().match_column_many(PATTERNS, column)
        for pattern in PATTERNS:
            compiled = compile_pattern(pattern)
            assert match_set.matched_mask(pattern) == [
                compiled.matches(value) for value in column.values
            ]

    def test_one_scan_per_distinct_value_regardless_of_set_size(self):
        column = _column()
        evaluator = PatternEvaluator()
        evaluator.match_column_many(PATTERNS, column)
        assert evaluator.multi_scans == column.distinct_count
        assert evaluator.match_calls == 0  # no per-pattern matching at all
        # Doubling the set size adds one more scan per distinct value, not
        # one per (pattern, value).
        more = PATTERNS + [r"{{200}}\D{2}", r"{{300}}\D{2}", r"\D{5}", r"\LU+"]
        evaluator.match_column_many(more, column)
        assert evaluator.multi_scans == 2 * column.distinct_count

    def test_incremental_extension_reuses_the_memoized_set(self):
        column = _column()
        evaluator = PatternEvaluator()
        first = evaluator.match_column_many(PATTERNS[:2], column)
        second = evaluator.match_column_many(PATTERNS, column)
        assert second is first
        assert first.pattern_count == len(PATTERNS)
        for pattern in PATTERNS:
            assert first.matched_mask(pattern) == [
                compile_pattern(pattern).matches(value) for value in column.values
            ]
        # Re-requesting a known subset is pure cache.
        scans = evaluator.multi_scans
        evaluator.match_column_many(PATTERNS[1:3], column)
        assert evaluator.multi_scans == scans

    def test_free_start_patterns_take_the_per_pattern_fallback(self):
        column = _column()
        evaluator = PatternEvaluator()
        mixed = PATTERNS + [r"{{\A*}}", r"\A*\S{{001}}\A*"]
        match_set = evaluator.match_column_many(mixed, column)
        assert evaluator.multi_scans == column.distinct_count  # DFA for the anchored 4
        assert evaluator.multi_fallbacks == 2
        for pattern in mixed:
            assert match_set.matched_mask(pattern) == [
                compile_pattern(pattern).matches(value) for value in column.values
            ]

    def test_single_pattern_set_uses_the_per_pattern_path(self):
        column = _column()
        evaluator = PatternEvaluator()
        match_set = evaluator.match_column_many(PATTERNS[:1], column)
        assert evaluator.multi_scans == 0
        assert evaluator.multi_fallbacks == 1
        assert match_set.matched_mask(PATTERNS[0]) == [
            compile_pattern(PATTERNS[0]).matches(value) for value in column.values
        ]

    def test_blown_state_budget_falls_back_per_pattern(self):
        column = _column()
        evaluator = PatternEvaluator()
        evaluator.state_budget = 2  # force StateBudgetExceeded -> None
        match_set = evaluator.match_column_many(PATTERNS, column)
        assert evaluator.multi_scans == 0
        assert evaluator.multi_fallbacks == len(PATTERNS)
        for pattern in PATTERNS:
            assert match_set.matched_mask(pattern) == [
                compile_pattern(pattern).matches(value) for value in column.values
            ]

    def test_set_queries_broadcast_through_codes(self):
        column = _column()
        match_set = PatternEvaluator().match_column_many(PATTERNS, column)
        compiled = compile_pattern(PATTERNS[0])
        expected_rows = [
            row_id
            for row_id, code in enumerate(column.codes)
            if compiled.matches(column.values[code])
        ]
        assert match_set.matching_rows(PATTERNS[0]) == expected_rows
        assert match_set.match_count(PATTERNS[0]) == len(expected_rows)
        assert set(match_set.matching_patterns(column.code_of("90001"))) == {
            compile_pattern(r"{{900}}\D{2}")
        }
        assert set(match_set.matching_patterns(column.code_of("Chicago"))) == {
            compile_pattern(r"\LU\LL*")
        }

    def test_memo_does_not_pin_dead_columns(self):
        evaluator = PatternEvaluator()
        column = DictionaryColumn.from_values(["a", "b"])
        ref = weakref.ref(column)
        evaluator.match_column_many([r"\LL", r"\LU"], column)
        del column
        gc.collect()
        assert ref() is None


class TestSeededMatchColumn:
    def test_match_column_is_seeded_from_the_masks(self):
        column = _column()
        evaluator = PatternEvaluator()
        match_set = evaluator.match_column_many(PATTERNS, column)
        before = evaluator.match_calls
        outcome = evaluator.match_column(PATTERNS[0], column)
        # Constrained-part extraction ran only on the matching distinct values.
        matched = sum(match_set.matched_mask(PATTERNS[0]))
        assert evaluator.match_calls - before == matched
        reference = PatternEvaluator().match_column(PATTERNS[0], column)
        assert [r.matched for r in outcome.results] == [
            r.matched for r in reference.results
        ]
        assert [r.constrained_value for r in outcome.results] == [
            r.constrained_value for r in reference.results
        ]

    def test_seeded_and_unseeded_results_are_interchangeable(self):
        column = _column()
        evaluator = PatternEvaluator()
        evaluator.match_column_many(PATTERNS, column)
        for pattern in PATTERNS:
            seeded = evaluator.match_column(pattern, column)
            plain = PatternEvaluator().match_column(pattern, column)
            assert seeded.results == plain.results


class TestPrimedEvaluation:
    def _relation(self) -> Relation:
        rows = [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("10001", "New York"),
            ("10002", "New York"),
            ("60601", "Chicago"),
            ("60602", "Springfield"),  # violates the 606 row
        ] * 3
        return Relation.from_rows(["zip", "city"], rows, name="zips")

    def _pfd(self):
        return make_pfd(
            "zip",
            "city",
            [
                {"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"},
                {"zip": r"{{100}}\D{2}", "city": r"New\ York"},
                {"zip": r"{{606}}\D{2}", "city": r"Chicago"},
            ],
            relation_name="zips",
        )

    def test_gather_collects_lhs_and_variable_rhs_patterns_only(self):
        pfd = self._pfd()
        gathered = gather_tableau_patterns([pfd])
        assert {p.to_pattern_string() for p in gathered["zip"]} == {
            r"{{900}}\D{2}",
            r"{{100}}\D{2}",
            r"{{606}}\D{2}",
        }
        # All rows are constant: their RHS is checked by equality, never
        # matched, so nothing is gathered for the RHS attribute.
        assert "city" not in gathered

    def test_violations_are_identical_with_and_without_the_shared_dfa(self):
        relation = self._relation()
        pfd = self._pfd()
        fast = PatternEvaluator()
        slow = PatternEvaluator()
        slow.state_budget = 2  # per-pattern fallback everywhere
        fast_violations = pfd.violations(relation, evaluator=fast)
        slow_violations = pfd.violations(relation, evaluator=slow)
        assert fast.multi_scans > 0
        assert slow.multi_scans == 0
        assert [v.cells for v in fast_violations] == [v.cells for v in slow_violations]
        assert [v.suspect_cells for v in fast_violations] == [
            v.suspect_cells for v in slow_violations
        ]
        assert pfd.coverage(relation, evaluator=fast) == pfd.coverage(
            relation, evaluator=slow
        )

    def test_prime_for_pfds_batches_sibling_pfds_on_one_column(self):
        relation = self._relation()
        first = make_pfd(
            "zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"}]
        )
        second = make_pfd(
            "zip", "city", [{"zip": r"{{100}}\D{2}", "city": r"New\ York"}]
        )
        evaluator = PatternEvaluator()
        prime_for_pfds(relation, [first, second], evaluator)
        # Two sibling one-row PFDs share one scan per distinct zip value.
        assert evaluator.multi_scans == relation.dictionary("zip").distinct_count

    def test_detection_report_is_unchanged_by_the_fast_path(self):
        relation = self._relation()
        pfd = self._pfd()
        fast = PatternEvaluator()
        slow = PatternEvaluator()
        slow.state_budget = 2
        fast_report = detect_errors(relation, [pfd], evaluator=fast)
        slow_report = detect_errors(relation, [pfd], evaluator=slow)
        assert fast.multi_scans > 0
        assert fast_report.error_cells == slow_report.error_cells
        assert [e.suggested_value for e in fast_report.errors] == [
            e.suggested_value for e in slow_report.errors
        ]


# ---------------------------------------------------------------------------
# Property: the batch tier agrees with per-pattern matching, fallbacks and all
# ---------------------------------------------------------------------------

_cell_values = st.lists(
    st.text(alphabet="ABCabc019-, XYZxyz.", max_size=10), min_size=1, max_size=10
)


@settings(max_examples=80, deadline=None)
@given(pattern_list=st.lists(patterns(), min_size=1, max_size=5), values=_cell_values)
def test_match_column_many_agrees_with_match_column(pattern_list, values):
    column = DictionaryColumn.from_values(list(values) + [""])
    evaluator = PatternEvaluator()
    match_set = evaluator.match_column_many(pattern_list, column)
    for pattern in pattern_list:
        compiled = compile_pattern(pattern)
        assert match_set.matched_mask(compiled) == [
            compiled.matches(value) for value in column.values
        ]
        # The seeded per-pattern result is complete and correct as well.
        outcome = evaluator.match_column(compiled, column)
        assert [r.matched for r in outcome.results] == match_set.matched_mask(compiled)
