"""Tests for the pattern AST (repro.patterns.ast)."""

import pytest

from repro.exceptions import PatternError
from repro.patterns.alphabet import CharClass
from repro.patterns.ast import (
    ClassAtom,
    ConstrainedGroup,
    Literal,
    Pattern,
    Repeat,
    any_string_pattern,
    literal_pattern,
)
from repro.patterns.parser import parse_pattern


class TestLiteralAndClassAtoms:
    def test_literal_must_be_single_char(self):
        with pytest.raises(PatternError):
            Literal("ab")

    def test_literal_regex_escaping(self):
        assert Literal(".").to_regex() == r"\."

    def test_class_regex(self):
        assert ClassAtom(CharClass.DIGIT).to_regex() == "[0-9]"
        assert ClassAtom(CharClass.UPPER).to_regex() == "[A-Z]"

    def test_lengths(self):
        assert Literal("x").min_length() == 1
        assert ClassAtom(CharClass.ANY).max_length() == 1


class TestRepeat:
    def test_invalid_bounds(self):
        with pytest.raises(PatternError):
            Repeat(Literal("a"), -1, None)
        with pytest.raises(PatternError):
            Repeat(Literal("a"), 3, 2)

    def test_star_serialization(self):
        assert Repeat(ClassAtom(CharClass.ANY), 0, None).to_pattern_string() == r"\A*"

    def test_plus_serialization(self):
        assert Repeat(Literal("x"), 1, None).to_pattern_string() == "x+"

    def test_fixed_serialization(self):
        assert Repeat(ClassAtom(CharClass.DIGIT), 5, 5).to_pattern_string() == r"\D{5}"

    def test_constantness(self):
        assert Repeat(Literal("a"), 3, 3).is_constant()
        assert not Repeat(Literal("a"), 1, None).is_constant()
        assert not Repeat(ClassAtom(CharClass.DIGIT), 2, 2).is_constant()

    def test_lengths(self):
        repeat = Repeat(ClassAtom(CharClass.DIGIT), 2, 4)
        assert repeat.min_length() == 2
        assert repeat.max_length() == 4
        assert Repeat(Literal("a"), 1, None).max_length() is None


class TestPatternStructure:
    def test_at_most_one_constrained_group(self):
        group = ConstrainedGroup((Literal("a"),))
        with pytest.raises(PatternError):
            Pattern((group, group))

    def test_embedded_strips_group(self):
        pattern = parse_pattern(r"{{900}}\D{2}")
        embedded = pattern.embedded()
        assert not embedded.has_constrained_group
        assert embedded.to_pattern_string() == r"900\D{2}"

    def test_constrained_subpattern(self):
        pattern = parse_pattern(r"{{John\ }}\A*")
        sub = pattern.constrained_subpattern()
        assert sub is not None
        assert sub.constant_value() == "John "

    def test_with_constrained_prefix(self):
        pattern = parse_pattern(r"900\D{2}")
        constrained = pattern.with_constrained_prefix(3)
        assert constrained.has_constrained_group
        assert constrained.constrained_subpattern().constant_value() == "900"

    def test_with_constrained_prefix_rejects_existing_group(self):
        with pytest.raises(PatternError):
            parse_pattern(r"{{a}}b").with_constrained_prefix(1)

    def test_with_constrained_prefix_bounds(self):
        with pytest.raises(PatternError):
            parse_pattern("abc").with_constrained_prefix(0)
        with pytest.raises(PatternError):
            parse_pattern("abc").with_constrained_prefix(7)


class TestConstantsAndLengths:
    def test_constant_value(self):
        assert parse_pattern(r"Los\ Angeles").constant_value() == "Los Angeles"

    def test_constant_value_with_repeats(self):
        assert parse_pattern("a{3}b").constant_value() == "aaab"

    def test_non_constant_raises(self):
        with pytest.raises(PatternError):
            parse_pattern(r"\D{5}").constant_value()

    def test_min_max_length(self):
        pattern = parse_pattern(r"900\D{2}")
        assert pattern.min_length() == 5
        assert pattern.max_length() == 5
        unbounded = parse_pattern(r"{{John\ }}\A*")
        assert unbounded.min_length() == 5
        assert unbounded.max_length() is None

    def test_specificity_ordering(self):
        constant = parse_pattern("90001")
        classy = parse_pattern(r"\D{5}")
        wildcard = parse_pattern(r"\A*")
        assert constant.specificity() > classy.specificity() > wildcard.specificity()


class TestFactories:
    def test_literal_pattern(self):
        pattern = literal_pattern("M")
        assert pattern.is_constant()
        assert pattern.constant_value() == "M"

    def test_literal_pattern_constrained(self):
        pattern = literal_pattern("Chicago", constrain_all=True)
        assert pattern.has_constrained_group
        assert pattern.constrained_subpattern().constant_value() == "Chicago"

    def test_literal_pattern_empty(self):
        pattern = literal_pattern("")
        assert pattern.min_length() == 0

    def test_any_string_pattern(self):
        pattern = any_string_pattern()
        assert pattern.min_length() == 0
        assert pattern.max_length() is None

    def test_str_and_iter(self):
        pattern = parse_pattern(r"{{900}}\D{2}")
        assert str(pattern) == r"{{900}}\D{2}"
        assert len(pattern) == 2
        assert list(iter(pattern))
