"""Tests for the PFD inference system: axioms, closure, implication,
consistency (Section 3 of the paper)."""

import pytest

from repro.core.pfd import make_pfd
from repro.exceptions import InferenceError
from repro.inference import (
    attribute_values_consistent,
    augmentation,
    check_consistency,
    closure_implies,
    compute_closure,
    equivalent_pfd_sets,
    find_counterexample,
    implies,
    inconsistency_efq,
    lhs_generalization,
    minimal_cover,
    reduction,
    reflexivity,
    transitivity,
    tuple_satisfies,
)
from repro.core.tableau import PatternTuple


@pytest.fixture
def first_name_pfd():
    return make_pfd("name", "gender", [{"name": r"{{\LU\LL*\ }}\A*", "gender": "⊥"}], "Name")


@pytest.fixture
def gender_title_pfd():
    return make_pfd("gender", "title", [{"gender": "⊥", "title": "⊥"}], "Name")


class TestAxioms:
    def test_reflexivity(self):
        row = PatternTuple.from_mapping({"name": r"{{John\ }}\A*"})
        derived = reflexivity(["name"], row, "name")
        assert derived.lhs == ("name",) and derived.rhs == ("name",)

    def test_reflexivity_requires_lhs_membership(self):
        row = PatternTuple.from_mapping({"name": r"{{John\ }}\A*"})
        with pytest.raises(InferenceError):
            reflexivity(["name"], row, "gender")

    def test_reflexivity_rejects_non_restriction_rhs(self):
        row = PatternTuple.from_mapping({"name": r"{{\LU\LL*\ }}\A*"})
        with pytest.raises(InferenceError):
            reflexivity(["name"], row, "name", rhs_cell=r"{{John\ }}\A*")

    def test_augmentation(self, first_name_pfd):
        derived = augmentation(first_name_pfd, "country")
        assert derived.lhs == ("name", "country")
        assert derived.rhs == ("gender", "country")

    def test_augmentation_rejects_existing_attribute(self, first_name_pfd):
        with pytest.raises(InferenceError):
            augmentation(first_name_pfd, "gender")

    def test_transitivity(self, first_name_pfd, gender_title_pfd):
        derived = transitivity(first_name_pfd, gender_title_pfd)
        assert derived.lhs == ("name",) and derived.rhs == ("title",)

    def test_transitivity_requires_matching_middle(self, first_name_pfd):
        other = make_pfd("title", "salary", [{"title": "⊥", "salary": "⊥"}], "Name")
        with pytest.raises(InferenceError):
            transitivity(first_name_pfd, other)

    def test_transitivity_requires_pattern_restriction(self):
        first = make_pfd("a", "b", [{"a": "⊥", "b": "⊥"}])
        second = make_pfd("b", "c", [{"b": r"{{\D{3}}}\D{2}", "c": "⊥"}])
        with pytest.raises(InferenceError):
            transitivity(first, second)

    def test_reduction(self):
        pfd = make_pfd(
            ("zip", "extra"), "city",
            [{"zip": r"{{900}}\D{2}", "extra": "⊥", "city": r"Los\ Angeles"}], "Zip",
        )
        derived = reduction(pfd, "extra")
        assert derived.lhs == ("zip",)

    def test_reduction_requires_wildcard_and_constant(self):
        pfd = make_pfd(("zip", "extra"), "city",
                       [{"zip": r"{{900}}\D{2}", "extra": "x", "city": "LA"}], "Zip")
        with pytest.raises(InferenceError):
            reduction(pfd, "extra")
        variable_rhs = make_pfd(("zip", "extra"), "city",
                                [{"zip": r"{{900}}\D{2}", "extra": "⊥", "city": "⊥"}], "Zip")
        with pytest.raises(InferenceError):
            reduction(variable_rhs, "extra")

    def test_reduction_cannot_empty_lhs(self):
        pfd = make_pfd("extra", "city", [{"extra": "⊥", "city": "LA"}], "Zip")
        with pytest.raises(InferenceError):
            reduction(pfd, "extra")

    def test_lhs_generalization(self):
        first = make_pfd(("name", "country"), "gender",
                         [{"name": r"{{John\ }}\A*", "country": "Egypt", "gender": "M"}])
        second = make_pfd(("name", "country"), "gender",
                          [{"name": r"{{Omar\ }}\A*", "country": "Egypt", "gender": "M"}])
        derived = lhs_generalization(first, second, "name")
        assert len(derived.tableau) == 2

    def test_lhs_generalization_requires_identical_other_cells(self):
        first = make_pfd(("name", "country"), "gender",
                         [{"name": r"{{John\ }}\A*", "country": "Egypt", "gender": "M"}])
        second = make_pfd(("name", "country"), "gender",
                          [{"name": r"{{Omar\ }}\A*", "country": "Yemen", "gender": "M"}])
        with pytest.raises(InferenceError):
            lhs_generalization(first, second, "name")

    def test_inconsistency_efq_builds_requested_pfd(self):
        derived = inconsistency_efq("a", r"{{\D+}}", ("b",), {"b": "⊥"})
        assert derived.lhs == ("a",) and derived.rhs == ("b",)

    def test_axioms_require_single_row(self):
        multi = make_pfd("a", "b", [{"a": "x", "b": "y"}, {"a": "z", "b": "w"}])
        with pytest.raises(InferenceError):
            augmentation(multi, "c")


class TestClosureAndImplication:
    def test_transitive_implication(self, first_name_pfd, gender_title_pfd):
        candidate = make_pfd("name", "title",
                             [{"name": r"{{\LU\LL*\ }}\A*", "title": "⊥"}], "Name")
        assert closure_implies([first_name_pfd, gender_title_pfd], candidate)
        assert implies([first_name_pfd, gender_title_pfd], candidate)

    def test_restricted_candidate_is_implied(self, first_name_pfd, gender_title_pfd):
        candidate = make_pfd("name", "title", [{"name": r"{{John\ }}\A*", "title": "⊥"}], "Name")
        assert implies([first_name_pfd, gender_title_pfd], candidate)

    def test_reverse_not_implied(self, first_name_pfd, gender_title_pfd):
        candidate = make_pfd("title", "name", [{"title": "⊥", "name": "⊥"}], "Name")
        assert not implies([first_name_pfd, gender_title_pfd], candidate)

    def test_full_value_fd_not_implied_by_pattern_pfd(self, first_name_pfd):
        # Names outside the pattern's language escape the PFD, so the plain FD
        # does not follow; the counterexample search exhibits a witness.
        candidate = make_pfd("name", "gender", [{"name": "⊥", "gender": "⊥"}], "Name")
        assert not implies([first_name_pfd], candidate)
        witness = find_counterexample([first_name_pfd], candidate, max_assignments=20_000)
        assert witness is not None
        assert first_name_pfd.holds_on(witness)
        assert not candidate.holds_on(witness)

    def test_member_is_implied(self, first_name_pfd):
        assert implies([first_name_pfd], first_name_pfd)

    def test_closure_contents(self, first_name_pfd, gender_title_pfd):
        closure = compute_closure(
            [first_name_pfd, gender_title_pfd],
            {"name": r"{{\LU\LL*\ }}\A*"},
        )
        assert "gender" in closure
        assert "title" in closure

    def test_minimal_cover_drops_redundant(self, first_name_pfd, gender_title_pfd):
        redundant = make_pfd("name", "title",
                             [{"name": r"{{\LU\LL*\ }}\A*", "title": "⊥"}], "Name")
        cover = minimal_cover([first_name_pfd, gender_title_pfd, redundant])
        assert len(cover) == 2

    def test_equivalent_pfd_sets(self, first_name_pfd, gender_title_pfd):
        assert equivalent_pfd_sets([first_name_pfd], [first_name_pfd])
        assert not equivalent_pfd_sets([first_name_pfd], [gender_title_pfd])


class TestConsistency:
    def test_empty_set_is_consistent(self):
        assert check_consistency([]).consistent

    def test_unrestricted_domains_are_consistent(self):
        conflicting = [
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "M"}]),
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "F"}]),
        ]
        # A tuple whose `a` value is non-numeric satisfies both vacuously.
        result = check_consistency(conflicting)
        assert result.consistent
        assert result.witness is not None
        assert tuple_satisfies(conflicting, result.witness)

    def test_restricted_domain_makes_it_inconsistent(self):
        conflicting = [
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "M"}]),
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "F"}]),
        ]
        assert not check_consistency(conflicting, domains={"a": r"\D+"}).consistent

    def test_consistent_set_with_domains(self):
        psis = [
            make_pfd("zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"LA"}]),
            make_pfd("zip", "state", [{"zip": r"{{900}}\D{2}", "state": "CA"}]),
        ]
        result = check_consistency(psis, domains={"zip": r"\D{5}"})
        assert result.consistent

    def test_attribute_values_consistent(self):
        conflicting = [
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "M"}]),
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "F"}]),
        ]
        assert not attribute_values_consistent(conflicting, "a", r"\D+")
        assert attribute_values_consistent(conflicting, "a", r"\LL+")

    def test_inconsistent_set_implies_anything(self):
        conflicting = [
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "M"}]),
            make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "F"}]),
        ]
        anything = make_pfd("b", "a", [{"b": "⊥", "a": "⊥"}])
        assert implies(conflicting, anything, domains={"a": r"\D+"})

    def test_tuple_satisfies_checks_formats(self):
        pfd = make_pfd("zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"LA"}])
        assert tuple_satisfies([pfd], {"zip": "90001", "city": "LA"})
        assert not tuple_satisfies([pfd], {"zip": "90001", "city": "NY"})
        assert tuple_satisfies([pfd], {"zip": "60601", "city": "NY"})
