"""Tests for the pattern parser (repro.patterns.parser)."""

import pytest

from repro.exceptions import PatternError, PatternSyntaxError
from repro.patterns.alphabet import CharClass
from repro.patterns.ast import ClassAtom, ConstrainedGroup, Literal, Pattern, Repeat
from repro.patterns.parser import parse_pattern, try_parse_pattern


class TestBasicAtoms:
    def test_literal_characters(self):
        pattern = parse_pattern("abc")
        assert pattern.elements == (Literal("a"), Literal("b"), Literal("c"))

    def test_class_escapes(self):
        pattern = parse_pattern(r"\A\LU\LL\D\S")
        classes = [element.cls for element in pattern.elements]
        assert classes == [
            CharClass.ANY,
            CharClass.UPPER,
            CharClass.LOWER,
            CharClass.DIGIT,
            CharClass.SYMBOL,
        ]

    def test_escaped_space_is_literal(self):
        pattern = parse_pattern(r"John\ Smith")
        assert Literal(" ") in pattern.elements

    def test_escaped_backslash(self):
        pattern = parse_pattern(r"\\")
        assert pattern.elements == (Literal("\\"),)


class TestQuantifiers:
    def test_star(self):
        pattern = parse_pattern(r"\A*")
        assert pattern.elements == (Repeat(ClassAtom(CharClass.ANY), 0, None),)

    def test_plus(self):
        pattern = parse_pattern(r"\D+")
        assert pattern.elements == (Repeat(ClassAtom(CharClass.DIGIT), 1, None),)

    def test_fixed_count(self):
        pattern = parse_pattern(r"\D{5}")
        assert pattern.elements == (Repeat(ClassAtom(CharClass.DIGIT), 5, 5),)

    def test_bounded_range(self):
        pattern = parse_pattern(r"\LL{2,4}")
        assert pattern.elements == (Repeat(ClassAtom(CharClass.LOWER), 2, 4),)

    def test_open_range(self):
        pattern = parse_pattern(r"\LL{3,}")
        assert pattern.elements == (Repeat(ClassAtom(CharClass.LOWER), 3, None),)

    def test_quantifier_on_literal(self):
        pattern = parse_pattern("x{3}")
        assert pattern.elements == (Repeat(Literal("x"), 3, 3),)


class TestConstrainedGroups:
    def test_simple_group(self):
        pattern = parse_pattern(r"{{900}}\D{2}")
        assert isinstance(pattern.elements[0], ConstrainedGroup)
        assert pattern.elements[0].elements == (Literal("9"), Literal("0"), Literal("0"))

    def test_group_with_classes(self):
        pattern = parse_pattern(r"{{\LU\LL*\ }}\A*")
        group = pattern.constrained_group
        assert group is not None
        assert len(group.elements) == 3

    def test_group_containing_braced_repeat(self):
        pattern = parse_pattern(r"{{\D{3}}}\D{2}")
        group = pattern.constrained_group
        assert group.elements == (Repeat(ClassAtom(CharClass.DIGIT), 3, 3),)
        assert pattern.elements[1] == Repeat(ClassAtom(CharClass.DIGIT), 2, 2)

    def test_group_in_the_middle(self):
        pattern = parse_pattern(r"\A*{{Donald}}\A*")
        assert pattern.constrained_group_index == 1


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "{{",           # unterminated group
            "{{}}",         # empty group
            "}}",           # close without open
            "*",            # dangling quantifier
            "+abc",         # dangling quantifier at start
            "a{",           # broken repetition
            "a{x}",         # non-numeric repetition
            "a{2,1}x" ,     # max < min
            "{{a{{b}}}}",   # nested group
            "\\",           # dangling escape
        ],
    )
    def test_syntax_errors(self, bad):
        # Structural errors (e.g. max < min) surface as PatternError, pure
        # syntax errors as its subclass PatternSyntaxError.
        with pytest.raises(PatternError):
            parse_pattern(bad)

    def test_error_carries_position(self):
        with pytest.raises(PatternSyntaxError) as excinfo:
            parse_pattern("ab*+")
        assert excinfo.value.pattern == "ab*+"
        assert excinfo.value.position >= 0

    def test_try_parse_returns_none(self):
        assert try_parse_pattern("{{") is None
        assert try_parse_pattern("abc") is not None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            r"{{900}}\D{2}",
            r"{{John\ }}\A*",
            r"{{\LU\LL*\ }}\A*",
            r"\D{3}\ \D{2}",
            r"\A*{{Donald}}\A*",
            r"\LL{2,4}x+",
            r"CHEMBL\D+",
        ],
    )
    def test_parse_serialize_parse(self, text):
        first = parse_pattern(text)
        serialized = first.to_pattern_string()
        second = parse_pattern(serialized)
        assert first == second
