"""The cleaning service subsystem: registry, session manager, application.

Covers the tentpole guarantees without HTTP in the way (the HTTP codec has
its own test module): durable constraint/data round-trips, LRU eviction and
lazy rehydration, and service responses bit-identical to driving a
:class:`~repro.session.CleaningSession` directly.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import CleaningSession, DiscoveryConfig, Relation
from repro.exceptions import ServiceError, UnknownTenantError
from repro.service import (
    CleaningService,
    ConstraintRegistry,
    SessionManager,
    validate_tenant_name,
)


def _zip_rows(errors: int = 0):
    rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
        (f"{10000 + i:05d}", "New York") for i in range(8)
    ]
    for i in range(errors):
        rows.append((f"{90100 + i:05d}", "New York"))
    return rows


def _zip_relation(errors: int = 0, name: str = "zips") -> Relation:
    return Relation.from_rows(["zip", "city"], _zip_rows(errors), name=name)


CONFIG = DiscoveryConfig(min_support=4)


@pytest.fixture
def registry(tmp_path) -> ConstraintRegistry:
    return ConstraintRegistry(tmp_path / "registry")


@pytest.fixture
def service(registry) -> CleaningService:
    with CleaningService(registry, max_sessions=4, config=CONFIG) as svc:
        yield svc


def _load(service, tenant: str, errors: int = 0) -> dict:
    return service.load_tenant(
        tenant, columns=["zip", "city"], rows=_zip_rows(errors)
    )


class TestTenantNames:
    @pytest.mark.parametrize("name", ["acme", "a", "T-1.two_three", "0start"])
    def test_accepts_safe_names(self, name):
        assert validate_tenant_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "-dash", "a/b", "a b", "a" * 65, 42, "../up"]
    )
    def test_rejects_unsafe_names(self, name):
        with pytest.raises(ServiceError):
            validate_tenant_name(name)


class TestRegistry:
    def test_data_round_trip(self, registry):
        relation = _zip_relation(1)
        registry.save_data("acme", relation)
        restored = registry.load_data("acme")
        assert restored.attribute_names == relation.attribute_names
        assert list(restored.iter_rows()) == list(relation.iter_rows())

    def test_constraints_round_trip_with_metadata(self, registry):
        pfds = CleaningSession(_zip_relation(), config=CONFIG).discover().pfds
        assert pfds
        registry.save_constraints("acme", pfds, metadata={"rows": 16})
        restored, metadata = registry.load_constraints("acme")
        assert restored == pfds
        assert metadata == {"rows": 16}

    def test_missing_constraints_is_none(self, registry):
        registry.save_data("acme", _zip_relation())
        assert registry.load_constraints("acme") == (None, {})

    def test_append_data_mirrors_delta(self, registry):
        registry.save_data("acme", _zip_relation())
        written = registry.append_data("acme", [["90009", "Los Angeles"]])
        assert written == 1
        assert registry.load_data("acme").row_count == 17

    def test_append_without_table_raises(self, registry):
        with pytest.raises(UnknownTenantError):
            registry.append_data("ghost", [["1", "2"]])

    def test_load_missing_tenant_raises(self, registry):
        with pytest.raises(UnknownTenantError):
            registry.load_data("ghost")

    def test_tenants_listing_and_delete(self, registry):
        registry.save_data("beta", _zip_relation())
        registry.save_data("alpha", _zip_relation())
        assert registry.tenants() == ["alpha", "beta"]
        assert registry.has_tenant("alpha")
        assert registry.delete("alpha") is True
        assert registry.delete("alpha") is False
        assert registry.tenants() == ["beta"]

    def test_save_is_atomic_leaves_no_temp(self, registry):
        registry.save_data("acme", _zip_relation())
        pfds = CleaningSession(_zip_relation(), config=CONFIG).discover().pfds
        registry.save_constraints("acme", pfds)
        leftovers = [p for p in registry.tenant_dir("acme").iterdir()]
        assert sorted(p.name for p in leftovers) == ["data.csv", "pfds.json"]


class TestSessionManager:
    def test_checkout_unknown_tenant_raises(self, registry):
        manager = SessionManager(registry, max_sessions=2)
        with pytest.raises(UnknownTenantError):
            manager.checkout("ghost")

    def test_lru_eviction_keeps_most_recent(self, registry):
        manager = SessionManager(registry, max_sessions=2, config=CONFIG)
        for name in ("a", "b", "c"):
            registry.save_data(name, _zip_relation(name=name))
        manager.checkout("a")
        manager.checkout("b")
        manager.checkout("a")  # refresh a; b is now LRU
        manager.checkout("c")  # evicts b
        assert manager.live_tenants() == ["a", "c"]
        stats = manager.stats()
        assert stats.evicted == 1
        assert stats.rehydrated == 3

    def test_rehydration_restores_constraints(self, registry):
        manager = SessionManager(registry, max_sessions=1, config=CONFIG)
        registry.save_data("acme", _zip_relation())
        pfds = CleaningSession(_zip_relation(), config=CONFIG).discover().pfds
        registry.save_constraints("acme", pfds, metadata={"rows": 16})
        runtime = manager.checkout("acme")
        assert runtime.pfds == pfds
        assert runtime.constraint_metadata == {"rows": 16}
        assert runtime.session.relation.row_count == 16

    def test_busy_tenant_is_not_evicted(self, registry):
        manager = SessionManager(registry, max_sessions=1, config=CONFIG)
        for name in ("a", "b"):
            registry.save_data(name, _zip_relation(name=name))
        busy = manager.checkout("a")
        busy.lock.acquire_read()  # simulate an in-flight detect
        try:
            manager.checkout("b")  # over capacity, but "a" is mid-request
            assert set(manager.live_tenants()) == {"a", "b"}
            assert manager.stats().eviction_skips >= 1
        finally:
            busy.lock.release_read()

    def test_max_sessions_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            SessionManager(registry, max_sessions=0)

    def test_close_drops_all_runtimes(self, registry):
        manager = SessionManager(registry, max_sessions=4, config=CONFIG)
        registry.save_data("acme", _zip_relation())
        manager.checkout("acme")
        manager.close()
        assert manager.live_tenants() == []
        assert registry.has_tenant("acme")  # durable state untouched


class TestCleaningService:
    def test_load_discover_detect_matches_direct_session(self, service):
        _load(service, "acme", errors=1)
        discovery = service.discover("acme")
        assert discovery["constraints"] >= 1
        doc = service.detect("acme")
        assert doc["error_count"] > 0

        direct = CleaningSession.from_rows(
            ["zip", "city"], _zip_rows(1), name="acme", config=CONFIG
        )
        report = direct.detect()
        assert doc["error_count"] == len(report.errors)
        assert {(e["row"], e["attribute"]) for e in doc["errors"]} == {
            (err.cell.row_id, err.cell.attribute) for err in report.errors
        }
        for entry, err in zip(
            sorted(doc["errors"], key=lambda e: (e["row"], e["attribute"])),
            sorted(report.errors, key=lambda e: (e.cell.row_id, e.cell.attribute)),
        ):
            assert entry["value"] == err.current_value
            assert entry["suggested"] == err.suggested_value

    def test_two_tenants_are_isolated(self, service):
        _load(service, "acme", errors=1)
        _load(service, "globex", errors=0)
        service.discover("acme")
        service.discover("globex")
        assert service.detect("acme")["clean"] is False
        assert service.detect("globex")["clean"] is True

    def test_detect_before_discover_is_409(self, service):
        _load(service, "acme")
        with pytest.raises(ServiceError) as excinfo:
            service.detect("acme")
        assert excinfo.value.status == 409

    def test_unknown_tenant_is_404(self, service):
        with pytest.raises(UnknownTenantError) as excinfo:
            service.detect("ghost")
        assert excinfo.value.status == 404

    def test_load_from_csv_text(self, service):
        doc = service.load_tenant("acme", csv_text="zip,city\n90001,Los Angeles\n")
        assert doc == {
            "tenant": "acme",
            "rows": 1,
            "columns": ["zip", "city"],
            "constraints": 0,
        }

    def test_load_requires_a_table(self, service):
        with pytest.raises(ServiceError):
            service.load_tenant("acme")

    def test_reload_keeps_persisted_constraints(self, service):
        _load(service, "acme")
        service.discover("acme")
        doc = _load(service, "acme", errors=1)
        assert doc["constraints"] >= 1
        assert service.detect("acme")["clean"] is False

    def test_ingest_reports_only_new_errors(self, service):
        _load(service, "acme")
        service.discover("acme")
        doc = service.ingest("acme", rows=[["90050", "New York"]])
        assert doc["rows_before"] == 16
        assert doc["rows_appended"] == 1
        assert doc["appended_start"] == 16
        assert doc["clean"] is False
        assert all(entry["row"] >= 16 for entry in doc["errors"])
        # The durable mirror grew too: a fresh service sees the appended row.
        assert service.registry.load_data("acme").row_count == 17

    def test_ingest_rejects_schema_mismatch(self, service):
        _load(service, "acme")
        service.discover("acme")
        with pytest.raises(ServiceError):
            service.ingest("acme", csv_text="zip,town\n90001,LA\n")
        with pytest.raises(ServiceError):
            service.ingest("acme", rows=[["only-one-field"]])

    def test_repair_suggests_without_mutating(self, service):
        _load(service, "acme", errors=1)
        service.discover("acme")
        doc = service.repair("acme")
        assert doc["repair_count"] >= 1
        assert doc["remaining_errors"] is not None
        assert doc["remaining_errors"] < service.detect("acme")["error_count"]
        # The stored table still holds the dirty value.
        assert service.detect("acme")["clean"] is False

    def test_validate_reports_per_constraint(self, service):
        _load(service, "acme")
        service.discover("acme")
        doc = service.validate("acme")
        assert doc["all_hold"] is True
        assert len(doc["entries"]) >= 1

    def test_profile_reports_columns(self, service):
        _load(service, "acme")
        doc = service.profile("acme")
        assert [c["name"] for c in doc["columns"]] == ["zip", "city"]

    def test_unknown_discovery_option_rejected(self, service):
        _load(service, "acme")
        with pytest.raises(ServiceError):
            service.discover("acme", min_supprt=3)

    def test_stats_counts_endpoints_and_sessions(self, service):
        _load(service, "acme")
        service.discover("acme")
        service.detect("acme")
        service.detect("acme")
        stats = service.stats()
        assert stats["sessions"]["live"] == 1
        assert stats["endpoints"]["detect"]["count"] == 2
        assert "p95_ms" in stats["endpoints"]["detect"]
        tenant = stats["tenant_sessions"]["acme"]
        assert tenant["constraints"] >= 1
        assert tenant["lock"]["reads"] >= 2
        assert tenant["lock"]["writes"] >= 1

    def test_drop_tenant_removes_everything(self, service):
        _load(service, "acme")
        assert service.drop_tenant("acme") == {"tenant": "acme", "deleted": True}
        assert service.list_tenants()["tenants"] == []
        with pytest.raises(UnknownTenantError):
            service.detect("acme")

    def test_restart_rehydrates_from_registry(self, registry):
        with CleaningService(registry, config=CONFIG) as first:
            _load(first, "acme", errors=1)
            first.discover("acme")
            before = first.detect("acme")
            assert before["error_count"] > 0
        # A new service over the same registry: no load, no discover.
        with CleaningService(registry, config=CONFIG) as second:
            after = second.detect("acme")
            assert after["error_count"] == before["error_count"]
            assert after["errors"] == before["errors"]
            assert second.stats()["sessions"]["rehydrated"] == 1

    def test_tenant_info_live_and_cold(self, service):
        _load(service, "acme")
        service.discover("acme")
        info = service.tenant_info("acme")
        assert info["live"] is True and info["rows"] == 16
        service.manager.evict("acme")
        cold = service.tenant_info("acme")
        assert cold["live"] is False
        assert cold["constraints"] >= 1


class TestRuntimeCurrencyRaces:
    """A request that wakes up holding the lock of a runtime that was
    replaced (``load``), dropped, or LRU-evicted while it queued must act
    on the *live* runtime, never the orphan — otherwise it mutates a
    discarded session while the durable mirror belongs to the new one."""

    def _replace_with_wider_table(self, service, tenant: str) -> None:
        service.load_tenant(
            tenant,
            columns=["zip", "city", "state"],
            rows=[[zip_code, city, "CA"] for zip_code, city in _zip_rows()],
        )
        service.discover(tenant)

    def _stale_first_checkout(self, service, stale, monkeypatch) -> None:
        """Hand the orphaned runtime to the next checkout, the live one
        after — simulating a writer that queued on the old lock across a
        replacement."""
        real_checkout = service.manager.checkout
        handed = []

        def checkout(tenant):
            if not handed:
                handed.append(stale)
                return stale
            return real_checkout(tenant)

        monkeypatch.setattr(service.manager, "checkout", checkout)

    def test_ingest_on_stale_runtime_lands_on_current(self, service, monkeypatch):
        _load(service, "acme")
        service.discover("acme")
        stale = service.manager.checkout("acme")
        self._replace_with_wider_table(service, "acme")
        self._stale_first_checkout(service, stale, monkeypatch)
        doc = service.ingest("acme", rows=[["90330", "Los Angeles", "CA"]])
        assert doc["rows_appended"] == 1
        current = service.manager.peek("acme")
        assert current is not stale
        assert current.session.relation.row_count == 17
        assert stale.session.relation.row_count == 16  # orphan untouched
        # The durable mirror stayed width-consistent with the new schema.
        data = service.registry.data_path("acme").read_text(encoding="utf-8")
        assert all(line.count(",") == 2 for line in data.strip().splitlines())

    def test_ingest_validates_against_current_schema(self, service, monkeypatch):
        _load(service, "acme")
        service.discover("acme")
        stale = service.manager.checkout("acme")
        self._replace_with_wider_table(service, "acme")
        self._stale_first_checkout(service, stale, monkeypatch)
        # Two-field rows matched the orphan's schema but not the live one.
        with pytest.raises(ServiceError, match="has 2 fields"):
            service.ingest("acme", rows=[["90330", "Los Angeles"]])

    def test_read_on_stale_runtime_lands_on_current(self, service, monkeypatch):
        _load(service, "acme")
        service.discover("acme")
        stale = service.manager.checkout("acme")
        self._replace_with_wider_table(service, "acme")
        self._stale_first_checkout(service, stale, monkeypatch)
        doc = service.profile("acme")
        # The profile describes the live three-column table, not the orphan.
        assert [column["name"] for column in doc["columns"]] == [
            "zip",
            "city",
            "state",
        ]

    def test_load_replaces_and_closes_drained_runtime(self, service):
        _load(service, "acme")
        old = service.manager.peek("acme")
        closed = []
        real_close = old.session.close
        old.session.close = lambda: (closed.append(True), real_close())
        _load(service, "acme")
        assert closed == [True]
        assert service.manager.peek("acme") is not old
        assert old.lock.try_acquire_write()  # released after the drain
        old.lock.release_write()

    def test_evicted_victim_is_closed_under_its_write_lock(self, registry):
        manager = SessionManager(registry, max_sessions=1, config=CONFIG)
        for name in ("a", "b"):
            registry.save_data(name, _zip_relation(name=name))
        victim = manager.checkout("a")
        lock_held_during_close = []
        real_close = victim.session.close

        def close_probe():
            lock_held_during_close.append(not victim.lock.try_acquire_write())
            real_close()

        victim.session.close = close_probe
        manager.checkout("b")  # over capacity: evicts a
        assert lock_held_during_close == [True]
        assert manager.peek("a") is None
        # ... and released afterwards, so a queued request can wake up,
        # notice the runtime is stale, and retry.
        assert victim.lock.try_acquire_write()
        victim.lock.release_write()

    def test_drop_tenant_waits_for_inflight_requests(self, service):
        _load(service, "acme")
        runtime = service.manager.checkout("acme")
        runtime.lock.acquire_read()  # simulate a detect mid-flight
        result: dict = {}
        dropper = threading.Thread(
            target=lambda: result.update(service.drop_tenant("acme"))
        )
        dropper.start()
        time.sleep(0.05)
        assert not result  # blocked behind the reader
        runtime.lock.release_read()
        dropper.join(timeout=10)
        assert result == {"tenant": "acme", "deleted": True}
        assert service.manager.peek("acme") is None
        assert not service.registry.has_tenant("acme")
