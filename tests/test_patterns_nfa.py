"""Tests for NFA construction, determinization, and language comparison."""

import pytest

from repro.patterns.nfa import (
    determinize,
    example_string,
    language_contains,
    language_equivalent,
    language_nonempty_intersection,
    pattern_to_nfa,
    symbolic_alphabet,
)
from repro.patterns.parser import parse_pattern


class TestNFAAcceptance:
    @pytest.mark.parametrize(
        "pattern, accepted, rejected",
        [
            (r"\D{5}", ["90001", "12345"], ["9000", "900012", "9000a"]),
            (r"900\D{2}", ["90001", "90099"], ["60601", "900", "9000x"]),
            (r"\LU\LL*\ \A*", ["John Charles", "Li Wei"], ["john x", "JOHN x"]),
            (r"\LL+", ["a", "abc"], ["", "aB", "1"]),
            (r"\D{2,4}", ["12", "123", "1234"], ["1", "12345"]),
            (r"a*b", ["b", "ab", "aaab"], ["a", "", "ba"]),
        ],
    )
    def test_acceptance(self, pattern, accepted, rejected):
        nfa = pattern_to_nfa(pattern)
        for value in accepted:
            assert nfa.accepts(value), f"{pattern} should accept {value!r}"
        for value in rejected:
            assert not nfa.accepts(value), f"{pattern} should reject {value!r}"

    def test_nfa_agrees_with_regex_matcher(self):
        from repro.patterns.matcher import matches

        patterns = [r"\D{5}", r"900\D{2}", r"\LU\LL*\ \A*", r"\LL+\D*", r"a{2,3}b*"]
        values = ["90001", "900", "John Charles", "abc123", "aab", "aaabbb", "", "x Y"]
        for pattern in patterns:
            nfa = pattern_to_nfa(pattern)
            for value in values:
                assert nfa.accepts(value) == matches(pattern, value)


class TestDeterminization:
    def test_dfa_accepts_same_language_on_symbols(self):
        pattern = parse_pattern(r"90\D*")
        alphabet = symbolic_alphabet([pattern])
        dfa = determinize(pattern_to_nfa(pattern), alphabet)
        # Find indices of the literals and the digit residual.
        index_9 = next(i for i, s in enumerate(alphabet) if s.kind == "lit" and s.char == "9")
        index_0 = next(i for i, s in enumerate(alphabet) if s.kind == "lit" and s.char == "0")
        digit_residual = next(
            i for i, s in enumerate(alphabet) if s.kind == "residual" and s.base.name == "DIGIT"
        )
        assert dfa.accepts_symbols([index_9, index_0])
        assert dfa.accepts_symbols([index_9, index_0, digit_residual, digit_residual])
        assert not dfa.accepts_symbols([index_0, index_9])


class TestContainment:
    def test_fixed_length_contained_in_star(self):
        assert language_contains(r"\D*", r"\D{5}")
        assert not language_contains(r"\D{5}", r"\D*")

    def test_constant_contained_in_class(self):
        assert language_contains(r"\D{5}", r"900\D{2}")
        assert not language_contains(r"900\D{2}", r"\D{5}")

    def test_any_star_contains_everything(self):
        for pattern in (r"\D{5}", r"John\ \A*", r"\LU\LL*", "xyz"):
            assert language_contains(r"\A*", pattern)

    def test_disjoint_classes(self):
        assert not language_contains(r"\LL+", r"\D+")
        assert not language_contains(r"\D+", r"\LL+")

    def test_name_patterns(self):
        assert language_contains(r"\LU\LL*\ \A*", r"John\ \A*")
        assert not language_contains(r"John\ \A*", r"\LU\LL*\ \A*")

    def test_equivalence(self):
        assert language_equivalent(r"\D{2}\D{3}", r"\D{5}")
        assert language_equivalent(r"\LL\LL*", r"\LL+")
        assert not language_equivalent(r"\D{5}", r"\D{4}")

    def test_containment_reflexive(self):
        for pattern in (r"\D{5}", r"John\ \A*", r"\A*", r"\LU\LL{2,7}"):
            assert language_contains(pattern, pattern)


class TestIntersectionAndExamples:
    def test_nonempty_intersection(self):
        assert language_nonempty_intersection(r"\D{5}", r"900\A*")
        assert language_nonempty_intersection(r"\A*", r"\LL+")
        assert not language_nonempty_intersection(r"\D{5}", r"\LU+")
        assert not language_nonempty_intersection(r"\D{3}", r"\D{5}")

    def test_example_string_matches_its_pattern(self):
        from repro.patterns.matcher import matches

        for pattern in (r"\D{5}", r"900\D{2}", r"{{John\ }}\A*", r"\LU\LL+\ \A*", r"CHEMBL\D+"):
            witness = example_string(pattern)
            assert witness is not None
            assert matches(pattern, witness)
