"""Out-of-core SQL backend pins: the SQLite-pushdown store vs the in-memory engine.

The `SqlRelation` contract is the same one the columnar refactor set: *bit
identical* results.  Every engine query — dictionary codes, partitions (plain,
set, and pattern-projected), PFD violations / support / row statistics,
discovery, detection, repair — must return exactly the same values (same
elements, same order) whether the rows live in Python lists or in the
dictionary-encoded SQLite table, including after ``append_rows`` deltas and
``set_cell`` overwrites.  Hypothesis drives random tables and appends through
both representations side by side; any divergence is a bug in a pushed-down
SQL query (or in the in-memory path it mirrors).
"""

from __future__ import annotations

import csv
import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.core.pfd import make_pfd
from repro.dataset.csvio import estimate_csv_rows, read_csv
from repro.dataset.relation import Relation
from repro.engine.backend import PYTHON, SQL
from repro.engine.evaluator import PatternEvaluator
from repro.exceptions import SchemaError
from repro.session import CleaningSession
from repro.storage import SqlDictionaryColumn, SqlRelation, SqlStrippedPartition

# Small alphabets force collisions: shared values, shared classes, empty cells.
_cells = st.text(alphabet="ab1 ", max_size=3)
_tables = st.lists(st.tuples(_cells, _cells, _cells), min_size=0, max_size=30)
_batches = st.lists(st.tuples(_cells, _cells, _cells), min_size=0, max_size=10)

_SCHEMA = ["x", "y", "z"]
_PATTERNS = [r"{{\w*}}", r"{{\d*}}\w*", r"a{{\w*}}"]


def _pair(rows):
    """The same table out-of-core and in memory."""
    return (
        Relation.from_rows(_SCHEMA, rows, backend=SQL),
        Relation.from_rows(_SCHEMA, rows, backend=PYTHON),
    )


def _assert_column_parity(sql_column, memory_column):
    assert isinstance(sql_column, SqlDictionaryColumn)
    assert sql_column.values == memory_column.values
    assert list(sql_column.codes) == list(memory_column.codes)
    assert sql_column.counts() == memory_column.counts()
    assert sql_column.rows_by_code() == memory_column.rows_by_code()


def _assert_partition_parity(sql_partition, memory_partition):
    # Aggregate counters first: they run as SQL aggregates *without*
    # materializing classes, so probe them before the lazy properties do.
    if isinstance(sql_partition, SqlStrippedPartition):
        assert sql_partition.class_count == len(memory_partition.classes)
        assert sql_partition.covered_count == len(memory_partition.covered)
    assert sql_partition.classes == memory_partition.classes
    assert sql_partition.covered == memory_partition.covered
    assert sql_partition.row_count == memory_partition.row_count
    assert sql_partition.error == memory_partition.error
    assert sql_partition.probe_table() == memory_partition.probe_table()


# -- backend selection ---------------------------------------------------------


def test_relation_backend_sql_builds_sql_relation():
    relation = Relation.from_rows(_SCHEMA, [("a", "b", "c")], backend=SQL)
    assert isinstance(relation, SqlRelation)
    assert relation.is_sql_backed
    assert isinstance(relation.dictionary("x"), SqlDictionaryColumn)
    assert isinstance(
        relation.partitions().attribute_partition("x"), SqlStrippedPartition
    )


def test_bare_relation_stays_in_memory_under_env_default(monkeypatch):
    # REPRO_ENGINE=sql routes *ingestion* (read_csv) out of core; a Relation
    # built without an explicit backend pin stays an in-memory object.
    monkeypatch.setenv("REPRO_ENGINE", "sql")
    relation = Relation.from_rows(_SCHEMA, [("a", "b", "c")])
    assert not isinstance(relation, SqlRelation)
    loaded = read_csv(io.StringIO("x,y,z\na,b,c\n"))
    assert isinstance(loaded, SqlRelation)


def test_sql_relation_cannot_switch_backends():
    relation = Relation.from_rows(_SCHEMA, [("a", "b", "c")], backend=SQL)
    relation.set_backend(SQL)  # no-op
    relation.set_backend(None)  # no-op (cache drop)
    with pytest.raises(ValueError):
        relation.set_backend(PYTHON)


def test_cli_rejects_unknown_engine_eagerly(tmp_path, capsys):
    # Eager validation: the CSV path is never touched, so a missing file
    # cannot mask the typo.
    code = cli_main(["clean", str(tmp_path / "nope.csv"), "--engine", "duckdb"])
    assert code == 2
    message = capsys.readouterr().err
    assert "duckdb" in message
    assert "sql" in message and "python" in message


def test_cli_accepts_sql_engine_end_to_end(tmp_path, capsys):
    rows = [("zip", "city")]
    rows += [(f"{90000 + i % 4:05d}", f"City{i % 4}") for i in range(16)]
    rows += [("90000", "Typo City")]
    path = tmp_path / "zips.csv"
    with path.open("w", newline="") as handle:
        csv.writer(handle).writerows(rows)
    code = cli_main(
        [
            "clean",
            str(path),
            "--engine",
            "sql",
            "--min-support",
            "2",
            "--noise",
            "0.1",
            "--output",
            str(tmp_path / "out.csv"),
        ]
    )
    assert code == 0, capsys.readouterr().err
    cleaned = read_csv(tmp_path / "out.csv")
    assert cleaned.cell(16, "city") == "City0"


# -- streaming CSV ingestion ---------------------------------------------------


def test_read_csv_sql_matches_in_memory_reader(tmp_path):
    text = "x,y\n a ,b\n,\n\nc,d,e\nf\n"
    path = tmp_path / "t.csv"
    path.write_text(text)
    memory = read_csv(path)
    streamed = read_csv(path, backend=SQL)
    assert isinstance(streamed, SqlRelation)
    assert streamed.schema.attribute_names == memory.schema.attribute_names
    assert streamed.name == memory.name
    assert list(streamed.iter_rows()) == list(memory.iter_rows())


def test_read_csv_sql_no_header_and_streams():
    text = "a;b;c\nd;e\n"
    memory = read_csv(io.StringIO(text), has_header=False)
    streamed = read_csv(io.StringIO(text), has_header=False, backend=SQL)
    assert streamed.schema.attribute_names == memory.schema.attribute_names
    assert list(streamed.iter_rows()) == list(memory.iter_rows())


def test_read_csv_sql_empty_raises_schema_error(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("\n\n")
    with pytest.raises(SchemaError):
        read_csv(path, backend=SQL)


def test_estimate_csv_rows(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("x,y\n" + "a,b\n" * 7)
    assert estimate_csv_rows(path) == 7
    path.write_text("x,y\na,b")  # unterminated final line
    assert estimate_csv_rows(path) == 1


def test_from_csv_auto_selects_sql_over_budget(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)  # probe the budget, not the env
    path = tmp_path / "t.csv"
    path.write_text("x,y\n" + "a,b\n" * 20)
    with CleaningSession.from_csv(path, max_memory_rows=5) as session:
        assert isinstance(session.relation, SqlRelation)
    with CleaningSession.from_csv(path, max_memory_rows=100) as session:
        assert not isinstance(session.relation, SqlRelation)
    # Explicit backend always wins over the budget heuristic.
    with CleaningSession.from_csv(path, backend=PYTHON, max_memory_rows=5) as session:
        assert not isinstance(session.relation, SqlRelation)


# -- dictionary / partition parity ---------------------------------------------


@settings(max_examples=50, deadline=None)
@given(rows=_tables)
def test_dictionary_and_partition_parity(rows):
    sql_relation, memory_relation = _pair(rows)
    assert sql_relation.row_count == memory_relation.row_count
    assert list(sql_relation.iter_rows()) == list(memory_relation.iter_rows())
    for attribute in _SCHEMA:
        _assert_column_parity(
            sql_relation.dictionary(attribute), memory_relation.dictionary(attribute)
        )
        assert sql_relation.distinct_values(attribute) == memory_relation.distinct_values(
            attribute
        )
        assert sql_relation.value_counts(attribute) == memory_relation.value_counts(
            attribute
        )
        _assert_partition_parity(
            sql_relation.partitions().attribute_partition(attribute),
            memory_relation.partitions().attribute_partition(attribute),
        )
    for pair in (("x", "y"), ("x", "z"), ("x", "y", "z")):
        _assert_partition_parity(
            sql_relation.partitions().attribute_set_partition(pair),
            memory_relation.partitions().attribute_set_partition(pair),
        )


@settings(max_examples=50, deadline=None)
@given(rows=_tables, pattern=st.sampled_from(_PATTERNS))
def test_pattern_partition_parity(rows, pattern):
    sql_relation, memory_relation = _pair(rows)
    evaluators = (PatternEvaluator(), PatternEvaluator())
    partitions = [
        relation.partitions().pattern_partition("x", pattern, evaluator=evaluator)
        for relation, evaluator in zip((sql_relation, memory_relation), evaluators)
    ]
    _assert_partition_parity(*partitions)


# -- append / set_cell parity --------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(base=_tables, batch=_batches)
def test_append_parity_and_fresh_rebuild(base, batch):
    sql_relation, memory_relation = _pair(base)
    # Prime the caches so append exercises the delta-maintenance paths.
    for relation in (sql_relation, memory_relation):
        for attribute in _SCHEMA:
            relation.dictionary(attribute)
            relation.partitions().attribute_partition(attribute)
        relation.partitions().attribute_set_partition(("x", "y")).probe_table()
    sql_relation.append_rows(batch)
    memory_relation.append_rows(batch)
    fresh = Relation.from_rows(_SCHEMA, list(base) + list(batch), backend=SQL)
    for attribute in _SCHEMA:
        _assert_column_parity(
            sql_relation.dictionary(attribute), memory_relation.dictionary(attribute)
        )
        patched = sql_relation.partitions().attribute_partition(attribute)
        _assert_partition_parity(
            patched, memory_relation.partitions().attribute_partition(attribute)
        )
        rebuilt = fresh.partitions().attribute_partition(attribute)
        assert patched.classes == rebuilt.classes
        assert patched.covered == rebuilt.covered
    _assert_partition_parity(
        sql_relation.partitions().attribute_set_partition(("x", "y")),
        memory_relation.partitions().attribute_set_partition(("x", "y")),
    )


@settings(max_examples=40, deadline=None)
@given(base=_tables, batch=_batches, pattern=st.sampled_from(_PATTERNS))
def test_pattern_partition_extend_parity(base, batch, pattern):
    sql_relation, memory_relation = _pair(base)
    evaluators = (PatternEvaluator(), PatternEvaluator())
    for relation, evaluator in zip((sql_relation, memory_relation), evaluators):
        relation.partitions().pattern_partition("x", pattern, evaluator=evaluator)
    sql_relation.append_rows(batch)
    memory_relation.append_rows(batch)
    partitions = [
        relation.partitions().pattern_partition("x", pattern, evaluator=evaluator)
        for relation, evaluator in zip((sql_relation, memory_relation), evaluators)
    ]
    _assert_partition_parity(*partitions)


def test_set_cell_parity():
    rows = [("a", "b", "c"), ("a", "b", "d"), ("e", "b", "c")]
    sql_relation, memory_relation = _pair(rows)
    for relation in (sql_relation, memory_relation):
        relation.partitions().attribute_partition("x")
        relation.set_cell(1, "x", "e")
    assert list(sql_relation.iter_rows()) == list(memory_relation.iter_rows())
    _assert_column_parity(sql_relation.dictionary("x"), memory_relation.dictionary("x"))
    _assert_partition_parity(
        sql_relation.partitions().attribute_partition("x"),
        memory_relation.partitions().attribute_partition("x"),
    )


# -- PFD query parity ----------------------------------------------------------

_variable_pfd = make_pfd("x", "y", [{"x": "⊥", "y": "⊥"}])
_mixed_pfd = make_pfd(("x", "y"), "z", [{"x": r"{{\w*}}", "y": "⊥", "z": "⊥"}])
_constant_pfd = make_pfd("x", "y", [{"x": r"a{{\w*}}", "y": "a"}])


@settings(max_examples=50, deadline=None)
@given(rows=_tables, pfd=st.sampled_from([_variable_pfd, _mixed_pfd, _constant_pfd]))
def test_pfd_query_parity(rows, pfd):
    sql_relation, memory_relation = _pair(rows)
    assert pfd.violations(sql_relation) == pfd.violations(memory_relation)
    assert pfd.support(sql_relation) == pfd.support(memory_relation)
    assert pfd.row_statistics(sql_relation) == pfd.row_statistics(memory_relation)


@settings(max_examples=40, deadline=None)
@given(base=_tables, batch=_batches)
def test_pfd_delta_violations_parity(base, batch):
    sql_relation, memory_relation = _pair(base)
    for relation in (sql_relation, memory_relation):
        _variable_pfd.violations(relation)  # prime pre-append state
    since = sql_relation.row_count
    sql_relation.append_rows(batch)
    memory_relation.append_rows(batch)
    assert _variable_pfd.violations(
        sql_relation, since_row=since
    ) == _variable_pfd.violations(memory_relation, since_row=since)


# -- pipeline parity -----------------------------------------------------------

_zip_rows = [(f"{90000 + i % 7:05d}", f"City{i % 7}") for i in range(40)] + [
    ("90001", "Wrong1"),
    ("90002", "Wrong2"),
]


def _pipeline(backend):
    session = CleaningSession.from_rows(["zip", "city"], list(_zip_rows), backend=backend)
    return session.discover(), session.detect(), session.repair(), session


def test_discover_detect_repair_parity():
    results = {backend: _pipeline(backend) for backend in (SQL, PYTHON)}
    sql_discovery, sql_detection, sql_repair, _ = results[SQL]
    mem_discovery, mem_detection, mem_repair, _ = results[PYTHON]
    assert [str(d.pfd) for d in sql_discovery.dependencies] == [
        str(d.pfd) for d in mem_discovery.dependencies
    ]
    assert [
        (d.support, d.coverage) for d in sql_discovery.dependencies
    ] == [(d.support, d.coverage) for d in mem_discovery.dependencies]
    assert sql_discovery.pfds == mem_discovery.pfds
    assert sql_detection.errors == mem_detection.errors
    assert sql_detection.violations == mem_detection.violations
    assert sql_detection.backend == SQL
    assert sql_repair.repairs == mem_repair.repairs
    assert list(sql_repair.relation.iter_rows()) == list(mem_repair.relation.iter_rows())


def test_detector_parity_after_append():
    reports = {}
    for backend in (SQL, PYTHON):
        session = CleaningSession.from_rows(
            ["zip", "city"], list(_zip_rows), backend=backend
        )
        pfds = session.discover().pfds
        session.append([("90003", "City3"), ("90001", "Wrong9")])
        reports[backend] = session.detect_new(pfds)
    assert reports[SQL].errors == reports[PYTHON].errors
    assert reports[SQL].violations == reports[PYTHON].violations
