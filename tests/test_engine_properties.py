"""Property-based tests for the batch evaluation engine.

The invariant (satellite requirement of the engine refactor): for every
distinct value of a column — including empty strings and the memoized
cache-hit path — the batch :meth:`PatternEvaluator.match_column` result
agrees with both :meth:`CompiledPattern.match` (the production single-value
engine) and :func:`reference_match` (the executable specification).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dataset.relation import Relation
from repro.engine.dictionary import DictionaryColumn
from repro.engine.evaluator import PatternEvaluator
from repro.patterns.matcher import compile_pattern, reference_match

from test_patterns_properties import patterns

_cell_values = st.lists(
    st.text(alphabet="ABCabc019-, XYZxyz.", max_size=10), min_size=1, max_size=10
)


@settings(max_examples=100, deadline=None)
@given(pattern=patterns(), values=_cell_values)
def test_match_column_agrees_with_both_single_value_engines(pattern, values):
    values = list(values) + [""]  # always exercise the empty string
    column = DictionaryColumn.from_values(values)
    evaluator = PatternEvaluator()
    batch = evaluator.match_column(pattern, column)
    compiled = compile_pattern(pattern)

    assert len(batch.results) == column.distinct_count
    for code, value in enumerate(column.values):
        batch_result = batch.results[code]
        single = compiled.match(value)
        reference = reference_match(pattern, value)
        assert batch_result.matched == single.matched == reference.matched
        if batch_result.matched and pattern.has_constrained_group:
            assert (
                batch_result.constrained_value
                == single.constrained_value
                == reference.constrained_value
            )
            assert (
                batch_result.constrained_span
                == single.constrained_span
                == reference.constrained_span
            )

    # Cache-hit path: the memoized object is returned and stays consistent.
    cached = evaluator.match_column(pattern, column)
    assert cached is batch
    assert evaluator.cache_hits >= 1
    for code, value in enumerate(column.values):
        assert cached.results[code].matched == compiled.match(value).matched


@settings(max_examples=60, deadline=None)
@given(pattern=patterns(), values=_cell_values)
def test_broadcast_rows_agree_with_per_row_matching(pattern, values):
    column = DictionaryColumn.from_values(values)
    evaluator = PatternEvaluator()
    batch = evaluator.match_column(pattern, column)
    compiled = compile_pattern(pattern)
    expected = [row_id for row_id, value in enumerate(values) if compiled.matches(value)]
    assert batch.matching_rows() == expected
    assert batch.match_count() == len(expected)
    for row_id, value in enumerate(values):
        assert batch.result_for_row(row_id).matched == compiled.matches(value)


@settings(max_examples=40, deadline=None)
@given(values=_cell_values)
def test_relation_dictionary_round_trips_column(values):
    relation = Relation.from_rows(["x"], [(value,) for value in values])
    column = relation.dictionary("x")
    assert [column.value_of_row(i) for i in range(len(values))] == values
    assert sorted(set(values)) == sorted(column.values)
