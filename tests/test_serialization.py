"""JSON round-trip serialization of PFDs and the CLI --save / --load flow."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.core.pfd import PFD, make_pfd
from repro.core.serialization import (
    load_pfds,
    pfds_from_json,
    pfds_to_json,
    save_pfds,
)
from repro.core.tableau import PatternTableau, PatternTuple, WILDCARD
from repro.dataset.csvio import write_csv
from repro.dataset.relation import Relation
from repro.exceptions import ConstraintError


def _sample_pfds() -> list[PFD]:
    constant = make_pfd(
        "zip",
        "city",
        [
            {"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"},
            {"zip": r"{{100}}\D{2}", "city": r"New\ York"},
        ],
        relation_name="Zip",
    )
    variable = make_pfd(
        ("name", "zip"),
        "gender",
        [{"name": r"{{\LU\LL+}}\S\A*", "zip": "⊥", "gender": "⊥"}],
        relation_name="Census",
    )
    return [constant, variable]


def test_pattern_tuple_json_round_trip():
    row = PatternTuple.from_mapping({"zip": r"{{900}}\D{2}", "city": "⊥"})
    data = row.to_json_dict()
    assert data == {"zip": r"{{900}}\D{2}", "city": "⊥"}
    assert PatternTuple.from_json_dict(data) == row


def test_pattern_tableau_json_round_trip():
    tableau = PatternTableau(
        [
            {"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"},
            {"zip": "⊥", "city": "⊥"},
        ]
    )
    rebuilt = PatternTableau.from_json_rows(tableau.to_json_rows())
    assert rebuilt == tableau


def test_pfd_json_round_trip_preserves_equality_and_semantics():
    relation = Relation.from_rows(
        ["zip", "city"],
        [("90001", "Los Angeles"), ("90002", "Los Angeles"), ("90003", "San Diego")],
    )
    for pfd in _sample_pfds():
        rebuilt = PFD.from_json(pfd.to_json())
        assert rebuilt == pfd
        assert hash(rebuilt) == hash(pfd)
    original = _sample_pfds()[0]
    rebuilt = PFD.from_json(original.to_json())
    assert [v.suspect_cells for v in rebuilt.violations(relation)] == [
        v.suspect_cells for v in original.violations(relation)
    ]


def test_wildcard_cells_round_trip_to_the_wildcard_singleton():
    pfd = make_pfd("a", "b", [{"a": r"{{\D+}}", "b": "⊥"}])
    rebuilt = PFD.from_json(pfd.to_json())
    assert rebuilt.tableau[0].cell("b") is WILDCARD


def test_literal_underscore_pattern_does_not_round_trip_to_wildcard():
    from repro.patterns.parser import parse_pattern

    # resolve_cell's hand-written "_" alias must not leak into the JSON path:
    # a stored pattern that matches only the string "_" has to come back as
    # that pattern, not as match-anything.
    row = PatternTuple.from_mapping({"a": parse_pattern("_"), "b": "⊥"})
    rebuilt = PatternTuple.from_json_dict(row.to_json_dict())
    assert rebuilt == row
    assert not rebuilt.is_wildcard("a")
    assert rebuilt.pattern("a").constant_value() == "_"


def test_pfds_from_json_wraps_bad_pattern_strings():
    document = json.dumps(
        {
            "format": "pfd-set/1",
            "pfds": [
                {
                    "relation": "R",
                    "lhs": ["a"],
                    "rhs": ["b"],
                    "tableau": [{"a": "{{unclosed", "b": "x"}],
                }
            ],
        }
    )
    with pytest.raises(ConstraintError):
        pfds_from_json(document)


def test_pfd_set_document_round_trip(tmp_path):
    pfds = _sample_pfds()
    text = pfds_to_json(pfds)
    document = json.loads(text)
    assert document["format"] == "pfd-set/1"
    assert pfds_from_json(text) == pfds

    path = save_pfds(tmp_path / "pfds.json", pfds)
    assert load_pfds(path) == pfds


def test_pfds_from_json_accepts_bare_list():
    pfds = _sample_pfds()
    bare = json.dumps([pfd.to_json_dict() for pfd in pfds])
    assert pfds_from_json(bare) == pfds


def test_pfds_from_json_rejects_unknown_format():
    with pytest.raises(ConstraintError):
        pfds_from_json(json.dumps({"format": "pfd-set/99", "pfds": []}))


@pytest.mark.parametrize(
    "text",
    [
        "not json{",
        "42",
        json.dumps({"format": "pfd-set/1"}),  # no 'pfds' list
        json.dumps({"format": "pfd-set/1", "pfds": "oops"}),
        json.dumps({"format": "pfd-set/1", "pfds": [{"lhs": ["a"]}]}),  # incomplete entry
    ],
)
def test_pfds_from_json_raises_constraint_error_on_malformed_documents(text):
    with pytest.raises(ConstraintError):
        pfds_from_json(text)


def test_cached_column_match_does_not_pin_its_column():
    import gc
    import weakref

    from repro.engine.dictionary import DictionaryColumn
    from repro.engine.evaluator import PatternEvaluator

    evaluator = PatternEvaluator()
    column = DictionaryColumn.from_values(["a", "b"])
    ref = weakref.ref(column)
    evaluator.match_column(r"\LL+", column)
    del column
    gc.collect()
    assert ref() is None
    assert evaluator.cached_column_count() == 0


def _dirty_zip_csv(tmp_path):
    rows = [
        ("90001", "Los Angeles"),
        ("90002", "Los Angeles"),
        ("90003", "Los Angeles"),
        ("90004", "Los Angeles"),
        ("90005", "San Diego"),  # the error
    ] * 4
    relation = Relation.from_rows(["zip", "city"], rows, name="zips")
    path = tmp_path / "zips.csv"
    write_csv(relation, path)
    return path


def test_cli_discover_save_then_detect_load(tmp_path, capsys):
    csv_path = _dirty_zip_csv(tmp_path)
    saved = tmp_path / "pfds.json"

    code = cli_main(
        ["discover", str(csv_path), "--min-support", "2", "--save", str(saved)]
    )
    assert code == 0
    assert saved.exists()
    output = capsys.readouterr().out
    assert "saved" in output

    loaded = load_pfds(saved)
    assert loaded  # discovery on this table finds at least one PFD

    code = cli_main(["detect", str(csv_path), "--load", str(saved)])
    assert code == 0
    output = capsys.readouterr().out
    assert f"loaded {len(loaded)} PFD(s)" in output
    assert "suspected errors" in output


def test_cli_detect_save_round_trips(tmp_path, capsys):
    csv_path = _dirty_zip_csv(tmp_path)
    saved = tmp_path / "detect-pfds.json"
    code = cli_main(
        ["detect", str(csv_path), "--min-support", "2", "--save", str(saved)]
    )
    assert code == 0
    assert load_pfds(saved) == load_pfds(saved)
    capsys.readouterr()


def test_cli_validate_reports_per_pfd_coverage_and_violations(tmp_path, capsys):
    csv_path = _dirty_zip_csv(tmp_path)
    saved = tmp_path / "pfds.json"
    code = cli_main(
        ["discover", str(csv_path), "--min-support", "2", "--save", str(saved)]
    )
    assert code == 0
    capsys.readouterr()

    code = cli_main(["validate", str(csv_path), "--load", str(saved)])
    assert code == 0
    output = capsys.readouterr().out
    loaded = load_pfds(saved)
    assert f"loaded {len(loaded)} PFD(s)" in output
    assert "coverage=" in output
    assert "violations=" in output
    assert f"/{len(loaded)} PFD(s) hold" in output


def test_cli_validate_missing_file_exits_2(tmp_path, capsys):
    csv_path = _dirty_zip_csv(tmp_path)
    code = cli_main(
        ["validate", str(csv_path), "--load", str(tmp_path / "nope.json")]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")


def test_cli_validate_unknown_attribute_exits_2(tmp_path, capsys):
    from repro.core.pfd import make_pfd
    from repro.core.serialization import save_pfds

    csv_path = _dirty_zip_csv(tmp_path)
    saved = tmp_path / "other.json"
    save_pfds(
        saved,
        [make_pfd("nope", "city", [{"nope": r"{{\D{3}}}\D{2}", "city": "⊥"}])],
    )
    code = cli_main(["validate", str(csv_path), "--load", str(saved)])
    assert code == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")


def test_pfd_set_metadata_round_trip(tmp_path):
    from repro.core.serialization import load_pfds_document, pfds_from_json_document

    pfds = _sample_pfds()
    metadata = {"tenant": "acme", "rows": 19, "config": {"min_support": 2}}
    text = pfds_to_json(pfds, metadata=metadata)
    document = json.loads(text)
    assert document["metadata"] == metadata

    restored, restored_metadata = pfds_from_json_document(text)
    assert restored == pfds
    assert restored_metadata == metadata

    path = save_pfds(tmp_path / "pfds.json", pfds, metadata=metadata)
    loaded, loaded_metadata = load_pfds_document(path)
    assert loaded == pfds
    assert loaded_metadata == metadata
    # The plain loader ignores the metadata block.
    assert load_pfds(path) == pfds


def test_pfd_set_without_metadata_loads_empty_dict():
    from repro.core.serialization import pfds_from_json_document

    pfds = _sample_pfds()
    restored, metadata = pfds_from_json_document(pfds_to_json(pfds))
    assert restored == pfds
    assert metadata == {}
    # Bare-list documents predate the metadata block.
    bare = json.dumps([pfd.to_json_dict() for pfd in pfds])
    assert pfds_from_json_document(bare) == (pfds, {})


def test_pfd_set_rejects_non_object_metadata():
    from repro.core.serialization import pfds_from_json_document

    document = json.dumps({"format": "pfd-set/1", "pfds": [], "metadata": [1, 2]})
    with pytest.raises(ConstraintError):
        pfds_from_json_document(document)
