"""Tests for tokenization and n-gram extraction."""

import pytest

from repro.dataset.tokenizer import (
    extract_parts,
    has_separators,
    iter_column_parts,
    ngrams,
    prefix_ngrams,
    token_texts,
    tokenize,
)


class TestHasSeparators:
    def test_multi_token_values(self):
        assert has_separators("John Charles")
        assert has_separators("F-9-107")
        assert has_separators("Holloway, Donald E.")

    def test_single_token_values(self):
        assert not has_separators("90001")
        assert not has_separators("Chicago")
        assert not has_separators("")

    def test_trailing_separator_only(self):
        assert not has_separators("abc ")


class TestTokenize:
    def test_name_tokens_keep_trailing_separator(self):
        parts = tokenize("John Charles")
        assert [(p.text, p.position) for p in parts] == [("John ", 0), ("Charles", 1)]

    def test_last_first_format(self):
        parts = tokenize("Holloway, Donald E.")
        assert [p.text for p in parts] == ["Holloway, ", "Donald ", "E."]
        assert [p.position for p in parts] == [0, 1, 2]

    def test_without_separator(self):
        assert token_texts("F-9-107") == ["F", "9", "107"]

    def test_leading_separators_are_skipped(self):
        parts = tokenize("  John")
        assert [p.text for p in parts] == ["John"]
        assert parts[0].start == 2

    def test_empty_value(self):
        assert tokenize("") == []

    def test_start_offsets(self):
        parts = tokenize("CS-101")
        assert [(p.text, p.start) for p in parts] == [("CS-", 0), ("101", 3)]


class TestNgrams:
    def test_all_ngrams_of_short_value(self):
        grams = {p.text for p in ngrams("abc")}
        assert grams == {"a", "b", "c", "ab", "bc", "abc"}

    def test_prefix_ngrams(self):
        grams = [p.text for p in prefix_ngrams("90001")]
        assert grams == ["9", "90", "900", "9000", "90001"]

    def test_max_length(self):
        grams = [p.text for p in prefix_ngrams("90001", max_length=3)]
        assert grams == ["9", "90", "900"]

    def test_min_length(self):
        grams = [p.text for p in prefix_ngrams("90001", min_length=3)]
        assert grams == ["900", "9000", "90001"]

    def test_positions_are_offsets(self):
        grams = ngrams("ab")
        assert {(p.text, p.position) for p in grams} == {("a", 0), ("ab", 0), ("b", 1)}


class TestExtractParts:
    def test_value_strategy(self):
        parts = extract_parts("Chicago", "value")
        assert len(parts) == 1
        assert parts[0].text == "Chicago"

    def test_tokenize_strategy(self):
        parts = extract_parts("John Smith", "tokenize")
        assert [p.text for p in parts] == ["John ", "Smith"]

    def test_ngrams_strategy_prefixes_only(self):
        parts = extract_parts("9001", "ngrams", prefixes_only=True)
        assert [p.text for p in parts] == ["9", "90", "900", "9001"]

    def test_empty_value_gives_no_parts(self):
        assert extract_parts("", "tokenize") == []

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            extract_parts("x", "bogus")

    def test_iter_column_parts(self):
        pairs = list(iter_column_parts(["ab", "", "c"], "ngrams"))
        row_ids = {row_id for row_id, _ in pairs}
        assert row_ids == {0, 2}
