"""Tests for the stripped-partition (PLI) layer.

Covers the :class:`StrippedPartition` algebra (intersect / refines / error),
the :class:`PartitionManager` caches and their mutation invalidation
(mirroring the dictionary-cache regression tests), and — as the property
satellite of the partition refactor — hypothesis tests asserting that the
partition-backed ``PFD.violations`` / ``support`` / ``row_statistics`` agree
exactly with the seed's dict-grouping implementation on generated relations
and pattern tableaux.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.core.pfd import PFD, make_pfd, prime_partitions_for_pfds
from repro.core.tableau import PatternTableau, PatternTuple, WILDCARD
from repro.dataset.csvio import write_csv
from repro.dataset.relation import Relation
from repro.engine.partitions import PartitionKey, StrippedPartition
from repro.engine.evaluator import PatternEvaluator

from test_patterns_properties import patterns


def _partition(classes, row_count, covered=None):
    return StrippedPartition(classes, row_count, covered=covered)


class TestStrippedPartition:
    def test_basic_shape(self):
        partition = _partition([(0, 2), (1, 3, 4)], 6, covered=(0, 1, 2, 3, 4, 5))
        assert partition.class_count == 2
        assert partition.stripped_row_count == 5
        assert partition.covered_count == 6
        assert partition.error == pytest.approx((5 - 2) / 6)

    def test_intersect_probe_table_product(self):
        left = _partition([(0, 1, 2, 3)], 6, covered=range(6))
        right = _partition([(0, 1), (2, 4, 5)], 6, covered=range(6))
        product = left.intersect(right)
        assert product.classes == ((0, 1),)
        # Covered rows of an intersection derive lazily from the parents.
        assert product.covered == tuple(range(6))

    def test_intersect_empty(self):
        left = _partition([], 4, covered=(0, 1))
        right = _partition([(0, 1)], 4, covered=range(4))
        assert left.intersect(right).classes == ()

    def test_refines(self):
        finer = _partition([(0, 1), (2, 3)], 5, covered=range(5))
        coarser = _partition([(0, 1, 2, 3)], 5, covered=range(5))
        assert finer.refines(coarser)
        assert not coarser.refines(finer)

    def test_refines_codes(self):
        partition = _partition([(0, 1), (2, 3)], 4, covered=range(4))
        assert partition.refines_codes([7, 7, 3, 3])
        assert not partition.refines_codes([7, 7, 3, 9])

    def test_minority_rows(self):
        partition = _partition([(0, 1, 2), (3, 4)], 5, covered=range(5))
        assert partition.minority_rows([1, 1, 2, 5, 5]) == [2]
        assert partition.minority_rows([1, 1, 1, 5, 5]) == []


class TestPartitionManager:
    @pytest.fixture
    def relation(self):
        return Relation.from_rows(
            ["zip", "city", "state"],
            [
                ("90001", "Los Angeles", "CA"),
                ("90001", "Los Angeles", "CA"),
                ("90002", "Los Angeles", "CA"),
                ("10001", "New York", "NY"),
                ("10001", "New York", "NY"),
                ("", "Chicago", "IL"),
            ],
        )

    def test_attribute_partition_strips_singletons_and_empties(self, relation):
        manager = relation.partitions()
        partition = manager.attribute_partition("zip")
        assert partition.classes == ((0, 1), (3, 4))
        assert partition.covered == (0, 1, 2, 3, 4)  # empty cell uncovered
        assert partition.row_count == 6

    def test_attribute_partition_is_cached(self, relation):
        manager = relation.partitions()
        first = manager.attribute_partition("city")
        assert manager.attribute_partition("city") is first
        assert manager.stats.attribute_hits == 1
        assert manager.stats.attribute_misses == 1

    def test_pattern_partition_groups_by_constrained_part(self, relation):
        manager = relation.partitions()
        partition = manager.pattern_partition("zip", r"{{\D{3}}}\D{2}")
        # Prefixes: 900 -> rows 0,1,2 / 100 -> rows 3,4.
        assert partition.classes == ((0, 1, 2), (3, 4))
        assert partition.covered == (0, 1, 2, 3, 4)

    def test_wildcard_pattern_canonicalizes_to_attribute(self, relation):
        manager = relation.partitions()
        assert manager.key("zip", r"{{\A*}}") == PartitionKey("zip")
        assert manager.pattern_partition("zip", r"{{\A*}}") is (
            manager.attribute_partition("zip")
        )

    def test_intersection_memoized_and_descends_from_prefix(self, relation):
        manager = relation.partitions()
        keys = [manager.key("zip"), manager.key("city"), manager.key("state")]
        full = manager.intersection(keys)
        assert full.classes == ((0, 1), (3, 4))
        assert manager.stats.intersection_misses == 2  # (zip,city) then +state
        again = manager.intersection(keys)
        assert again is full
        assert manager.stats.intersection_hits == 1
        # The canonically ordered level-2 prefix (city, state) was memoized
        # as a byproduct of the level-3 build.
        prefix = manager.intersection([manager.key("city"), manager.key("state")])
        assert manager.stats.intersection_hits == 2
        assert prefix.class_count >= 1

    def test_set_cell_invalidates_only_touched_attribute(self, relation):
        manager = relation.partitions()
        zip_partition = manager.attribute_partition("zip")
        city_partition = manager.attribute_partition("city")
        pattern_partition = manager.pattern_partition("zip", r"{{\D{3}}}\D{2}")
        intersection = manager.attribute_set_partition(("zip", "city"))

        relation.set_cell(2, "zip", "90001")

        assert relation.partitions() is manager  # the manager object is stable
        fresh = manager.attribute_partition("zip")
        assert fresh is not zip_partition
        assert fresh.classes == ((0, 1, 2), (3, 4))  # reflects the mutation
        assert manager.attribute_partition("city") is city_partition
        assert manager.pattern_partition("zip", r"{{\D{3}}}\D{2}") is not pattern_partition
        assert manager.attribute_set_partition(("zip", "city")) is not intersection

    def test_append_row_extends_instead_of_invalidating(self, relation):
        manager = relation.partitions()
        manager.attribute_partition("zip")
        manager.attribute_partition("city")
        manager.attribute_set_partition(("zip", "city"))
        assert manager.cached_partition_count() == 3

        relation.append_row(("90002", "Los Angeles", "CA"))

        # The leaves were patched in place; the memoized intersection went
        # stale and is refreshed from the patched classes on next request.
        assert manager.cached_partition_count() == 2
        assert manager.stats.attribute_extends == 2
        partition = manager.attribute_partition("zip")
        assert (2, 6) in partition.classes  # the appended row promoted 90002
        refreshed = manager.attribute_set_partition(("zip", "city"))
        assert manager.stats.intersection_refreshes == 1
        assert (2, 6) in refreshed.classes
        assert manager.cached_partition_count() == 3

    def test_pfd_evaluation_sees_mutations_through_partition_invalidation(self):
        relation = Relation.from_rows(
            ["zip", "city"],
            [("90001", "Los Angeles"), ("90002", "Los Angeles"), ("90003", "Los Angeles")],
        )
        pfd = make_pfd("zip", "city", [{"zip": r"{{900}}\D{2}", "city": "⊥"}])
        assert pfd.holds_on(relation)
        relation.set_cell(2, "city", "San Diego")
        assert not pfd.holds_on(relation)
        relation.set_cell(2, "city", "Los Angeles")
        assert pfd.holds_on(relation)

    def test_prime_partitions_for_pfds_builds_shared_leaves(self, relation):
        pfd_a = make_pfd("zip", "city", [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}])
        pfd_b = make_pfd("zip", "state", [{"zip": r"{{\D{3}}}\D{2}", "state": "⊥"}])
        manager = prime_partitions_for_pfds(relation, [pfd_a, pfd_b])
        # Both PFDs share one (zip, pattern) leaf, deduped *before* the cache
        # is probed: exactly one build, no redundant lookups.
        assert manager.stats.pattern_misses == 1
        assert manager.stats.pattern_hits == 0
        assert manager.cached_partition_count() == 1


# --------------------------------------------------------------------------
# Property satellite: partition-backed evaluation == dict-grouping reference
# --------------------------------------------------------------------------
#
# The reference functions below are the seed's row-at-a-time dict-grouping
# implementations (the pre-partition ``PFD._lhs_keys`` path), kept here as an
# executable specification.


def _reference_lhs_keys(pfd: PFD, relation: Relation, row) -> dict[int, tuple[str, ...]]:
    keys: dict[int, tuple[str, ...]] = {}
    compiled = {attribute: row.compiled(attribute) for attribute in pfd.lhs}
    for row_id in range(relation.row_count):
        key: list[str] = []
        for attribute in pfd.lhs:
            value = relation.cell(row_id, attribute)
            result = compiled[attribute].match(value)
            if not value or not result.matched:
                break
            key.append(
                result.constrained_value if result.constrained_value is not None else ""
            )
        else:
            keys[row_id] = tuple(key)
    return keys


def _reference_support(pfd: PFD, relation: Relation) -> int:
    covered: set[int] = set()
    for row in pfd.tableau:
        covered.update(_reference_lhs_keys(pfd, relation, row))
    return len(covered)


def _reference_suspects(pfd: PFD, relation: Relation) -> dict[object, set[int]]:
    """Suspect row ids per tableau row, via row-at-a-time dict grouping."""
    suspects: dict[object, set[int]] = {row: set() for row in pfd.tableau}
    for row in pfd.tableau:
        keys = _reference_lhs_keys(pfd, relation, row)
        if row.is_constant_row(pfd.lhs, pfd.rhs):
            for row_id in keys:
                for attribute in pfd.rhs:
                    expected = row.pattern(attribute).constant_value()
                    if relation.cell(row_id, attribute) != expected:
                        suspects[row].add(row_id)
            continue
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for row_id, key in keys.items():
            groups[key].append(row_id)
        for row_ids in groups.values():
            if len(row_ids) < 2:
                continue
            for attribute in pfd.rhs:
                compiled = row.compiled(attribute)
                buckets: dict[tuple[bool, str], list[int]] = defaultdict(list)
                for row_id in row_ids:
                    value = relation.cell(row_id, attribute)
                    result = compiled.match(value)
                    if result.matched:
                        extracted = (
                            result.constrained_value
                            if result.constrained_value is not None
                            else ""
                        )
                        buckets[(True, extracted)].append(row_id)
                    else:
                        buckets[(False, value)].append(row_id)
                if len(buckets) < 2:
                    continue
                majority, _ = max(
                    buckets.items(), key=lambda item: (len(item[1]), item[0][0], item[0][1])
                )
                for bucket, ids in buckets.items():
                    if bucket != majority:
                        suspects[row].update(ids)
    return suspects


_cell_pools = st.sampled_from(
    ["Aa0", "Ab1", "Ba0", "Bb1", "C-2", "", "Aa", "Bb"]
)
_rows = st.lists(
    st.tuples(_cell_pools, _cell_pools, _cell_pools), min_size=1, max_size=14
)


@st.composite
def _tableau_cells(draw, lhs, rhs):
    cells = {attribute: draw(patterns()) for attribute in lhs}
    for attribute in rhs:
        cells[attribute] = draw(st.one_of(st.just(WILDCARD), patterns()))
    return cells


@settings(max_examples=80, deadline=None)
@given(rows=_rows, data=st.data(), lhs_size=st.integers(min_value=1, max_value=2))
def test_partition_evaluation_agrees_with_dict_grouping(rows, data, lhs_size):
    relation = Relation.from_rows(["a", "b", "c"], rows)
    lhs = ("a", "b")[:lhs_size]
    tableau_rows = [
        PatternTuple.from_mapping(data.draw(_tableau_cells(lhs, ("c",))))
        for _ in range(data.draw(st.integers(min_value=1, max_value=2)))
    ]
    pfd = PFD(lhs, ("c",), PatternTableau(tableau_rows))
    evaluator = PatternEvaluator()

    # Support and per-row matching rows.
    assert pfd.support(relation, evaluator=evaluator) == _reference_support(pfd, relation)
    for row in pfd.tableau:
        assert pfd.matching_rows(relation, row, evaluator=evaluator) == sorted(
            _reference_lhs_keys(pfd, relation, row)
        )

    # Violations: identical suspect cells, per tableau row.
    reference = _reference_suspects(pfd, relation)
    actual: dict[object, set[int]] = {row: set() for row in pfd.tableau}
    for row in pfd.tableau:
        if row.is_constant_row(pfd.lhs, pfd.rhs):
            found = pfd._constant_row_violations(relation, row, evaluator)
        else:
            found = pfd._variable_row_violations(relation, row, evaluator)
        for violation in found:
            actual[row].update(cell.row_id for cell in violation.suspect_cells)
    assert actual == reference

    # Row statistics are derived from the same two primitives.
    for statistics in pfd.row_statistics(relation, evaluator=evaluator):
        assert statistics.support == len(
            _reference_lhs_keys(pfd, relation, statistics.row)
        )
        assert statistics.violating_tuples == len(reference[statistics.row])


@settings(max_examples=60, deadline=None)
@given(rows=_rows)
def test_attribute_partitions_agree_with_dict_grouping(rows):
    relation = Relation.from_rows(["a", "b", "c"], rows)
    for lhs in (("a",), ("a", "b"), ("a", "b", "c")):
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for row_id in range(relation.row_count):
            key = tuple(relation.cell(row_id, attribute) for attribute in lhs)
            if any(not part for part in key):
                continue
            groups[key].append(row_id)
        expected_classes = sorted(
            (tuple(ids) for ids in groups.values() if len(ids) >= 2),
            key=lambda ids: ids[0],
        )
        expected_covered = sorted(
            row_id for ids in groups.values() for row_id in ids
        )
        partition = relation.partitions().attribute_set_partition(lhs)
        assert list(partition.classes) == expected_classes
        assert list(partition.covered) == expected_covered


# --------------------------------------------------------------------------
# CLI satellite: --stats
# --------------------------------------------------------------------------


def test_cli_discover_stats_flag(tmp_path, capsys):
    relation = Relation.from_rows(
        ["zip", "city"],
        [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)]
        + [(f"{10000 + i:05d}", "New York") for i in range(8)],
        name="zips",
    )
    path = tmp_path / "zips.csv"
    write_csv(relation, path)
    assert cli_main(["discover", str(path), "--min-support", "4", "--stats"]) == 0
    output = capsys.readouterr().out
    assert "partition cache:" in output
    assert "hits" in output and "misses" in output
    assert "level 1:" in output and "candidate(s)" in output
    assert "cached partitions:" in output
