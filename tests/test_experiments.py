"""Tests for the experiment runners (Table 3/7/8, Figures 5/6, efficiency).

These run at a small scale; the benchmarks exercise the full protocol.  The
assertions check the qualitative *shapes* the paper reports rather than
absolute numbers.
"""

import pytest

from repro.experiments import (
    evaluate_point,
    evaluate_table,
    run_figure,
    run_table3,
    run_table7,
    run_table8,
)
from repro.experiments.efficiency import run_efficiency
from repro.datagen import build_table, build_zip_state_table


class TestTable7:
    @pytest.fixture(scope="class")
    def small_result(self):
        return run_table7(scale=0.15, table_ids=("T2", "T3", "T9"), run_multi_lhs=False)

    def test_structure(self, small_result):
        assert len(small_result.tables) == 3
        rendering = small_result.render()
        assert "T2" in rendering and "PFD" in rendering

    def test_pfd_finds_at_least_as_many_valid_deps_as_baselines(self, small_result):
        for table in small_result.tables:
            pfd_valid = table.pfd.recall
            assert pfd_valid >= table.fdep.recall - 1e-9
            assert pfd_valid >= table.cfd.recall - 1e-9

    def test_pfd_recall_is_high(self, small_result):
        assert small_result.average_pfd_recall() >= 0.7

    def test_error_detection_reported(self, small_result):
        for table in small_result.tables:
            assert table.error_detection.true_errors >= 0
            assert 0.0 <= table.error_detection.precision <= 1.0

    def test_evaluate_single_table(self):
        table = build_table("T12", scale=0.2)
        result = evaluate_table(table, run_multi_lhs=True)
        assert result.multi_lhs_runtime_seconds >= result.pfd.runtime_seconds * 0  # measured
        assert result.row_count == table.row_count


class TestTable8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table8(scale=0.4)

    def test_three_dependencies(self, result):
        names = [row.dependency for row in result.rows]
        assert names == ["Full Name -> Gender", "Fax -> State", "Zip -> City"]

    def test_precision_is_high(self, result):
        for row in result.rows:
            assert row.pfd_count > 0
            assert row.precision >= 0.85

    def test_coverage_positive(self, result):
        for row in result.rows:
            assert 0.0 < row.coverage <= 1.0

    def test_render(self, result):
        assert "Precision" in result.render()


class TestFigures:
    @pytest.fixture(scope="class")
    def clean_relation(self):
        return build_zip_state_table(rows=600).relation

    def test_precision_recall_shape_with_support(self, clean_relation):
        low_k = evaluate_point(clean_relation, "state", 0.06, "outside", 2, 0.04, seed=5)
        high_k = evaluate_point(clean_relation, "state", 0.06, "outside", 6, 0.04, seed=5)
        assert high_k.precision >= low_k.precision - 0.05
        assert high_k.recall <= low_k.recall + 0.05

    def test_recall_drops_with_error_rate(self, clean_relation):
        low_rate = evaluate_point(clean_relation, "state", 0.02, "outside", 2, 0.04, seed=5)
        high_rate = evaluate_point(clean_relation, "state", 0.10, "outside", 2, 0.04, seed=5)
        assert high_rate.recall <= low_rate.recall + 1e-9

    def test_active_domain_mode_also_detects(self, clean_relation):
        point = evaluate_point(clean_relation, "state", 0.04, "active", 2, 0.04, seed=5)
        assert point.injected > 0
        assert point.recall > 0.3

    def test_run_figure_small_grid(self):
        result = run_figure(
            "outside",
            rows=300,
            error_rates=(0.02, 0.08),
            supports=(2,),
            noise_ratios=(0.04,),
        )
        assert len(result.points) == 2
        series = result.series(2, 0.04)
        assert [point.error_rate for point in series] == [0.02, 0.08]
        assert "Figure 5" in result.render()


class TestTable3AndEfficiency:
    def test_table3_showcases(self):
        result = run_table3(scale=0.3)
        assert len(result.showcases) == 4
        names = [showcase.dependency for showcase in result.showcases]
        assert "Full Name -> Gender" in names
        gender = next(s for s in result.showcases if s.dependency == "Full Name -> Gender")
        assert gender.sample_patterns
        assert "Table 3" in result.render()

    def test_efficiency_ordering(self):
        result = run_efficiency(row_counts=(120, 240))
        assert len(result.points) == 2
        for point in result.points:
            # FDep is the fastest method; multi-LHS PFD discovery the slowest.
            assert point.fdep_seconds <= point.pfd_multi_seconds
            assert point.pfd_seconds <= point.pfd_multi_seconds + 1e-6
        assert "runtime" in result.render()


class TestCLI:
    def test_discover_and_detect_commands(self, tmp_path, capsys):
        from repro.cli import main
        from repro.dataset.csvio import write_csv

        table = build_table("T2", scale=0.1)
        path = tmp_path / "t2.csv"
        write_csv(table.relation, path)
        assert main(["discover", str(path), "--min-support", "4"]) == 0
        output = capsys.readouterr().out
        assert "PFD discovery" in output
        assert main(["detect", str(path), "--min-support", "4"]) == 0
        assert "suspected errors" in capsys.readouterr().out

    def test_suite_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["suite", str(tmp_path / "suite"), "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert out.count(".csv") == 15

    def test_experiment_command(self, capsys):
        from repro.cli import main

        assert main(["experiment", "table8", "--scale", "0.3"]) == 0
        assert "Table 8" in capsys.readouterr().out
