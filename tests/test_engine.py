"""Tests for the vectorized evaluation core (:mod:`repro.engine`)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.pfd import make_pfd
from repro.dataset.index import PatternIndex
from repro.dataset.relation import Relation
from repro.engine.dictionary import DictionaryColumn
from repro.engine.evaluator import PatternEvaluator, default_evaluator
from repro.patterns.matcher import CompiledPattern, compile_pattern


# --------------------------------------------------------------------------
# DictionaryColumn
# --------------------------------------------------------------------------


def test_dictionary_column_encodes_and_decodes():
    column = DictionaryColumn.from_values(["a", "b", "a", "", "b", "a"], attribute="x")
    assert column.values == ("a", "b", "")
    assert list(column.codes) == [0, 1, 0, 2, 1, 0]
    assert column.row_count == 6
    assert column.distinct_count == 3
    assert [column.value_of_row(i) for i in range(6)] == ["a", "b", "a", "", "b", "a"]
    assert column.code_of("b") == 1
    assert column.code_of("missing") is None
    assert column.counts() == [3, 2, 1]
    assert column.rows_by_code() == [[0, 2, 5], [1, 4], [3]]
    assert column.duplication_factor == 2.0


def test_dictionary_column_broadcast_codes_preserves_row_order():
    column = DictionaryColumn.from_values(["x", "y", "x", "z", "y"])
    rows = column.broadcast_codes([True, False, True])
    assert rows == [0, 2, 3]


def test_relation_dictionary_is_cached_and_patched_in_place():
    relation = Relation.from_rows(["a", "b"], [("1", "x"), ("2", "y"), ("1", "x")])
    first = relation.dictionary("a")
    assert relation.dictionary("a") is first

    # set_cell patches the dictionary in place (identity kept, so evaluator
    # caches keyed on the object survive): the new value gets a fresh code
    # at the end, the old value keeps its slot for its remaining row.
    relation.set_cell(0, "a", "9")
    assert relation.dictionary("a") is first
    assert first.values == ("1", "2", "9")
    assert list(first.codes) == [2, 1, 0]

    # set_cell on one column leaves the other column's dictionary untouched.
    b_dict = relation.dictionary("b")
    relation.set_cell(1, "a", "7")
    assert relation.dictionary("b") is b_dict

    # append_rows extends every cached dictionary in place too.
    relation.append_rows([("3", "z")])
    assert relation.dictionary("b") is b_dict
    assert relation.dictionary("b").row_count == 4
    assert relation.dictionary("b").values == ("x", "y", "z")
    assert list(relation.dictionary("b").codes) == [0, 1, 0, 2]


# --------------------------------------------------------------------------
# PatternEvaluator
# --------------------------------------------------------------------------


def test_match_column_matches_per_distinct_value():
    column = DictionaryColumn.from_values(["90001", "10001", "90001", "bad", ""])
    evaluator = PatternEvaluator()
    batch = evaluator.match_column(r"{{\D{3}}}\D{2}", column)
    assert [result.matched for result in batch.results] == [True, True, False, False]
    assert batch.results[0].constrained_value == "900"
    assert batch.results[1].constrained_value == "100"
    assert batch.matched_codes() == [0, 1]
    assert batch.matching_rows() == [0, 1, 2]
    assert batch.match_count() == 3
    assert batch.result_for_row(2).constrained_value == "900"


def test_match_column_is_memoized_per_pattern_and_column():
    column = DictionaryColumn.from_values(["a", "b", "a"])
    evaluator = PatternEvaluator()
    first = evaluator.match_column(r"\LL+", column)
    calls_after_first = evaluator.match_calls
    again = evaluator.match_column(r"\LL+", column)
    assert again is first
    assert evaluator.match_calls == calls_after_first
    assert evaluator.cache_hits == 1

    # A different column (even with equal contents) is evaluated separately.
    other = DictionaryColumn.from_values(["a", "b", "a"])
    evaluator.match_column(r"\LL+", other)
    assert evaluator.match_calls == calls_after_first + 2


def test_match_column_accepts_ast_string_and_compiled_forms():
    column = DictionaryColumn.from_values(["ab"])
    evaluator = PatternEvaluator()
    as_string = evaluator.match_column(r"\LL+", column)
    as_compiled = evaluator.match_column(compile_pattern(r"\LL+"), column)
    as_ast = evaluator.match_column(compile_pattern(r"\LL+").pattern, column)
    assert as_string is as_compiled is as_ast


def test_default_evaluator_is_shared():
    assert default_evaluator() is default_evaluator()


def test_match_column_memo_survives_distinct_compiled_instances():
    # The memo is value-keyed: a CompiledPattern compiled outside the
    # compile_pattern caches (as after an lru_cache eviction) still hits.
    column = DictionaryColumn.from_values(["ab", "cd"])
    evaluator = PatternEvaluator()
    first = evaluator.match_column(compile_pattern(r"\LL+"), column)
    fresh_instance = CompiledPattern(r"\LL+")
    assert fresh_instance is not compile_pattern(r"\LL+")
    again = evaluator.match_column(fresh_instance, column)
    assert again is first
    assert evaluator.cache_hits == 1


# --------------------------------------------------------------------------
# Acceptance: at most one match call per (pattern, distinct value)
# --------------------------------------------------------------------------


@pytest.fixture
def match_call_counter(monkeypatch):
    """Count CompiledPattern.match invocations per (pattern, value) pair."""
    counts: Counter = Counter()
    original = CompiledPattern.match

    def counting_match(self, value):
        counts[(self.pattern.to_pattern_string(), value)] += 1
        return original(self, value)

    monkeypatch.setattr(CompiledPattern, "match", counting_match)
    return counts


def _duplicated_relation(copies: int = 40) -> Relation:
    base = [
        ("90001", "Los Angeles"),
        ("90002", "Los Angeles"),
        ("90003", "Los Angeles"),
        ("10001", "New York"),
        ("10002", "New York"),
        ("60601", "Chicago"),
    ]
    return Relation.from_rows(["zip", "city"], base * copies)


def test_pfd_coverage_and_violations_match_once_per_distinct_value(match_call_counter):
    relation = _duplicated_relation()
    pfd = make_pfd(
        "zip",
        "city",
        [
            {"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"},
            {"zip": r"{{\D{3}}}\D{2}", "city": "⊥"},
        ],
    )
    evaluator = PatternEvaluator()
    coverage = pfd.coverage(relation, evaluator=evaluator)
    violations = pfd.violations(relation, evaluator=evaluator)
    assert coverage == 1.0
    assert violations == []
    assert match_call_counter, "expected the engine to issue match calls"
    # Despite 240 rows and repeated evaluation across tableau rows, coverage,
    # and violations, every (pattern, distinct value) pair is matched at most
    # once — there are only 6 distinct zips and 3 distinct cities.
    for (pattern, value), count in match_call_counter.items():
        assert count == 1, f"{pattern!r} matched {value!r} {count} times"


def test_detection_reuses_discovery_evaluator_cache(match_call_counter):
    from repro.cleaning.detector import detect_errors

    relation = _duplicated_relation()
    relation.set_cell(0, "city", "Los Angelos")
    pfd = make_pfd("zip", "city", [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}])
    evaluator = PatternEvaluator()
    pfd.violations(relation, evaluator=evaluator)
    count_after_first = sum(match_call_counter.values())
    report = detect_errors(relation, [pfd], evaluator=evaluator)
    assert report.errors
    # The shared evaluator answers detection entirely from the memo.
    assert sum(match_call_counter.values()) == count_after_first


def test_index_build_extracts_once_per_distinct_value(monkeypatch):
    import repro.dataset.index as index_module

    counts: Counter = Counter()
    original = index_module.extract_parts

    def counting_extract(value, strategy, **kwargs):
        counts[value] += 1
        return original(value, strategy, **kwargs)

    monkeypatch.setattr(index_module, "extract_parts", counting_extract)
    relation = _duplicated_relation()
    index = PatternIndex(relation)
    assert index.attributes  # the index actually indexed something
    for value, count in counts.items():
        assert count == 1, f"extract_parts({value!r}) called {count} times"


def test_index_contents_identical_to_per_row_build():
    """The dictionary-encoded build must produce exactly the seed's entries."""
    relation = _duplicated_relation(copies=3)
    index = PatternIndex(relation)
    for attribute in index.attributes:
        attr_index = index.attribute_index(attribute)
        dictionary = relation.dictionary(attribute)
        for key, ids in attr_index.entries.items():
            assert ids == sorted(ids)
            for row_id in ids:
                text, _position = key
                assert text in dictionary.value_of_row(row_id)
        for row_id, keys in attr_index.row_parts.items():
            for key in keys:
                assert row_id in attr_index.entries[key]


# --------------------------------------------------------------------------
# Evaluation equivalence on mutation
# --------------------------------------------------------------------------


def test_pfd_evaluation_sees_mutations_through_cache_invalidation():
    relation = Relation.from_rows(
        ["zip", "city"],
        [("90001", "Los Angeles"), ("90002", "Los Angeles"), ("90003", "Los Angeles")],
    )
    pfd = make_pfd("zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"}])
    evaluator = PatternEvaluator()
    assert pfd.holds_on(relation, evaluator=evaluator)
    relation.set_cell(2, "city", "San Diego")
    violations = pfd.violations(relation, evaluator=evaluator)
    assert len(violations) == 1
    assert violations[0].suspect_cells[0].row_id == 2
    relation.set_cell(2, "city", "Los Angeles")
    assert pfd.holds_on(relation, evaluator=evaluator)
