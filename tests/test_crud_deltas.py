"""Full-CRUD delta maintenance: mutated caches == cold rebuild, every backend.

The tentpole guarantee of the unified mutation API is that after any
:class:`~repro.dataset.mutations.MutationBatch` — cell updates, row deletes,
appends, or a mix — every delta-maintained layer (dictionary-encoded
columns, evaluator masks, stripped partitions, detection reports) agrees
**bit-for-bit at the row/value level** with a from-scratch rebuild over the
final rows, on all available engine backends, cold and interleaved with
``append_rows``.  Internal code numbering is explicitly *not* pinned:
updates leave zero-count tombstones where a fresh build never allocates a
code, so equality is asserted on classes, covered sets, cell values, and
reports — the things every downstream consumer reads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning.detector import ErrorDetector
from repro.core.pfd import make_pfd
from repro.dataset.mutations import DeleteOp, MutationBatch, UpdateOp, UpsertOp
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.engine.backend import available_backends
from repro.engine.evaluator import PatternEvaluator
from repro.exceptions import ReproError
from repro.session import CleaningSession

_BACKENDS = available_backends()

_ZIPS = ["90001", "90002", "90003", "10001", "10002", "abc", ""]
_CITIES = ["Los Angeles", "New York", "Chicago", ""]
_zip_pattern = r"{{\D{3}}}\D{2}"
_PATTERNS = [_zip_pattern, r"\D{5}"]

_base_rows = st.lists(
    st.tuples(st.sampled_from(_ZIPS), st.sampled_from(_CITIES)),
    min_size=1,
    max_size=12,
)
_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.sampled_from(["zip", "city"]),
        st.sampled_from(_ZIPS + _CITIES),
    ),
    min_size=0,
    max_size=6,
)
_deletes = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=3)
_appends = st.lists(
    st.tuples(st.sampled_from(_ZIPS), st.sampled_from(_CITIES)),
    min_size=0,
    max_size=4,
)


def _primed(rows, backend):
    relation = Relation.from_rows(["zip", "city"], rows, name="R", backend=backend)
    evaluator = PatternEvaluator()
    for attribute in relation.attribute_names:
        evaluator.match_column_many(_PATTERNS, relation.dictionary(attribute))
    manager = relation.partitions()
    manager.attribute_partition("zip")
    manager.attribute_partition("city")
    manager.pattern_partition("zip", _zip_pattern, evaluator=evaluator)
    manager.intersection(
        [manager.key("zip", _zip_pattern), manager.key("city")], evaluator=evaluator
    )
    manager.attribute_set_partition(("zip", "city"))
    return relation, evaluator


def _batch_for(row_count, updates, deletes, appends):
    """Map raw hypothesis draws onto valid pre-batch row ids (empty-safe)."""
    ops = []
    if row_count:
        for raw_row, attribute, value in updates:
            ops.append(UpdateOp(raw_row % row_count, ((attribute, value),)))
        if deletes:
            ops.append(DeleteOp(sorted({raw % row_count for raw in deletes})))
    if appends:
        ops.append(UpsertOp([list(row) for row in appends]))
    return MutationBatch(ops) if ops else None


def _expected_rows(base, batch):
    """The final rows a cold observer expects (updates, then blanks, then
    appends) — computed independently of the library's apply()."""
    rows = [list(row) for row in base]
    columns = {"zip": 0, "city": 1}
    if batch is None:
        return rows
    for op in batch:
        if isinstance(op, UpdateOp):
            for attribute, value in op.values:
                rows[op.row_id][columns[attribute]] = str(value)
        elif isinstance(op, DeleteOp):
            for row_id in op.row_ids:
                rows[row_id] = ["", ""]
    for op in batch:
        if isinstance(op, UpsertOp):
            rows.extend(list(row) for row in op.rows)
    return rows


def _assert_relation_matches_cold_rebuild(relation, evaluator, expected, backend):
    fresh = Relation.from_rows(["zip", "city"], expected, name="R", backend=backend)
    fresh_evaluator = PatternEvaluator()

    assert [list(row) for row in relation.iter_rows()] == expected
    assert relation.row_count == fresh.row_count

    for attribute in relation.attribute_names:
        column = relation.dictionary(attribute)
        fresh_column = fresh.dictionary(attribute)
        # Value-level equality (codes may differ: tombstones vs fresh).
        got_rows = {
            column.values[code]: rows
            for code, rows in enumerate(column.rows_by_code())
            if rows
        }
        want_rows = {
            fresh_column.values[code]: rows
            for code, rows in enumerate(fresh_column.rows_by_code())
            if rows
        }
        assert got_rows == want_rows, attribute
        # Mask parity through the shared evaluator: matched row sets agree.
        match_set = evaluator.match_column_many(_PATTERNS, column)
        fresh_set = fresh_evaluator.match_column_many(_PATTERNS, fresh_column)
        for pattern in _PATTERNS:
            got_mask = match_set.matched_mask(pattern)
            want_mask = fresh_set.matched_mask(pattern)
            got_matched = {
                row
                for code, rows in enumerate(column.rows_by_code())
                if code < len(got_mask) and got_mask[code]
                for row in rows
            }
            want_matched = {
                row
                for code, rows in enumerate(fresh_column.rows_by_code())
                if code < len(want_mask) and want_mask[code]
                for row in rows
            }
            assert got_matched == want_matched, (attribute, pattern)

    manager = relation.partitions()
    fresh_manager = fresh.partitions()
    for label, got, want in [
        ("attr zip", manager.attribute_partition("zip"),
         fresh_manager.attribute_partition("zip")),
        ("attr city", manager.attribute_partition("city"),
         fresh_manager.attribute_partition("city")),
        ("pattern zip", manager.pattern_partition("zip", _zip_pattern, evaluator=evaluator),
         fresh_manager.pattern_partition("zip", _zip_pattern, evaluator=fresh_evaluator)),
        ("intersection",
         manager.intersection(
             [manager.key("zip", _zip_pattern), manager.key("city")], evaluator=evaluator
         ),
         fresh_manager.intersection(
             [fresh_manager.key("zip", _zip_pattern), fresh_manager.key("city")],
             evaluator=fresh_evaluator,
         )),
        ("attr set", manager.attribute_set_partition(("zip", "city")),
         fresh_manager.attribute_set_partition(("zip", "city"))),
    ]:
        assert got.classes == want.classes, label
        assert got.covered == want.covered, label
        assert got.row_count == want.row_count, label

    return fresh, fresh_evaluator


@pytest.mark.parametrize("backend", _BACKENDS)
@settings(max_examples=40, deadline=None)
@given(base=_base_rows, updates=_updates, deletes=_deletes, appends=_appends)
def test_mutated_caches_equal_cold_rebuild(backend, base, updates, deletes, appends):
    relation, evaluator = _primed(base, backend)
    batch = _batch_for(relation.row_count, updates, deletes, appends)
    if batch is not None:
        relation.apply(batch)
    expected = _expected_rows(base, batch)
    _assert_relation_matches_cold_rebuild(relation, evaluator, expected, backend)


@pytest.mark.parametrize("backend", _BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    base=_base_rows,
    updates=_updates,
    deletes=_deletes,
    interleaved=_appends,
    updates2=_updates,
)
def test_interleaved_mutations_and_appends_equal_cold_rebuild(
    backend, base, updates, deletes, interleaved, updates2
):
    """apply -> append_rows -> apply again still matches a cold rebuild."""
    relation, evaluator = _primed(base, backend)
    first = _batch_for(relation.row_count, updates, deletes, ())
    if first is not None:
        relation.apply(first)
    expected = _expected_rows(base, first)
    if interleaved:
        relation.append_rows([list(row) for row in interleaved])
        expected.extend(list(row) for row in interleaved)
    second = _batch_for(relation.row_count, updates2, (), ())
    if second is not None:
        relation.apply(second)
        expected = _expected_rows(expected, second)
    _assert_relation_matches_cold_rebuild(relation, evaluator, expected, backend)


@pytest.mark.parametrize("backend", _BACKENDS)
@settings(max_examples=30, deadline=None)
@given(base=_base_rows, updates=_updates, deletes=_deletes, appends=_appends)
def test_changed_rows_detection_matches_full_report(
    backend, base, updates, deletes, appends
):
    """detect(changed_rows=...) == the full report on the final state,
    restricted to classes currently containing a changed row."""
    pfd = make_pfd("zip", "city", [{"zip": _zip_pattern, "city": "⊥"}])
    relation, evaluator = _primed(base, backend)
    batch = _batch_for(relation.row_count, updates, deletes, appends)
    if batch is None:
        return
    result = relation.apply(batch)
    changed = set(result.changed_rows)

    full = ErrorDetector([pfd], evaluator=evaluator).detect(relation)
    scoped = ErrorDetector([pfd], evaluator=evaluator).detect(
        relation, changed_rows=sorted(changed)
    )

    # Every scoped violation is a full violation, and every full violation
    # touching a changed row is in the scoped report.
    full_keys = {(v.constraint_repr, v.cells) for v in full.violations}
    scoped_keys = {(v.constraint_repr, v.cells) for v in scoped.violations}
    assert scoped_keys <= full_keys
    touching = {
        (v.constraint_repr, v.cells)
        for v in full.violations
        if any(cell.row_id in changed for cell in v.cells)
    }
    assert touching <= scoped_keys
    # Error cells agree wherever both reports speak.
    scoped_cells = {e.cell for e in scoped.errors}
    full_on_changed = {e.cell for e in full.errors if e.cell.row_id in changed}
    assert full_on_changed <= scoped_cells
    assert scoped_cells <= {e.cell for e in full.errors}


class TestApplyValidation:
    def test_out_of_range_update_raises_before_any_change(self):
        relation = Relation.from_rows(["a"], [("1",), ("2",)])
        version = relation.version
        with pytest.raises(ReproError):
            relation.apply(MutationBatch.update_cells([(5, "a", "x")]))
        assert relation.version == version
        assert relation.cell(0, "a") == "1"

    def test_unknown_attribute_raises(self):
        relation = Relation.from_rows(["a"], [("1",)])
        with pytest.raises(ReproError):
            relation.apply(MutationBatch.update_cells([(0, "nope", "x")]))

    def test_out_of_range_delete_raises(self):
        relation = Relation.from_rows(["a"], [("1",)])
        with pytest.raises(ReproError):
            relation.apply(MutationBatch.deletes([3]))

    def test_delete_marks_deleted_rows_and_blanks_cells(self):
        relation = Relation.from_rows(["a", "b"], [("1", "x"), ("2", "y")])
        result = relation.apply(MutationBatch.deletes([0]))
        assert result.deleted_rows == (0,)
        assert relation.row(0) == ("", "")
        assert relation.row(1) == ("2", "y")
        assert 0 in relation.deleted_rows
        assert relation.row_count == 2

    def test_noop_batch_reports_falsy_result(self):
        relation = Relation.from_rows(["a"], [("1",)])
        version = relation.version
        result = relation.apply(MutationBatch.update_cells([(0, "a", "1")]))
        assert not result
        assert relation.version == version


class TestSessionCrud:
    @pytest.fixture
    def session(self) -> CleaningSession:
        rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
            (f"{10000 + i:05d}", "New York") for i in range(8)
        ]
        session = CleaningSession.from_rows(
            ["zip", "city"], rows, name="zips", config=DiscoveryConfig(min_support=4)
        )
        session.discover()
        return session

    def test_update_flags_only_touched_classes(self, session):
        result = session.update([(0, "city", "New York")])
        assert result.updated_rows == (0,)
        report = session.detect_changed()
        assert {error.cell.row_id for error in report.errors} == {0}

    def test_detect_changed_consumes_the_pending_set(self, session):
        session.update([(0, "city", "New York")])
        session.detect_changed()
        with pytest.raises(ReproError):
            session.detect_changed()

    def test_delete_is_a_clean_delta_here(self, session):
        session.delete([0, 5])
        report = session.detect_changed()
        assert not report.errors
        assert session.relation.row(0) == ("", "")

    def test_deleting_the_offender_heals_its_class(self, session):
        session.append([("90050", "New York")])
        assert {e.cell.row_id for e in session.detect_changed().errors} == {16}
        session.delete([16])
        assert not session.detect_changed().errors

    def test_apply_preserves_discovery_memo(self, session):
        discovery = session.discovery
        session.update([(0, "city", "Chicago")])
        assert session.discovery is discovery

    def test_mixed_batch_accumulates_changed_rows(self, session):
        session.update([(1, "city", "New York")])
        session.delete([2])
        session.append([("90020", "Los Angeles")])
        report = session.detect_changed()
        assert {error.cell.row_id for error in report.errors} == {1}

    def test_detect_changed_without_mutations_raises(self, session):
        with pytest.raises(ReproError):
            session.detect_changed()

    def test_external_mutation_clears_the_pending_set(self, session):
        session.update([(0, "city", "New York")])
        session.relation.set_cell(1, "city", "New York")
        with pytest.raises(ReproError):
            session.detect_changed()

    def test_noop_update_leaves_nothing_pending(self, session):
        result = session.update([(0, "city", "Los Angeles")])
        assert not result
        # Nothing changed, so there is no pending delta to detect.
        with pytest.raises(ReproError):
            session.detect_changed()

    def test_append_row_is_deprecated(self, session):
        with pytest.warns(DeprecationWarning):
            row_id = session.relation.append_row(("90021", "Los Angeles"))
        assert row_id == 16


class TestDictionaryTombstones:
    def test_update_to_existing_value_leaves_no_orphan_count(self):
        """set_cell onto a value already in the dictionary must shift counts,
        not grow them — the old code becomes a zero-count tombstone and the
        counts/rows_by_code invariants hold."""
        relation = Relation.from_rows(["a"], [("x",), ("y",), ("y",)])
        dictionary = relation.dictionary("a")
        relation.set_cell(0, "a", "y")
        assert dictionary.values == ("x", "y")
        assert dictionary.counts() == [0, 3]
        assert dictionary.rows_by_code() == [[], [0, 1, 2]]
        assert sum(dictionary.counts()) == relation.row_count

    def test_tombstoned_code_is_revived_on_rewrite(self):
        relation = Relation.from_rows(["a"], [("x",), ("y",)])
        dictionary = relation.dictionary("a")
        relation.set_cell(0, "a", "y")   # "x" dies
        assert dictionary.counts() == [0, 2]
        relation.set_cell(1, "a", "x")   # "x" revives — no new code allocated
        assert dictionary.values == ("x", "y")
        assert dictionary.counts() == [1, 1]
        assert dictionary.rows_by_code() == [[1], [0]]

    def test_update_delete_churn_preserves_invariants(self):
        relation = Relation.from_rows(["a"], [("x",), ("y",), ("z",)])
        dictionary = relation.dictionary("a")
        relation.apply(MutationBatch.update_cells([(0, "a", "y"), (2, "a", "x")]))
        relation.apply(MutationBatch.deletes([1]))
        relation.apply(MutationBatch.update_cells([(1, "a", "z")]))
        assert sum(dictionary.counts()) == relation.row_count
        seen = [None] * relation.row_count
        for code, rows in enumerate(dictionary.rows_by_code()):
            assert len(rows) == dictionary.counts()[code]
            for row in rows:
                assert seen[row] is None
                seen[row] = dictionary.values[code]
        assert seen == [relation.cell(r, "a") for r in range(relation.row_count)]
