"""End-to-end integration tests: generate -> discover -> detect -> repair,
plus cross-module invariants tying discovery output to the inference layer."""


from repro import (
    DiscoveryConfig,
    PFDDiscoverer,
    Relation,
    detect_errors,
    discover_pfds,
    repair_errors,
)
from repro.cleaning import cell_precision_recall, dependency_precision_recall, inject_errors
from repro.datagen import build_gov_addresses, build_udw_students, build_zip_state_table
from repro.inference import implies
from repro.patterns import is_restriction_of


class TestDiscoverDetectRepairLoop:
    def test_zip_table_end_to_end(self):
        table = build_gov_addresses(rows=400, seed=11, dirt_rate=0.0)
        clean = table.relation
        injected = inject_errors(clean, "city", 0.05, mode="outside", seed=2)

        result = discover_pfds(injected.relation, DiscoveryConfig(min_support=5))
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None

        report = detect_errors(injected.relation, [dependency.pfd])
        detected_city_cells = {c for c in report.error_cells if c.attribute == "city"}
        metrics = cell_precision_recall(detected_city_cells, injected.error_cells)
        assert metrics.recall >= 0.8
        assert metrics.precision >= 0.8

        repaired = repair_errors(injected.relation, [dependency.pfd])
        restored = sum(
            1
            for error in injected.errors
            if repaired.relation.cell(error.cell.row_id, "city") == error.original_value
        )
        assert restored / len(injected.errors) >= 0.8

    def test_students_table_dependencies(self):
        table = build_udw_students(rows=500, seed=8)
        result = discover_pfds(table.relation, DiscoveryConfig(min_support=5))
        metrics = dependency_precision_recall(result.dependency_keys, table.true_dependencies)
        assert metrics.recall >= 0.5
        # The name -> gender dependency must be among the discovered ones.
        assert result.dependency_for(("full_name",), "gender") is not None

    def test_discovered_pfds_satisfy_their_own_noise_budget(self):
        table = build_zip_state_table(rows=500)
        config = DiscoveryConfig(min_support=5, noise_ratio=0.05)
        result = PFDDiscoverer(config).discover(table.relation)
        for dependency in result.dependencies:
            assert dependency.pfd.violation_ratio(table.relation) <= config.noise_ratio + 1e-9


class TestDiscoveryMeetsInference:
    def test_constant_rows_are_implied_by_generalized_pfd(self):
        """A variable PFD discovered by generalization implies the constant
        PFDs it replaced (the LHS-generalization / restriction story)."""
        table = build_zip_state_table(rows=400)
        constants = PFDDiscoverer(
            DiscoveryConfig(min_support=5, generalize=False)
        ).discover(table.relation)
        generalized = PFDDiscoverer(
            DiscoveryConfig(min_support=5, generalize=True)
        ).discover(table.relation)
        constant_dep = constants.dependency_for(("zip",), "state")
        variable_dep = generalized.dependency_for(("zip",), "state")
        assert constant_dep is not None and variable_dep is not None
        assert variable_dep.is_variable and not constant_dep.is_variable
        # Every constant LHS pattern is a restriction of the variable pattern.
        variable_cell = variable_dep.pfd.tableau[0].cell("zip")
        for row in constant_dep.pfd.tableau:
            assert is_restriction_of(row.cell("zip"), variable_cell)
        # And the variable PFD implies the "agreement-only" form of each
        # constant row: tuples matching the constant zip prefix must agree on
        # the state.  (It does NOT imply the constant itself — knowing that
        # all 606xx rows share a state does not tell us the state is IL.)
        from repro.core.pfd import PFD
        from repro.core.tableau import PatternTableau, PatternTuple, WILDCARD

        first_row = constant_dep.pfd.tableau[0]
        agreement_only = PFD(
            ("zip",),
            ("state",),
            PatternTableau([PatternTuple.from_mapping({"zip": first_row.cell("zip"), "state": WILDCARD})]),
            "ZipState",
        )
        assert implies([variable_dep.pfd], agreement_only)
        full_constant = PFD(("zip",), ("state",), PatternTableau([first_row]), "ZipState")
        assert not implies([variable_dep.pfd], full_constant)

    def test_paper_table_1_full_loop(self):
        """The introduction's Table 1 (with one extra Susan row so that the
        Susan group has a strict majority): discovery at tiny support finds
        the first-name dependency, which then flags the wrong gender."""
        names = Relation.from_rows(
            ["name", "gender"],
            [
                ("John Charles", "M"),
                ("John Bosco", "M"),
                ("Susan Orlean", "F"),
                ("Susan Sarandon", "F"),
                ("Susan Boyle", "M"),
            ],
            name="Name",
        )
        config = DiscoveryConfig(min_support=2, noise_ratio=0.34, min_coverage=0.1)
        result = discover_pfds(names, config)
        dependency = result.dependency_for(("name",), "gender")
        assert dependency is not None
        report = detect_errors(names, [dependency.pfd])
        assert any(cell.row_id == 4 and cell.attribute == "gender" for cell in report.error_cells)
