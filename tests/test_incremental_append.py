"""The incremental append path: delta-maintained caches == full rebuild.

The tentpole guarantee of batch ingestion is that every cache
``Relation.append_rows`` extends in place — dictionary-encoded columns, the
evaluator's pattern-match masks, and the stripped-partition layer — is
**bit-identical** to what a from-scratch rebuild over the concatenated rows
would produce, so every downstream consumer (discovery, validation,
detection, repair) sees exactly the same classes, codes, and reports.  The
hypothesis properties below pin that equivalence on random tables and random
appended batches; the unit tests cover the scoped ``since_row`` detection,
the session ``append``/``detect_new`` workflow, and the CLI ``ingest``
subcommand.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning.detector import ErrorDetector
from repro.cli import main as cli_main
from repro.core.pfd import make_pfd
from repro.dataset.csvio import write_csv
from repro.dataset.relation import Relation
from repro.discovery.config import DiscoveryConfig
from repro.engine.evaluator import PatternEvaluator
from repro.exceptions import ReproError
from repro.session import CleaningSession

# A small value pool keeps equivalence classes (and pattern matches) dense
# enough that random tables actually exercise promotions, new distinct
# values, empty cells, and violations.
_ZIPS = ["90001", "90002", "90003", "10001", "10002", "abc", ""]
_CITIES = ["Los Angeles", "New York", "Chicago", ""]

_zip_pattern = r"{{\D{3}}}\D{2}"

_base_rows = st.lists(
    st.tuples(st.sampled_from(_ZIPS), st.sampled_from(_CITIES)),
    min_size=0,
    max_size=16,
)
_batch_rows = st.lists(
    st.tuples(st.sampled_from(_ZIPS), st.sampled_from(_CITIES)),
    min_size=1,
    max_size=6,
)


def _primed_relation(rows) -> tuple[Relation, PatternEvaluator]:
    """A relation with every cache layer warm (the ingest starting point)."""
    relation = Relation.from_rows(["zip", "city"], rows, name="R")
    evaluator = PatternEvaluator()
    for attribute in relation.attribute_names:
        evaluator.match_column_many(
            [_zip_pattern, r"\D{5}"], relation.dictionary(attribute)
        )
    manager = relation.partitions()
    manager.attribute_partition("zip")
    manager.attribute_partition("city")
    manager.pattern_partition("zip", _zip_pattern, evaluator=evaluator)
    manager.intersection(
        [manager.key("zip", _zip_pattern), manager.key("city")], evaluator=evaluator
    )
    manager.attribute_set_partition(("zip", "city"))
    return relation, evaluator


def _assert_partitions_equal(got, want, label):
    assert got.classes == want.classes, label
    assert got.covered == want.covered, label
    assert got.row_count == want.row_count, label


@settings(max_examples=80, deadline=None)
@given(base=_base_rows, batch=_batch_rows)
def test_extended_caches_equal_full_rebuild(base, batch):
    """Dictionaries, masks, and partitions after ``append_rows`` match a
    from-scratch build over the concatenated rows, bit for bit."""
    relation, evaluator = _primed_relation(base)
    relation.append_rows(batch)

    fresh = Relation.from_rows(["zip", "city"], base + batch, name="R")
    fresh_evaluator = PatternEvaluator()

    for attribute in relation.attribute_names:
        column = relation.dictionary(attribute)
        fresh_column = fresh.dictionary(attribute)
        assert column.values == fresh_column.values
        assert list(column.codes) == list(fresh_column.codes)
        assert column.rows_by_code() == fresh_column.rows_by_code()
        assert column.counts() == fresh_column.counts()

        match_set = evaluator.match_column_many([_zip_pattern, r"\D{5}"], column)
        fresh_set = fresh_evaluator.match_column_many(
            [_zip_pattern, r"\D{5}"], fresh_column
        )
        for pattern in (_zip_pattern, r"\D{5}"):
            assert match_set.matched_mask(pattern) == fresh_set.matched_mask(pattern)
        match = evaluator.match_column(_zip_pattern, column)
        fresh_match = fresh_evaluator.match_column(_zip_pattern, fresh_column)
        assert [r.matched for r in match.results] == [
            r.matched for r in fresh_match.results
        ]
        assert [r.constrained_value for r in match.results] == [
            r.constrained_value for r in fresh_match.results
        ]

    manager = relation.partitions()
    fresh_manager = fresh.partitions()
    _assert_partitions_equal(
        manager.attribute_partition("zip"),
        fresh_manager.attribute_partition("zip"),
        "attribute zip",
    )
    _assert_partitions_equal(
        manager.attribute_partition("city"),
        fresh_manager.attribute_partition("city"),
        "attribute city",
    )
    _assert_partitions_equal(
        manager.pattern_partition("zip", _zip_pattern, evaluator=evaluator),
        fresh_manager.pattern_partition("zip", _zip_pattern, evaluator=fresh_evaluator),
        "pattern zip",
    )
    keys = [manager.key("zip", _zip_pattern), manager.key("city")]
    fresh_keys = [fresh_manager.key("zip", _zip_pattern), fresh_manager.key("city")]
    _assert_partitions_equal(
        manager.intersection(keys, evaluator=evaluator),
        fresh_manager.intersection(fresh_keys, evaluator=fresh_evaluator),
        "pattern intersection",
    )
    _assert_partitions_equal(
        manager.attribute_set_partition(("zip", "city")),
        fresh_manager.attribute_set_partition(("zip", "city")),
        "attribute intersection",
    )


@settings(max_examples=60, deadline=None)
@given(base=_base_rows, batch=_batch_rows)
def test_detection_on_extended_caches_equals_full_rebuild(base, batch):
    """``detect`` over delta-maintained caches == ``detect`` from scratch,
    and the scoped ``since_row`` report == the full report filtered to
    violations touching the delta."""
    pfd = make_pfd("zip", "city", [{"zip": _zip_pattern, "city": "⊥"}])

    relation, evaluator = _primed_relation(base)
    relation.append_rows(batch)
    start = len(base)

    fresh = Relation.from_rows(["zip", "city"], base + batch, name="R")
    fresh_evaluator = PatternEvaluator()

    full = ErrorDetector([pfd], evaluator=evaluator).detect(relation)
    fresh_full = ErrorDetector([pfd], evaluator=fresh_evaluator).detect(fresh)
    assert full.error_cells == fresh_full.error_cells
    assert [
        (e.cell, e.current_value, e.suggested_value, e.evidence_count)
        for e in full.errors
    ] == [
        (e.cell, e.current_value, e.suggested_value, e.evidence_count)
        for e in fresh_full.errors
    ]

    scoped = ErrorDetector([pfd], evaluator=evaluator).detect(relation, since_row=start)
    touching = [
        violation
        for violation in fresh_full.violations
        if any(cell.row_id >= start for cell in violation.cells)
    ]
    assert [(v.constraint_repr, v.cells) for v in scoped.violations] == [
        (v.constraint_repr, v.cells) for v in touching
    ]


class TestAppendRows:
    def test_append_rows_returns_range_and_accepts_mappings(self):
        relation = Relation.from_rows(["a", "b"], [("1", "x")])
        appended = relation.append_rows([("2", "y"), {"a": "3"}])
        assert appended == range(1, 3)
        assert relation.row(2) == ("3", "")

    def test_empty_batch_is_a_noop(self):
        relation = Relation.from_rows(["a"], [("1",)])
        version = relation.version
        dictionary = relation.dictionary("a")
        assert relation.append_rows([]) == range(1, 1)
        assert relation.version == version
        assert relation.dictionary("a") is dictionary
        assert dictionary.row_count == 1

    def test_append_rows_extends_dictionary_in_place(self):
        relation = Relation.from_rows(["a"], [("1",), ("2",)])
        dictionary = relation.dictionary("a")
        relation.append_rows([("2",), ("3",)])
        assert relation.dictionary("a") is dictionary
        assert dictionary.values == ("1", "2", "3")
        assert list(dictionary.codes) == [0, 1, 1, 2]

    def test_uncached_state_stays_lazy(self):
        relation = Relation.from_rows(["a"], [("1",)])
        relation.append_rows([("2",)])
        assert relation.dictionary("a").values == ("1", "2")

    def test_set_cell_patches_the_dictionary_in_place(self):
        relation = Relation.from_rows(["a", "b"], [("1", "x"), ("2", "y")])
        relation.append_rows([("3", "z")])
        dictionary = relation.dictionary("a")
        version = relation.version
        relation.set_cell(0, "a", "9")
        # The dictionary object survives (memoized evaluator masks stay
        # valid); the old code becomes a zero-count tombstone.
        assert relation.dictionary("a") is dictionary
        assert relation.version == version + 1
        assert dictionary.values == ("1", "2", "3", "9")
        assert list(dictionary.codes) == [3, 1, 2]
        assert dictionary.counts()[0] == 0
        assert relation.cell(0, "a") == "9"

    def test_set_cell_noop_write_does_not_bump_version(self):
        relation = Relation.from_rows(["a"], [("1",), ("2",)])
        version = relation.version
        relation.set_cell(1, "a", "2")
        assert relation.version == version


class TestSessionIngestion:
    @pytest.fixture
    def session(self) -> CleaningSession:
        rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
            (f"{10000 + i:05d}", "New York") for i in range(8)
        ]
        return CleaningSession.from_rows(
            ["zip", "city"], rows, name="zips", config=DiscoveryConfig(min_support=4)
        )

    def test_append_preserves_discovery(self, session):
        result = session.discover()
        appended = session.append([("90100", "Los Angeles")])
        assert appended == range(16, 17)
        assert session.discovery is result
        assert session.discover() is result

    def test_append_drops_stale_detection(self, session):
        session.discover()
        report = session.detect()
        session.append([("90100", "New York")])
        assert session.detect() is not report

    def test_detect_new_flags_only_delta_errors(self, session):
        session.discover()
        assert len(session.detect()) == 0
        # Both rows join the existing "900"-prefix class; only the New York
        # one is the minority there.
        session.append([("90008", "Los Angeles"), ("90009", "New York")])
        report = session.detect_new()
        assert {error.cell.row_id for error in report.errors} == {17}
        assert report.errors[0].suggested_value == "Los Angeles"

    def test_detect_new_consumes_the_pending_delta(self, session):
        session.discover()
        session.append([("90100", "Los Angeles")])
        session.detect_new()
        with pytest.raises(ReproError):
            session.detect_new()

    def test_consecutive_appends_accumulate_one_delta(self, session):
        session.discover()
        session.append([("90008", "New York")])
        session.append([("90009", "Los Angeles")])
        report = session.detect_new()
        assert {error.cell.row_id for error in report.errors} == {16}

    def test_detect_new_without_append_raises(self, session):
        session.discover()
        with pytest.raises(ReproError):
            session.detect_new()

    def test_external_mutation_clears_the_pending_delta(self, session):
        session.discover()
        session.append([("90100", "Los Angeles")])
        session.relation.set_cell(0, "city", "New York")
        with pytest.raises(ReproError):
            session.detect_new()

    def test_detect_new_runs_on_extended_caches(self, session):
        """After discover primed the engine, the delta pass compiles no new
        pattern sets and builds partitions only for genuinely new leaves.

        Pinned serial: the counters describe the parent-process caches, which
        sharded stages under REPRO_WORKERS would leave cold (workers prime
        their own copies)."""
        session.workers = 1
        session.discover()
        session.detect()
        before = session.stats()
        session.append([("90100", "Los Angeles")] * 2)
        session.detect_new()
        after = session.stats()
        assert after.pattern_set_compilations == before.pattern_set_compilations
        assert after.partitions.extends > before.partitions.extends


class TestCliIngest:
    @pytest.fixture
    def base_csv(self, tmp_path):
        rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(4)] * 4
        relation = Relation.from_rows(["zip", "city"], rows, name="base")
        path = tmp_path / "base.csv"
        write_csv(relation, path)
        return path

    def _batch_csv(self, tmp_path, rows):
        relation = Relation.from_rows(["zip", "city"], rows, name="batch")
        path = tmp_path / "batch.csv"
        write_csv(relation, path)
        return path

    def test_ingest_reports_exactly_the_new_errors(self, tmp_path, base_csv, capsys):
        batch = self._batch_csv(
            tmp_path, [("90004", "Los Angeles"), ("90000", "Las Angeles")]
        )
        report_path = tmp_path / "delta.json"
        merged_path = tmp_path / "merged.csv"
        exit_code = cli_main(
            [
                "ingest", str(base_csv), str(batch),
                "--min-support", "2", "--noise", "0.1",
                "--output", str(merged_path),
                "--report", str(report_path),
            ]
        )
        assert exit_code == 1
        report = json.loads(report_path.read_text())
        assert report["rows_appended"] == 2
        assert report["appended_start"] == 16
        assert report["error_rows"] == [17]
        assert report["errors"][0]["suggested"] == "Los Angeles"
        assert report["clean"] is False
        merged = merged_path.read_text().splitlines()
        assert len(merged) == 1 + 16 + 2

    def test_ingest_clean_batch_exits_zero(self, tmp_path, base_csv):
        batch = self._batch_csv(tmp_path, [("90000", "Los Angeles")])
        exit_code = cli_main(
            ["ingest", str(base_csv), str(batch), "--min-support", "2"]
        )
        assert exit_code == 0

    def test_ingest_empty_batch_is_a_clean_delta(self, tmp_path, base_csv):
        path = tmp_path / "empty.csv"
        path.write_text("zip,city\n")
        report_path = tmp_path / "delta.json"
        exit_code = cli_main(
            ["ingest", str(base_csv), str(path), "--min-support", "2",
             "--report", str(report_path)]
        )
        assert exit_code == 0
        report = json.loads(report_path.read_text())
        assert report["rows_appended"] == 0
        assert report["clean"] is True

    def test_ingest_rejects_mismatched_columns(self, tmp_path, base_csv):
        relation = Relation.from_rows(["zip", "state"], [("90000", "CA")], name="bad")
        path = tmp_path / "bad.csv"
        write_csv(relation, path)
        assert cli_main(["ingest", str(base_csv), str(path)]) == 2
