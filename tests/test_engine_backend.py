"""Backend parity pins: the NumPy columnar core vs the pure-Python fallback.

The columnar refactor's contract is *bit-identical* results: every engine
query — dictionary codes, row lists, partitions, intersections, PFD
violations, discovery, detection, repair — must return exactly the same
values (same elements, same order) on both backends, including after
``append_rows`` deltas.  Hypothesis drives random tables, appends, and
queries through both backends side by side; any divergence is a bug in the
vectorized path (or, just as importantly, in the patch-based python path).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning.detector import ErrorDetector
from repro.core.pfd import make_pfd
from repro.dataset.relation import Relation
from repro.engine import backend as backend_module
from repro.engine.backend import (
    HAS_NUMPY,
    NUMPY,
    PYTHON,
    SQL,
    available_backends,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.engine.dictionary import DictionaryColumn
from repro.engine.evaluator import PatternEvaluator
from repro.session import CleaningSession

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="backend parity pins need numpy installed"
)

# Small alphabets force collisions: shared values, shared classes, empty cells.
_cells = st.text(alphabet="ab1 ", max_size=3)
_tables = st.lists(
    st.tuples(_cells, _cells, _cells), min_size=0, max_size=30
)
_batches = st.lists(
    st.tuples(_cells, _cells, _cells), min_size=0, max_size=10
)

_SCHEMA = ["x", "y", "z"]
_PATTERNS = [r"{{\w*}}", r"{{\d*}}\w*", r"a{{\w*}}"]


def _pair(rows):
    """The same table on both backends."""
    return (
        Relation.from_rows(_SCHEMA, rows, backend=NUMPY),
        Relation.from_rows(_SCHEMA, rows, backend=PYTHON),
    )


def _assert_column_parity(numpy_column: DictionaryColumn, python_column: DictionaryColumn):
    assert numpy_column.backend == NUMPY
    assert python_column.backend == PYTHON
    assert numpy_column.values == python_column.values
    assert list(numpy_column.codes) == list(python_column.codes)
    assert numpy_column.rows_by_code() == python_column.rows_by_code()
    assert numpy_column.counts() == python_column.counts()


def _assert_partition_parity(numpy_partition, python_partition):
    assert numpy_partition.classes == python_partition.classes
    assert numpy_partition.covered == python_partition.covered
    assert numpy_partition.row_count == python_partition.row_count
    assert numpy_partition.error == python_partition.error
    assert numpy_partition.probe_table() == python_partition.probe_table()


# -- backend selection ---------------------------------------------------------


def test_available_backends_include_both_with_numpy():
    assert available_backends() == (NUMPY, PYTHON, SQL)


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError):
        resolve_backend("polars")


def test_set_default_backend_round_trip(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    try:
        set_default_backend(PYTHON)
        assert default_backend() == PYTHON
        assert DictionaryColumn.from_values(["a"]).backend == PYTHON
    finally:
        set_default_backend(None)
    assert default_backend() == NUMPY


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "python")
    assert default_backend() == PYTHON
    monkeypatch.setenv("REPRO_ENGINE", "numpy")
    assert default_backend() == NUMPY
    monkeypatch.setenv("REPRO_ENGINE", "parquet")
    with pytest.raises(ValueError):
        default_backend()


def test_relation_set_backend_rebuilds_engine_state():
    relation = Relation.from_rows(_SCHEMA, [("a", "b", "c")], backend=NUMPY)
    assert relation.dictionary("x").backend == NUMPY
    relation.set_backend(PYTHON)
    assert relation.dictionary("x").backend == PYTHON
    assert relation.partitions().attribute_partition("x").backend == PYTHON


def test_numpy_only_accessors_guard_the_python_backend():
    column = DictionaryColumn.from_values(["a", "b"], backend=PYTHON)
    with pytest.raises(RuntimeError):
        column.codes_array()
    with pytest.raises(RuntimeError):
        column.counts_array()


def test_numpy_unavailable_fallback(monkeypatch):
    monkeypatch.setattr(backend_module, "HAS_NUMPY", False)
    assert backend_module.available_backends() == (PYTHON, SQL)
    assert backend_module.default_backend() == PYTHON
    with pytest.raises(RuntimeError):
        backend_module.resolve_backend(NUMPY)


# -- dictionary / partition parity ---------------------------------------------


@settings(max_examples=60, deadline=None)
@given(rows=_tables)
def test_dictionary_and_partition_parity(rows):
    numpy_relation, python_relation = _pair(rows)
    for attribute in _SCHEMA:
        _assert_column_parity(
            numpy_relation.dictionary(attribute), python_relation.dictionary(attribute)
        )
        _assert_partition_parity(
            numpy_relation.partitions().attribute_partition(attribute),
            python_relation.partitions().attribute_partition(attribute),
        )
    rhs_codes = [list(r.dictionary("z").codes) for r in (numpy_relation, python_relation)]
    for pair in (("x", "y"), ("x", "z"), ("x", "y", "z")):
        numpy_partition = numpy_relation.partitions().attribute_set_partition(pair)
        python_partition = python_relation.partitions().attribute_set_partition(pair)
        _assert_partition_parity(numpy_partition, python_partition)
        assert numpy_partition.refines_codes(rhs_codes[0]) == python_partition.refines_codes(
            rhs_codes[1]
        )
        assert numpy_partition.minority_rows(rhs_codes[0]) == python_partition.minority_rows(
            rhs_codes[1]
        )


@settings(max_examples=60, deadline=None)
@given(rows=_tables, pattern=st.sampled_from(_PATTERNS))
def test_pattern_partition_and_mask_parity(rows, pattern):
    numpy_relation, python_relation = _pair(rows)
    evaluators = (PatternEvaluator(), PatternEvaluator())
    partitions = []
    for relation, evaluator in zip((numpy_relation, python_relation), evaluators):
        partitions.append(
            relation.partitions().pattern_partition("x", pattern, evaluator=evaluator)
        )
    _assert_partition_parity(*partitions)
    matches = [
        evaluator.match_column(pattern, relation.dictionary("x"))
        for relation, evaluator in zip((numpy_relation, python_relation), evaluators)
    ]
    assert matches[0].matched_mask() == matches[1].matched_mask()
    assert matches[0].matching_rows() == matches[1].matching_rows()
    assert matches[0].match_count() == matches[1].match_count()
    sets = [
        evaluator.match_column_many(_PATTERNS, relation.dictionary("y"))
        for relation, evaluator in zip((numpy_relation, python_relation), evaluators)
    ]
    for member in _PATTERNS:
        assert sets[0].matched_mask(member) == sets[1].matched_mask(member)
        assert sets[0].matching_rows(member) == sets[1].matching_rows(member)
        assert sets[0].match_count(member) == sets[1].match_count(member)


# -- append (extend delta) parity ----------------------------------------------


@settings(max_examples=60, deadline=None)
@given(base=_tables, batch=_batches)
def test_append_parity_and_fresh_rebuild(base, batch):
    numpy_relation, python_relation = _pair(base)
    # Prime the caches so append exercises the delta-maintenance paths.
    for relation in (numpy_relation, python_relation):
        for attribute in _SCHEMA:
            relation.dictionary(attribute).rows_by_code()
            relation.partitions().attribute_partition(attribute)
        relation.partitions().attribute_set_partition(("x", "y")).probe_table()
    numpy_relation.append_rows(batch)
    python_relation.append_rows(batch)
    fresh = Relation.from_rows(_SCHEMA, list(base) + list(batch), backend=NUMPY)
    for attribute in _SCHEMA:
        _assert_column_parity(
            numpy_relation.dictionary(attribute), python_relation.dictionary(attribute)
        )
        patched = numpy_relation.partitions().attribute_partition(attribute)
        _assert_partition_parity(
            patched, python_relation.partitions().attribute_partition(attribute)
        )
        # The vectorized extend path equals a cold rebuild, classes and all.
        rebuilt = fresh.partitions().attribute_partition(attribute)
        assert patched.classes == rebuilt.classes
        assert patched.covered == rebuilt.covered
    _assert_partition_parity(
        numpy_relation.partitions().attribute_set_partition(("x", "y")),
        python_relation.partitions().attribute_set_partition(("x", "y")),
    )


@settings(max_examples=40, deadline=None)
@given(base=_tables, batch=_batches, pattern=st.sampled_from(_PATTERNS))
def test_pattern_partition_extend_parity(base, batch, pattern):
    numpy_relation, python_relation = _pair(base)
    evaluators = (PatternEvaluator(), PatternEvaluator())
    for relation, evaluator in zip((numpy_relation, python_relation), evaluators):
        relation.partitions().pattern_partition(
            "x", pattern, evaluator=evaluator
        ).probe_table()
    numpy_relation.append_rows(batch)
    python_relation.append_rows(batch)
    partitions = [
        relation.partitions().pattern_partition("x", pattern, evaluator=evaluator)
        for relation, evaluator in zip((numpy_relation, python_relation), evaluators)
    ]
    _assert_partition_parity(*partitions)


# -- PFD query parity ----------------------------------------------------------

_variable_pfd = make_pfd("x", "y", [{"x": "⊥", "y": "⊥"}])
_mixed_pfd = make_pfd(
    ("x", "y"), "z", [{"x": r"{{\w*}}", "y": "⊥", "z": "⊥"}]
)
_constant_pfd = make_pfd("x", "y", [{"x": r"a{{\w*}}", "y": "a"}])


@settings(max_examples=60, deadline=None)
@given(rows=_tables, pfd=st.sampled_from([_variable_pfd, _mixed_pfd, _constant_pfd]))
def test_pfd_query_parity(rows, pfd):
    numpy_relation, python_relation = _pair(rows)
    assert pfd.violations(numpy_relation) == pfd.violations(python_relation)
    assert pfd.support(numpy_relation) == pfd.support(python_relation)
    assert pfd.row_statistics(numpy_relation) == pfd.row_statistics(python_relation)


@settings(max_examples=40, deadline=None)
@given(base=_tables, batch=_batches)
def test_pfd_delta_violations_parity(base, batch):
    numpy_relation, python_relation = _pair(base)
    for relation in (numpy_relation, python_relation):
        _variable_pfd.violations(relation)  # prime pre-append state
    since = numpy_relation.row_count
    numpy_relation.append_rows(batch)
    python_relation.append_rows(batch)
    assert _variable_pfd.violations(
        numpy_relation, since_row=since
    ) == _variable_pfd.violations(python_relation, since_row=since)


# -- pipeline parity -----------------------------------------------------------

_zip_rows = (
    [(f"{90000 + i % 7:05d}", f"City{i % 7}") for i in range(40)]
    + [("90001", "Wrong1"), ("90002", "Wrong2")]
)


def _pipeline(backend):
    session = CleaningSession.from_rows(
        ["zip", "city"], list(_zip_rows), backend=backend
    )
    discovery = session.discover()
    detection = session.detect()
    repair = session.repair()
    return discovery, detection, repair, session


def test_discover_detect_repair_parity():
    results = {backend: _pipeline(backend) for backend in (NUMPY, PYTHON)}
    numpy_discovery, numpy_detection, numpy_repair, numpy_session = results[NUMPY]
    python_discovery, python_detection, python_repair, python_session = results[PYTHON]
    assert [str(d.pfd) for d in numpy_discovery.dependencies] == [
        str(d.pfd) for d in python_discovery.dependencies
    ]
    assert numpy_discovery.pfds == python_discovery.pfds
    assert numpy_detection.errors == python_detection.errors
    assert numpy_detection.violations == python_detection.violations
    assert numpy_detection.backend == NUMPY
    assert python_detection.backend == PYTHON
    assert numpy_repair.repairs == python_repair.repairs
    assert list(numpy_repair.relation.iter_rows()) == list(
        python_repair.relation.iter_rows()
    )
    assert numpy_session.stats().backend == NUMPY
    assert python_session.stats().backend == PYTHON


def test_detector_parity_after_append():
    reports = {}
    for backend in (NUMPY, PYTHON):
        session = CleaningSession.from_rows(
            ["zip", "city"], list(_zip_rows), backend=backend
        )
        pfds = session.discover().pfds
        session.append([("90003", "City3"), ("90001", "Wrong9")])
        reports[backend] = session.detect_new(pfds)
    assert reports[NUMPY].errors == reports[PYTHON].errors
    assert reports[NUMPY].violations == reports[PYTHON].violations


def test_detect_errors_report_records_backend():
    relation = Relation.from_rows(["zip", "city"], _zip_rows, backend=NUMPY)
    report = ErrorDetector([_variable_pfd_zip()]).detect(relation)
    assert report.backend == NUMPY


def _variable_pfd_zip():
    return make_pfd("zip", "city", [{"zip": "⊥", "city": "⊥"}])
