"""The HTTP codec over :class:`~repro.service.app.CleaningService`.

Starts a real :class:`~repro.service.http.CleaningServiceServer` on an
ephemeral port (serving from a background thread) and drives it with the
stdlib :class:`~repro.service.client.ServiceClient` — the same pair the
``pfd-discover serve`` / ``client`` subcommands wire up.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.request

import pytest

from repro import DiscoveryConfig
from repro.exceptions import ServiceError
from repro.service import (
    CleaningService,
    ConstraintRegistry,
    ServiceClient,
    start_server,
)

CONFIG = DiscoveryConfig(min_support=4)


def _zip_rows(errors: int = 0):
    rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
        (f"{10000 + i:05d}", "New York") for i in range(8)
    ]
    for i in range(errors):
        rows.append((f"{90100 + i:05d}", "New York"))
    return rows


@pytest.fixture
def registry_root(tmp_path):
    return tmp_path / "registry"


@pytest.fixture
def server(registry_root):
    service = CleaningService(ConstraintRegistry(registry_root), config=CONFIG)
    server = start_server(service, port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.close()


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url)


class TestRoundTrip:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["sessions"]["live"] == 0
        assert stats["registered_tenants"] == 0

    def test_full_pipeline_over_http(self, client):
        doc = client.load("acme", columns=["zip", "city"], rows=_zip_rows(1))
        assert doc["rows"] == 17

        discovery = client.discover("acme", min_support=4)
        assert discovery["constraints"] >= 1

        report = client.detect("acme")
        assert report["clean"] is False
        assert report["error_count"] > 0

        validation = client.validate("acme")
        assert validation["entries"]

        repair = client.repair("acme")
        assert repair["repair_count"] >= 1

        ingest = client.ingest("acme", rows=[["90001", "Los Angeles"]])
        assert ingest["rows_appended"] == 1
        assert ingest["clean"] is True

        profile = client.profile("acme")
        assert [c["name"] for c in profile["columns"]] == ["zip", "city"]

    def test_two_tenants_concurrently(self, client):
        client.load("acme", columns=["zip", "city"], rows=_zip_rows(1))
        client.load("globex", columns=["zip", "city"], rows=_zip_rows(0))

        results: dict[str, dict] = {}
        errors: list[Exception] = []

        def run(tenant):
            try:
                client.discover(tenant, min_support=4)
                results[tenant] = client.detect(tenant)
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(name,))
            for name in ("acme", "globex")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert results["acme"]["clean"] is False
        assert results["globex"]["clean"] is True

    def test_tenant_listing_and_drop(self, client):
        client.load("acme", columns=["zip", "city"], rows=_zip_rows())
        listing = client.tenants()
        assert [t["tenant"] for t in listing["tenants"]] == ["acme"]
        info = client.tenant("acme")
        assert info["live"] is True
        assert client.drop("acme") == {"tenant": "acme", "deleted": True}
        assert client.tenants()["tenants"] == []


class TestErrors:
    def test_unknown_tenant_maps_to_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.detect("ghost")
        assert excinfo.value.status == 404

    def test_detect_before_discover_maps_to_409(self, client):
        client.load("acme", columns=["zip", "city"], rows=_zip_rows())
        with pytest.raises(ServiceError) as excinfo:
            client.detect("acme")
        assert excinfo.value.status == 409
        assert "discover" in str(excinfo.value)

    def test_bad_payload_maps_to_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.load("acme")  # neither csv nor rows
        assert excinfo.value.status == 400

    def test_invalid_json_body_maps_to_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/tenants/acme/load",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_route_maps_to_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_unreachable_daemon_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError):
            client.health()


class TestKeepAliveHygiene:
    """Error replies that may not have consumed the request body must not
    leave it on a keep-alive socket, where it would be parsed as the start
    of the connection's next request."""

    def _connect(self, server) -> http.client.HTTPConnection:
        port = server.server_address[1]
        return http.client.HTTPConnection("127.0.0.1", port, timeout=10)

    def test_oversize_body_reply_closes_connection(self, server):
        connection = self._connect(server)
        try:
            # Announce a body far over the cap without sending it: the 413
            # is sent before any of it is read.
            connection.putrequest("POST", "/tenants/acme/load")
            connection.putheader("Content-Length", str(1 << 30))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_unknown_route_with_body_closes_connection(self, server):
        connection = self._connect(server)
        try:
            # /nope has no handler, so its body is never read.
            connection.request("POST", "/nope", body=b'{"x": 1}')
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_success_replies_keep_the_connection_open(self, server):
        connection = self._connect(server)
        try:
            for _ in range(2):  # two requests over one connection
                connection.request("GET", "/health")
                response = connection.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") != "close"
                response.read()
        finally:
            connection.close()

    def test_quiet_is_per_server_not_per_process(self, registry_root):
        from repro.service.http import _Handler

        loud_service = CleaningService(
            ConstraintRegistry(registry_root / "loud"), config=CONFIG
        )
        loud_server = start_server(loud_service, port=0, quiet=False)
        try:
            assert loud_server.quiet is False
            assert "quiet" not in vars(_Handler)  # no shared class state
        finally:
            loud_server.close()


class TestPersistence:
    def test_registry_survives_daemon_restart(self, registry_root):
        def start(root):
            service = CleaningService(ConstraintRegistry(root), config=CONFIG)
            server = start_server(service, port=0, quiet=True)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            return server, thread

        server, thread = start(registry_root)
        client = ServiceClient(server.url)
        client.load("acme", columns=["zip", "city"], rows=_zip_rows(1))
        client.discover("acme", min_support=4)
        before = client.detect("acme")
        assert before["error_count"] > 0
        server.shutdown()
        thread.join(timeout=10)
        server.close()

        # The durable layout is exactly the two documented files.
        tenant_dir = registry_root / "acme"
        assert sorted(p.name for p in tenant_dir.iterdir()) == [
            "data.csv",
            "pfds.json",
        ]
        document = json.loads((tenant_dir / "pfds.json").read_text("utf-8"))
        assert document["format"] == "pfd-set/1"
        assert document["metadata"]["tenant"] == "acme"

        # A fresh daemon serves detect without re-load or re-discover.
        server, thread = start(registry_root)
        try:
            client = ServiceClient(server.url)
            after = client.detect("acme")
            assert after["errors"] == before["errors"]
            assert client.stats()["sessions"]["rehydrated"] == 1
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.close()

    def test_shutdown_endpoint_stops_serve_forever(self, registry_root):
        service = CleaningService(ConstraintRegistry(registry_root), config=CONFIG)
        server = start_server(service, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url)
        assert client.shutdown()["status"] == "shutting down"
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.close()
