"""Tests for Schema and Relation (repro.dataset)."""

import pytest

from repro.dataset.relation import Relation, concat
from repro.dataset.schema import Attribute, AttributeRole, Schema
from repro.exceptions import SchemaError


class TestSchema:
    def test_basic_construction(self):
        schema = Schema(["zip", "city"], name="Zip")
        assert schema.attribute_names == ("zip", "city")
        assert schema.name == "Zip"
        assert len(schema) == 2
        assert "zip" in schema and "state" not in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_position_and_lookup(self):
        schema = Schema(["a", "b", "c"])
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("missing")

    def test_roles(self):
        schema = Schema([Attribute("amount", AttributeRole.QUANTITATIVE), "name"])
        assert schema.role("amount") is AttributeRole.QUANTITATIVE
        assert schema.role("name") is AttributeRole.UNKNOWN
        updated = schema.with_role("name", AttributeRole.CODE)
        assert updated.role("name") is AttributeRole.CODE

    def test_project(self):
        schema = Schema(["a", "b", "c"])
        projected = schema.project(["c", "a"])
        assert projected.attribute_names == ("c", "a")

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"], name="X")) == hash(Schema(["a"], name="X"))


class TestRelationConstruction:
    def test_from_rows(self):
        relation = Relation.from_rows(["zip", "city"], [("90001", "LA"), ("60601", "Chicago")])
        assert relation.row_count == 2
        assert relation.cell(0, "zip") == "90001"
        assert relation.row(1) == ("60601", "Chicago")

    def test_from_dicts(self):
        rows = [{"a": "1", "b": "x"}, {"a": "2"}]
        relation = Relation.from_dicts(rows)
        assert relation.column("a") == ["1", "2"]
        assert relation.column("b") == ["x", ""]

    def test_from_dicts_without_rows_raises(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts([])

    def test_none_and_numbers_normalized_to_strings(self):
        relation = Relation.from_rows(["a", "b"], [(None, 42)])
        assert relation.cell(0, "a") == ""
        assert relation.cell(0, "b") == "42"

    def test_wrong_row_width_rejected(self):
        relation = Relation(Schema(["a", "b"]))
        with pytest.raises(SchemaError):
            relation.append_row(["only one"])

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Relation(Schema(["a", "b"]), {"a": ["1"], "b": []})


class TestRelationOperations:
    @pytest.fixture
    def relation(self):
        return Relation.from_rows(
            ["zip", "city"],
            [("90001", "LA"), ("90002", "LA"), ("60601", "Chicago"), ("", "Nowhere")],
            name="Zip",
        )

    def test_iteration(self, relation):
        assert len(list(relation.iter_rows())) == 4
        assert list(relation.iter_row_dicts())[0] == {"zip": "90001", "city": "LA"}

    def test_set_cell(self, relation):
        relation.set_cell(0, "city", "Los Angeles")
        assert relation.cell(0, "city") == "Los Angeles"

    def test_copy_is_independent(self, relation):
        clone = relation.copy()
        clone.set_cell(0, "city", "X")
        assert relation.cell(0, "city") == "LA"

    def test_project(self, relation):
        projected = relation.project(["city"])
        assert projected.attribute_names == ("city",)
        assert projected.row_count == relation.row_count

    def test_select_and_filter(self, relation):
        subset = relation.select_rows([0, 2])
        assert subset.row_count == 2
        assert subset.cell(1, "city") == "Chicago"
        filtered = relation.filter_rows(lambda row: row["city"] == "LA")
        assert filtered.row_count == 2

    def test_sample_rows_deterministic(self, relation):
        first = relation.sample_rows(2, seed=1)
        second = relation.sample_rows(2, seed=1)
        assert list(first.iter_rows()) == list(second.iter_rows())

    def test_distinct_and_counts(self, relation):
        assert relation.distinct_values("city") == ["LA", "Chicago", "Nowhere"]
        assert relation.value_counts("city")["LA"] == 2

    def test_active_domain_excludes_empty(self, relation):
        assert relation.active_domain("zip") == {"90001", "90002", "60601"}

    def test_head_and_pretty(self, relation):
        assert len(relation.head(2)) == 2
        rendering = relation.pretty(limit=2)
        assert "zip" in rendering and "more rows" in rendering

    def test_declare_role(self, relation):
        relation.declare_role("zip", AttributeRole.CODE)
        assert relation.schema.role("zip") is AttributeRole.CODE

    def test_rename(self, relation):
        renamed = relation.rename("Other")
        assert renamed.name == "Other"
        assert relation.name == "Zip"


class TestConcat:
    def test_concat(self):
        first = Relation.from_rows(["a"], [("1",)])
        second = Relation.from_rows(["a"], [("2",), ("3",)])
        merged = concat([first, second])
        assert merged.row_count == 3

    def test_concat_schema_mismatch(self):
        first = Relation.from_rows(["a"], [("1",)])
        second = Relation.from_rows(["b"], [("2",)])
        with pytest.raises(SchemaError):
            concat([first, second])

    def test_concat_empty_list(self):
        with pytest.raises(SchemaError):
            concat([])
