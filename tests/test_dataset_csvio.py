"""Tests for CSV import/export."""

import io

import pytest

from repro.dataset.csvio import (
    estimate_csv_rows,
    read_csv,
    relation_from_csv_string,
    relation_to_csv_string,
    write_csv,
)
from repro.dataset.relation import Relation
from repro.exceptions import SchemaError


class TestReadCsv:
    def test_round_trip_through_string(self):
        relation = Relation.from_rows(
            ["zip", "city"], [("90001", "Los Angeles"), ("60601", "Chicago, IL")]
        )
        text = relation_to_csv_string(relation)
        restored = relation_from_csv_string(text, name="Zip")
        assert restored.attribute_names == ("zip", "city")
        assert list(restored.iter_rows()) == list(relation.iter_rows())

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,x\n2,y\n", encoding="utf-8")
        relation = read_csv(path)
        assert relation.name == "data"
        assert relation.row_count == 2
        assert relation.cell(1, "b") == "y"

    def test_write_to_path(self, tmp_path):
        relation = Relation.from_rows(["a", "b"], [("1", "x")])
        path = tmp_path / "out" / "data.csv"
        write_csv(relation, path)
        assert path.read_text(encoding="utf-8") == "a,b\n1,x\n"

    def test_delimiter_sniffing(self):
        relation = read_csv(io.StringIO("a;b\n1;2\n"), name="semi")
        assert relation.attribute_names == ("a", "b")
        assert relation.cell(0, "b") == "2"

    def test_explicit_delimiter(self):
        relation = read_csv(io.StringIO("a|b\n1|2\n"), delimiter="|")
        assert relation.cell(0, "a") == "1"

    def test_no_header(self):
        relation = read_csv(io.StringIO("1,2\n3,4\n"), has_header=False)
        assert relation.attribute_names == ("column_1", "column_2")
        assert relation.row_count == 2

    def test_explicit_column_names(self):
        relation = read_csv(
            io.StringIO("1,2\n"), has_header=False, column_names=["x", "y"]
        )
        assert relation.attribute_names == ("x", "y")

    def test_ragged_rows_are_padded_and_truncated(self):
        relation = read_csv(io.StringIO("a,b\n1\n2,3,4\n"))
        assert relation.row(0) == ("1", "")
        assert relation.row(1) == ("2", "3")

    def test_empty_source_raises(self):
        with pytest.raises(SchemaError):
            read_csv(io.StringIO(""))

    def test_quoted_fields_survive(self):
        text = 'name,city\n"Smith, John","Los Angeles"\n'
        relation = read_csv(io.StringIO(text))
        assert relation.cell(0, "name") == "Smith, John"


class TestEstimateCsvRows:
    """Pins the cheap line-count estimator's edge cases (used by
    ``CleaningSession.from_csv`` to budget the out-of-core backend)."""

    def test_trailing_newline(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x,y\na,b\nc,d\n", encoding="utf-8")
        assert estimate_csv_rows(path) == 2

    def test_no_trailing_newline_counts_final_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x,y\na,b\nc,d", encoding="utf-8")
        assert estimate_csv_rows(path) == 2

    def test_empty_file_is_zero(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_bytes(b"")
        assert estimate_csv_rows(path) == 0

    def test_header_only_is_zero(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x,y\n", encoding="utf-8")
        assert estimate_csv_rows(path) == 0
        path.write_text("x,y", encoding="utf-8")  # unterminated header
        assert estimate_csv_rows(path) == 0

    def test_headerless_counts_every_line(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\nc,d", encoding="utf-8")
        assert estimate_csv_rows(path, has_header=False) == 2
        path.write_bytes(b"")
        assert estimate_csv_rows(path, has_header=False) == 0

    def test_never_negative(self, tmp_path):
        # A single unterminated header line must not estimate -1 rows.
        path = tmp_path / "t.csv"
        path.write_text("x", encoding="utf-8")
        assert estimate_csv_rows(path) == 0
