"""Tests for the set-at-a-time multi-pattern automaton.

Covers the construction (union + labelled subset construction), the
memoization per frozen pattern set, the state-budget fallback, the
DFA-friendliness pre-filter, and — property-based, the satellite requirement
of the refactor — exact agreement of the shared-DFA match sets with both the
per-pattern :class:`CompiledPattern` engine and :func:`reference_match`.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.exceptions import PatternError
from repro.patterns.matcher import compile_pattern, reference_match
from repro.patterns.multi import (
    StateBudgetExceeded,
    build_multi_automaton,
    canonical_pattern_set,
    compile_pattern_set,
    is_dfa_friendly,
)
from repro.patterns.parser import parse_pattern

from test_patterns_properties import patterns


ZIP_PATTERNS = [r"{{900}}\D{2}", r"{{100}}\D{2}", r"\D{5}", r"\LU\LL*", r"Los\ Angeles"]


class TestMatchSets:
    def test_one_scan_reports_every_matching_pattern(self):
        automaton = compile_pattern_set(ZIP_PATTERNS)
        assert automaton is not None
        cases = {
            "90001": {r"{{900}}\D{2}", r"\D{5}"},
            "10055": {r"{{100}}\D{2}", r"\D{5}"},
            "Chicago": {r"\LU\LL*"},
            "Los Angeles": {r"Los\ Angeles"},
            "": set(),
            "90x01": set(),
        }
        for value, expected in cases.items():
            got = {p.to_pattern_string() for p in automaton.matching_patterns(value)}
            derived = {
                parse_pattern(p).to_pattern_string()
                for p in ZIP_PATTERNS
                if compile_pattern(p).matches(value)
            }
            assert got == derived, value
            assert got == expected, value

    def test_match_set_indices_align_with_member_order(self):
        automaton = compile_pattern_set(ZIP_PATTERNS)
        for value in ["90001", "Chicago", "Los Angeles", ""]:
            ids = automaton.match_set(value)
            for index, pattern in enumerate(automaton.patterns):
                assert (index in ids) == compile_pattern(pattern).matches(value)

    def test_bit_of_round_trips_members(self):
        automaton = compile_pattern_set(ZIP_PATTERNS)
        for index, pattern in enumerate(automaton.patterns):
            assert automaton.bit_of(pattern) == index

    def test_scans_counter_counts_values_not_patterns(self):
        automaton = build_multi_automaton(canonical_pattern_set(ZIP_PATTERNS))
        assert automaton.scans == 0
        for value in ["90001", "10055", "Chicago"]:
            automaton.match_bits(value)
        assert automaton.scans == 3


class TestMemoization:
    def test_same_frozen_set_shares_one_automaton(self):
        first = compile_pattern_set(ZIP_PATTERNS)
        second = compile_pattern_set(list(reversed(ZIP_PATTERNS)))
        duplicated = compile_pattern_set(ZIP_PATTERNS + ZIP_PATTERNS[:2])
        assert first is second is duplicated

    def test_canonical_pattern_set_dedupes_and_sorts(self):
        ordered = canonical_pattern_set([r"\D{5}", r"{{900}}\D{2}", r"\D{5}"])
        assert len(ordered) == 2
        strings = [p.to_pattern_string() for p in ordered]
        assert strings == sorted(strings)

    def test_empty_set_is_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern_set([])


class TestStateBudget:
    def test_budget_exceeded_raises_and_compile_returns_none(self):
        names = ["Donald", "David", "Maria", "Helen", "Peter", "Laura", "Oscar", "Nancy"]
        anchored = canonical_pattern_set(
            [parse_pattern(r"\A*\S{{" + name + r"}}\A*") for name in names]
        )
        with pytest.raises(StateBudgetExceeded):
            build_multi_automaton(anchored, state_budget=64)
        assert compile_pattern_set(anchored, state_budget=64) is None
        # The failure itself is memoized: asking again must not re-explore.
        assert compile_pattern_set(anchored, state_budget=64) is None

    def test_budget_is_relative_to_the_union_size(self):
        # Even a huge absolute budget aborts a pathological set quickly: the
        # effective ceiling is a small multiple of the union-NFA size.
        names = ["Donald", "David", "Maria", "Helen", "Peter", "Laura", "Oscar", "Nancy"]
        anchored = canonical_pattern_set(
            [parse_pattern(r"\A*\S{{" + name + r"}}\A*") for name in names]
        )
        with pytest.raises(StateBudgetExceeded):
            build_multi_automaton(anchored, state_budget=10**9)


class TestDfaFriendliness:
    def test_anchored_patterns_are_friendly(self):
        for text in [r"{{900}}\D{2}", r"Los\ Angeles", r"\LU\LL*", r"{{\D{3}}}\A*"]:
            assert is_dfa_friendly(parse_pattern(text))

    def test_free_start_patterns_are_not(self):
        for text in [r"\A*\S{{Don}}\A*", r"{{\A*}}", r"\A+x", r"\A*"]:
            assert not is_dfa_friendly(parse_pattern(text))

    def test_bounded_any_prefix_is_friendly(self):
        assert is_dfa_friendly(parse_pattern(r"\A{0,3}x"))


# ---------------------------------------------------------------------------
# Property: shared-DFA match sets == per-pattern engines (satellite)
# ---------------------------------------------------------------------------

_values = st.text(alphabet="ABCabc019-, XYZxyz.", max_size=10)


@settings(max_examples=150, deadline=None)
@given(
    pattern_list=st.lists(patterns(), min_size=1, max_size=5),
    values=st.lists(_values, min_size=1, max_size=8),
)
def test_multi_automaton_agrees_with_both_single_pattern_engines(pattern_list, values):
    automaton = compile_pattern_set(pattern_list)
    # Pathological random sets may exceed the state budget; those fall back
    # to per-pattern matching in production and are vacuous here.
    assume(automaton is not None)
    for value in list(values) + [""]:
        bits = automaton.match_bits(value)
        for index, pattern in enumerate(automaton.patterns):
            dfa_says = bool((bits >> index) & 1)
            assert dfa_says == compile_pattern(pattern).match(value).matched
            assert dfa_says == reference_match(pattern, value).matched


@settings(max_examples=60, deadline=None)
@given(pattern_list=st.lists(patterns(), min_size=2, max_size=4), value=_values)
def test_union_membership_is_exactly_the_per_pattern_disjunction(pattern_list, value):
    automaton = compile_pattern_set(pattern_list)
    assume(automaton is not None)
    any_match = any(compile_pattern(p).matches(value) for p in automaton.patterns)
    assert bool(automaton.match_bits(value)) == any_match
