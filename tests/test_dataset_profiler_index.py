"""Tests for the column profiler and the inverted pattern index."""

import pytest

from repro.dataset.index import PatternIndex
from repro.dataset.profiler import candidate_attributes, profile_column, profile_relation
from repro.dataset.relation import Relation
from repro.dataset.schema import Attribute, AttributeRole, Schema


@pytest.fixture
def mixed_relation():
    rows = []
    for index in range(60):
        zip_code = f"900{index % 100:02d}"
        name = ["John Smith", "Susan Boyle", "Mary Jones"][index % 3]
        gender = ["M", "F", "F"][index % 3]
        amount = f"{index * 3.5:.2f}"
        rows.append((zip_code, name, gender, amount))
    return Relation.from_rows(["zip", "name", "gender", "amount"], rows, name="Mixed")


class TestProfiler:
    def test_zip_column_is_code(self, mixed_relation):
        profile = profile_column(mixed_relation, "zip")
        assert profile.role is AttributeRole.CODE
        assert profile.usable_for_pfd

    def test_amount_column_is_quantitative(self, mixed_relation):
        profile = profile_column(mixed_relation, "amount")
        assert profile.role is AttributeRole.QUANTITATIVE
        assert not profile.usable_for_pfd

    def test_name_column_is_qualitative_tokenized(self, mixed_relation):
        profile = profile_column(mixed_relation, "name")
        assert profile.role is AttributeRole.QUALITATIVE
        assert profile.strategy == "tokenize"

    def test_gender_column_is_categorical_value(self, mixed_relation):
        profile = profile_column(mixed_relation, "gender")
        assert profile.strategy == "value"

    def test_zip_column_uses_ngrams(self, mixed_relation):
        assert profile_column(mixed_relation, "zip").strategy == "ngrams"

    def test_declared_role_wins(self):
        schema = Schema([Attribute("code", AttributeRole.CODE)])
        relation = Relation(schema, {"code": ["12.5", "13.5", "19.0"]})
        assert profile_column(relation, "code").role is AttributeRole.CODE

    def test_table_profile_and_candidates(self, mixed_relation):
        profile = profile_relation(mixed_relation)
        assert set(profile.usable_columns) == {"zip", "name", "gender"}
        assert candidate_attributes(mixed_relation) == list(profile.usable_columns)
        assert profile.column("zip").max_length == 5
        with pytest.raises(KeyError):
            profile.column("missing")

    def test_empty_column(self):
        relation = Relation(Schema(["a"]), {"a": ["", "", ""]})
        profile = profile_column(relation, "a")
        assert not profile.usable_for_pfd


class TestPatternIndex:
    def test_entries_and_ids(self, mixed_relation):
        index = PatternIndex(mixed_relation)
        zip_index = index.attribute_index("zip")
        ids = zip_index.ids(("900", 0))
        assert len(ids) == mixed_relation.row_count
        assert index.strategy("zip") == "ngrams"

    def test_quantitative_column_not_indexed(self, mixed_relation):
        index = PatternIndex(mixed_relation)
        assert "amount" not in index.attributes

    def test_frequent_keys_ordering(self, mixed_relation):
        index = PatternIndex(mixed_relation)
        keys = index.frequent_keys("name", minimum_support=10)
        assert keys, "expected frequent name tokens"
        supports = [len(index.ids("name", key)) for key in keys]
        assert supports == sorted(supports, reverse=True)

    def test_substring_pruning_keeps_most_specific(self, mixed_relation):
        pruned = PatternIndex(mixed_relation, prune_substrings=True)
        unpruned = PatternIndex(mixed_relation, prune_substrings=False)
        assert pruned.total_entries() <= unpruned.total_entries()
        # "9" and "90" have exactly the same tuple ids as "900.." prefixes and
        # must have been pruned away in favour of longer entries.
        zip_index = pruned.attribute_index("zip")
        assert ("9", 0) not in zip_index.entries

    def test_keys_for_rows_histogram(self, mixed_relation):
        index = PatternIndex(mixed_relation)
        histogram = index.attribute_index("gender").keys_for_rows([0, 1, 2, 3])
        assert histogram[("M", 0)] == 2  # rows 0 and 3
        assert histogram[("F", 0)] == 2

    def test_empty_cells_are_skipped(self):
        relation = Relation.from_rows(["a", "b"], [("", "x"), ("ab", "y")])
        index = PatternIndex(relation)
        if "a" in index.attributes:
            for ids in index.attribute_index("a").entries.values():
                assert 0 not in ids


class TestIndexPatternMatching:
    """The index fronts the engine's set-at-a-time matcher for candidates."""

    PATTERNS = [r"{{900}}\D{2}", r"{{901}}\D{2}", r"\D{5}", r"\LU\LL*"]

    def test_match_patterns_batches_the_whole_candidate_set(self, mixed_relation):
        from repro.engine.evaluator import PatternEvaluator

        evaluator = PatternEvaluator()
        index = PatternIndex(mixed_relation, evaluator=evaluator)
        matches = index.match_patterns("zip", self.PATTERNS)
        distinct = mixed_relation.dictionary("zip").distinct_count
        assert evaluator.multi_scans == distinct  # one scan per distinct value
        from repro.patterns.matcher import compile_pattern

        for pattern in self.PATTERNS:
            assert matches.matched_mask(pattern) == [
                compile_pattern(pattern).matches(value)
                for value in mixed_relation.dictionary("zip").values
            ]

    def test_supports_and_rows_agree_with_direct_matching(self, mixed_relation):
        from repro.patterns.matcher import compile_pattern

        index = PatternIndex(mixed_relation)
        matches = index.match_patterns("zip", self.PATTERNS)
        for pattern in self.PATTERNS:
            compiled = compile_pattern(pattern)
            expected = [
                row_id
                for row_id in range(mixed_relation.row_count)
                if compiled.matches(mixed_relation.cell(row_id, "zip"))
            ]
            assert matches.matching_rows(pattern) == expected
            assert matches.match_count(pattern) == len(expected)

    def test_lazily_created_evaluator_is_scoped_to_the_index(self, mixed_relation):
        index = PatternIndex(mixed_relation)
        assert index.evaluator is index.evaluator  # stable instance
        index.match_patterns("zip", self.PATTERNS[:2])
        assert index.evaluator.multi_scans > 0
