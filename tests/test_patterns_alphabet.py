"""Tests for the generalization tree (repro.patterns.alphabet)."""

import pytest

from repro.patterns.alphabet import (
    BASE_CLASSES,
    CharClass,
    char_matches_class,
    class_members_sample,
    class_subsumes,
    classify_char,
    generalize_chars,
    generalize_classes,
    is_word_char,
)


class TestClassifyChar:
    def test_digits(self):
        for char in "0123456789":
            assert classify_char(char) is CharClass.DIGIT

    def test_upper_case(self):
        for char in "AZQ":
            assert classify_char(char) is CharClass.UPPER

    def test_lower_case(self):
        for char in "azq":
            assert classify_char(char) is CharClass.LOWER

    def test_symbols(self):
        for char in " -_,.:;/#()":
            assert classify_char(char) is CharClass.SYMBOL

    def test_rejects_multichar(self):
        with pytest.raises(ValueError):
            classify_char("ab")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            classify_char("")


class TestCharMatchesClass:
    def test_any_matches_everything(self):
        for char in "Aa0 -":
            assert char_matches_class(char, CharClass.ANY)

    def test_digit_only_matches_digits(self):
        assert char_matches_class("7", CharClass.DIGIT)
        assert not char_matches_class("x", CharClass.DIGIT)
        assert not char_matches_class("X", CharClass.DIGIT)

    def test_upper_and_lower_are_disjoint(self):
        assert char_matches_class("Q", CharClass.UPPER)
        assert not char_matches_class("Q", CharClass.LOWER)
        assert char_matches_class("q", CharClass.LOWER)
        assert not char_matches_class("q", CharClass.UPPER)


class TestSubsumption:
    def test_any_subsumes_all_base_classes(self):
        for cls in BASE_CLASSES:
            assert class_subsumes(CharClass.ANY, cls)

    def test_classes_subsume_themselves(self):
        for cls in CharClass:
            assert class_subsumes(cls, cls)

    def test_base_classes_do_not_subsume_each_other(self):
        assert not class_subsumes(CharClass.DIGIT, CharClass.UPPER)
        assert not class_subsumes(CharClass.LOWER, CharClass.DIGIT)


class TestGeneralization:
    def test_same_class_stays(self):
        assert generalize_chars("12345") is CharClass.DIGIT
        assert generalize_chars("abc") is CharClass.LOWER

    def test_mixed_classes_become_any(self):
        assert generalize_chars("a1") is CharClass.ANY
        assert generalize_chars("A ") is CharClass.ANY

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            generalize_classes([])

    def test_single_class_passthrough(self):
        assert generalize_classes([CharClass.SYMBOL]) is CharClass.SYMBOL


class TestSamplesAndWordChars:
    def test_samples_belong_to_their_class(self):
        for cls in BASE_CLASSES:
            for char in class_members_sample(cls):
                assert char_matches_class(char, cls)

    def test_sample_limit(self):
        assert len(class_members_sample(CharClass.DIGIT, limit=3)) == 3

    def test_word_chars(self):
        assert is_word_char("a")
        assert is_word_char("Z")
        assert is_word_char("5")
        assert not is_word_char("-")
        assert not is_word_char(" ")

    def test_escape_names(self):
        assert CharClass.UPPER.escape == "\\LU"
        assert CharClass.ANY.escape == "\\A"
