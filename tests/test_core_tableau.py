"""Tests for pattern tableaux and the wildcard cell."""

import pytest

from repro.core.tableau import (
    PatternTableau,
    PatternTuple,
    WILDCARD,
    Wildcard,
    cell_is_restriction,
    effective_pattern,
    resolve_cell,
)
from repro.exceptions import TableauError
from repro.patterns.matcher import compile_pattern
from repro.patterns.parser import parse_pattern


class TestWildcard:
    def test_singleton(self):
        assert Wildcard() is WILDCARD
        assert str(WILDCARD) == "⊥"

    def test_effective_pattern_matches_everything(self):
        pattern = effective_pattern(WILDCARD)
        compiled = compile_pattern(pattern)
        for value in ("", "M", "Los Angeles", "90001"):
            assert compiled.matches(value)

    def test_effective_pattern_constrains_whole_value(self):
        compiled = compile_pattern(effective_pattern(WILDCARD))
        assert compiled.equivalent("abc", "abc")
        assert not compiled.equivalent("abc", "abd")


class TestResolveCell:
    def test_wildcard_spellings(self):
        for spelling in ("⊥", "_", ""):
            assert isinstance(resolve_cell(spelling), Wildcard)

    def test_pattern_string(self):
        cell = resolve_cell(r"{{900}}\D{2}")
        assert cell == parse_pattern(r"{{900}}\D{2}")

    def test_pattern_object_passthrough(self):
        pattern = parse_pattern("M")
        assert resolve_cell(pattern) is pattern

    def test_invalid_cell(self):
        with pytest.raises(TableauError):
            resolve_cell(42)


class TestPatternTuple:
    def test_from_mapping_and_access(self):
        row = PatternTuple.from_mapping({"zip": r"{{900}}\D{2}", "city": "Los\\ Angeles"})
        assert row.attributes() == ("city", "zip")
        assert not row.is_wildcard("zip")
        assert row.pattern("zip").to_pattern_string() == r"{{900}}\D{2}"

    def test_missing_attribute(self):
        row = PatternTuple.from_mapping({"a": "x"})
        with pytest.raises(TableauError):
            row.cell("b")

    def test_constrains_constant(self):
        row = PatternTuple.from_mapping(
            {"zip": r"{{900}}\D{2}", "name": r"{{\LU\LL*\ }}\A*", "city": "LA", "other": "⊥"}
        )
        assert row.constrains_constant("zip")
        assert not row.constrains_constant("name")
        assert row.constrains_constant("city")  # no group: matching is enough
        assert not row.constrains_constant("other")

    def test_is_constant_row(self):
        constant = PatternTuple.from_mapping({"zip": r"{{900}}\D{2}", "city": "LA"})
        assert constant.is_constant_row(["zip"], ["city"])
        variable = PatternTuple.from_mapping({"zip": r"{{\D{3}}}\D{2}", "city": "⊥"})
        assert not variable.is_constant_row(["zip"], ["city"])

    def test_render(self):
        row = PatternTuple.from_mapping({"zip": r"{{900}}\D{2}", "city": "⊥"})
        rendered = row.render(["zip"], ["city"])
        assert "zip=" in rendered and "city=⊥" in rendered and "||" in rendered

    def test_hashable_and_equal(self):
        first = PatternTuple.from_mapping({"a": "x"})
        second = PatternTuple.from_mapping({"a": "x"})
        assert first == second
        assert hash(first) == hash(second)


class TestPatternTableau:
    def test_add_deduplicates(self):
        tableau = PatternTableau()
        tableau.add({"a": "x", "b": "y"})
        tableau.add({"a": "x", "b": "y"})
        assert len(tableau) == 1

    def test_extend_and_iteration(self):
        tableau = PatternTableau([{"a": "x", "b": "1"}])
        tableau.extend([{"a": "y", "b": "2"}])
        assert len(list(tableau)) == 2
        assert tableau[1].cell("a") is not None

    def test_validate(self):
        tableau = PatternTableau([{"a": "x"}])
        with pytest.raises(TableauError):
            tableau.validate(["a"], ["b"])

    def test_equality_and_hash(self):
        first = PatternTableau([{"a": "x"}])
        second = PatternTableau([{"a": "x"}])
        assert first == second
        assert hash(first) == hash(second)

    def test_render(self):
        tableau = PatternTableau([{"a": "x", "b": "⊥"}, {"a": "y", "b": "z"}])
        assert len(tableau.render(["a"], ["b"]).splitlines()) == 2


class TestCellRestriction:
    def test_constant_restricts_wildcard(self):
        assert cell_is_restriction(parse_pattern("M"), WILDCARD)

    def test_wildcard_restricts_itself(self):
        assert cell_is_restriction(WILDCARD, WILDCARD)

    def test_wildcard_does_not_restrict_specific_pattern(self):
        assert not cell_is_restriction(WILDCARD, parse_pattern(r"{{\LU}}\A*"))

    def test_pattern_restriction_delegates(self):
        assert cell_is_restriction(
            parse_pattern(r"{{John\ }}\A*"), parse_pattern(r"{{\LU\LL*\ }}\A*")
        )
