"""Tests for the PFD class: the paper's running examples from Sections 1-2."""

import pytest

from repro.constraints.base import CellRef
from repro.core.pfd import PFD, make_pfd
from repro.core.tableau import PatternTableau
from repro.dataset.relation import Relation
from repro.exceptions import ConstraintError


@pytest.fixture
def name_table():
    """Table 1 of the paper (r4[gender] is the erroneous cell)."""
    return Relation.from_rows(
        ["name", "gender"],
        [
            ("John Charles", "M"),
            ("John Bosco", "M"),
            ("Susan Orlean", "F"),
            ("Susan Boyle", "M"),
        ],
        name="Name",
    )


@pytest.fixture
def zip_table():
    """Table 2 of the paper (s4[city] is the erroneous cell)."""
    return Relation.from_rows(
        ["zip", "city"],
        [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("90003", "Los Angeles"),
            ("90004", "New York"),
        ],
        name="Zip",
    )


@pytest.fixture
def psi1():
    """ψ1 = λ1 and λ2: constant first-name PFDs."""
    return make_pfd(
        "name",
        "gender",
        [
            {"name": r"{{John\ }}\A*", "gender": "M"},
            {"name": r"{{Susan\ }}\A*", "gender": "F"},
        ],
        "Name",
    )


@pytest.fixture
def psi2():
    """ψ2 = λ4: variable first-name PFD."""
    return make_pfd("name", "gender", [{"name": r"{{\LU\LL*\ }}\A*", "gender": "⊥"}], "Name")


@pytest.fixture
def psi3():
    """ψ3 = λ3: constant zip-prefix PFD."""
    return make_pfd("zip", "city", [{"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"}], "Zip")


@pytest.fixture
def psi4():
    """ψ4 = λ5: variable zip-prefix PFD."""
    return make_pfd("zip", "city", [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}], "Zip")


class TestConstruction:
    def test_requires_tableau(self):
        with pytest.raises(ConstraintError):
            PFD("a", "b", PatternTableau([]))

    def test_requires_attributes(self):
        with pytest.raises(ConstraintError):
            PFD((), "b", PatternTableau([{"b": "x"}]))

    def test_tableau_must_cover_attributes(self):
        from repro.exceptions import TableauError

        with pytest.raises(TableauError):
            PFD("a", "b", PatternTableau([{"a": "x"}]))

    def test_embedded_fd_and_keys(self, psi3):
        assert psi3.embedded_fd.lhs == ("zip",)
        assert psi3.dependency_key() == (("zip",), ("city",))
        assert not psi3.is_trivial

    def test_trivial_pfd(self):
        pfd = make_pfd("a", "a", [{"a": "x"}])
        assert pfd.is_trivial

    def test_normalized_splits_rhs(self):
        pfd = make_pfd("a", ("b", "c"), [{"a": "x", "b": "y", "c": "z"}])
        parts = pfd.normalized()
        assert [p.rhs for p in parts] == [("b",), ("c",)]
        assert all(len(p.tableau) == 1 for p in parts)

    def test_constant_vs_variable_rows(self, psi1, psi2):
        assert psi1.is_constant and not psi1.is_variable
        assert psi2.is_variable and not psi2.is_constant

    def test_equality_and_hash(self, psi1):
        clone = make_pfd(
            "name",
            "gender",
            [
                {"name": r"{{John\ }}\A*", "gender": "M"},
                {"name": r"{{Susan\ }}\A*", "gender": "F"},
            ],
            "Name",
        )
        assert psi1 == clone
        assert hash(psi1) == hash(clone)

    def test_describe_and_str(self, psi1):
        assert "Name" in str(psi1)
        assert "John" in psi1.describe()


class TestExample6Semantics:
    def test_psi1_detects_single_tuple_violation(self, name_table, psi1):
        violations = psi1.violations(name_table)
        assert len(violations) == 1
        assert violations[0].suspect_cells == (CellRef(3, "gender"),)
        assert violations[0].expected_value == "F"

    def test_psi1_holds_without_r4(self, name_table, psi1):
        clean = name_table.select_rows([0, 1, 2])
        assert psi1.holds_on(clean)

    def test_psi2_detects_pair_violation(self, name_table, psi2):
        violations = psi2.violations(name_table)
        assert len(violations) == 1
        # The violation involves r3 and r4 (same first name, different gender).
        assert set(violations[0].rows()) == {2, 3}

    def test_psi2_needs_redundancy(self, name_table, psi2):
        # Without r3, ψ2 cannot catch the error (not enough redundancy).
        without_r3 = name_table.select_rows([0, 1, 3])
        assert psi2.holds_on(without_r3)

    def test_psi3_detects_error(self, zip_table, psi3):
        violations = psi3.violations(zip_table)
        assert len(violations) == 1
        assert violations[0].suspect_cells == (CellRef(3, "city"),)
        assert violations[0].expected_value == "Los Angeles"

    def test_psi4_detects_error(self, zip_table, psi4):
        violations = psi4.violations(zip_table)
        assert len(violations) == 1
        assert CellRef(3, "city") in violations[0].suspect_cells

    def test_clean_tables_satisfy_all(self, name_table, zip_table, psi1, psi2, psi3, psi4):
        clean_names = name_table.copy()
        clean_names.set_cell(3, "gender", "F")
        clean_zips = zip_table.copy()
        clean_zips.set_cell(3, "city", "Los Angeles")
        assert psi1.holds_on(clean_names)
        assert psi2.holds_on(clean_names)
        assert psi3.holds_on(clean_zips)
        assert psi4.holds_on(clean_zips)


class TestStatistics:
    def test_support_and_coverage(self, name_table, psi1, psi2):
        assert psi1.support(name_table) == 4
        assert psi1.coverage(name_table) == 1.0
        assert psi2.support(name_table) == 4

    def test_matching_rows(self, zip_table, psi3):
        row = psi3.tableau[0]
        assert psi3.matching_rows(zip_table, row) == [0, 1, 2, 3]

    def test_violation_ratio(self, zip_table, psi3):
        assert psi3.violation_ratio(zip_table) == pytest.approx(0.25)

    def test_row_statistics(self, name_table, psi1):
        stats = psi1.row_statistics(name_table)
        assert len(stats) == 2
        by_support = {s.support for s in stats}
        assert by_support == {2}
        total_violating = sum(s.violating_tuples for s in stats)
        assert total_violating == 1
        assert any(s.violation_ratio == pytest.approx(0.5) for s in stats)

    def test_empty_relation(self, psi3):
        empty = Relation.from_rows(["zip", "city"], [])
        assert psi3.coverage(empty) == 0.0
        assert psi3.violation_ratio(empty) == 0.0
        assert psi3.holds_on(empty)

    def test_empty_lhs_cells_are_skipped(self, psi3):
        relation = Relation.from_rows(["zip", "city"], [("", "X"), ("90001", "Los Angeles")])
        assert psi3.holds_on(relation)


class TestMultiAttributeLHS:
    def test_example8_style_pfd(self):
        relation = Relation.from_rows(
            ["name", "country", "gender"],
            [
                ("Tayseer Fahmi", "Egypt", "F"),
                ("Tayseer Qasem", "Yemen", "M"),
                ("Tayseer Salem", "Egypt", "F"),
                ("Noor Wagdi", "Egypt", "M"),
                ("Noor Shadi", "Yemen", "F"),
            ],
            name="Running",
        )
        pfd = make_pfd(
            ("name", "country"),
            "gender",
            [{"name": r"{{\LU\LL*\ }}\A*", "country": "⊥", "gender": "⊥"}],
            "Running",
        )
        assert pfd.holds_on(relation)
        dirty = relation.copy()
        dirty.set_cell(2, "gender", "M")
        assert not pfd.holds_on(dirty)
