"""Tests for error injection, detection, repair, and the evaluation metrics."""

import pytest

from repro.cleaning import (
    ErrorDetector,
    PrecisionRecall,
    Repairer,
    cell_precision_recall,
    dependency_precision_recall,
    detect_errors,
    inject_errors,
    inject_errors_multi,
    normalize_dependency,
    repair_accuracy,
    repair_errors,
)
from repro.constraints.base import CellRef
from repro.core.pfd import make_pfd
from repro.dataset.relation import Relation
from repro.exceptions import CleaningError


@pytest.fixture
def zip_city_relation():
    rows = []
    for prefix, city in (("900", "Los Angeles"), ("606", "Chicago")):
        for index in range(15):
            rows.append((f"{prefix}{index:02d}", city))
    return Relation.from_rows(["zip", "city"], rows, name="Zip")


@pytest.fixture
def zip_city_pfd():
    return make_pfd("zip", "city", [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}], "Zip")


class TestInjection:
    def test_outside_domain_injection(self, zip_city_relation):
        result = inject_errors(zip_city_relation, "city", 0.2, mode="outside", seed=1)
        assert len(result.errors) == 6
        assert result.error_rate == pytest.approx(0.2)
        domain = zip_city_relation.active_domain("city")
        for error in result.errors:
            assert error.injected_value not in domain
            assert error.original_value in domain
            assert result.relation.cell(error.cell.row_id, "city") == error.injected_value

    def test_active_domain_injection(self, zip_city_relation):
        result = inject_errors(zip_city_relation, "city", 0.1, mode="active", seed=2)
        domain = zip_city_relation.active_domain("city")
        for error in result.errors:
            assert error.injected_value in domain
            assert error.injected_value != error.original_value

    def test_typo_injection(self, zip_city_relation):
        result = inject_errors(zip_city_relation, "city", 0.1, mode="typo", seed=3)
        for error in result.errors:
            assert error.injected_value != error.original_value

    def test_original_relation_untouched(self, zip_city_relation):
        before = list(zip_city_relation.iter_rows())
        inject_errors(zip_city_relation, "city", 0.5, seed=4)
        assert list(zip_city_relation.iter_rows()) == before

    def test_deterministic(self, zip_city_relation):
        first = inject_errors(zip_city_relation, "city", 0.2, seed=7)
        second = inject_errors(zip_city_relation, "city", 0.2, seed=7)
        assert [e.cell for e in first.errors] == [e.cell for e in second.errors]

    def test_zero_rate(self, zip_city_relation):
        assert inject_errors(zip_city_relation, "city", 0.0).errors == []

    def test_invalid_arguments(self, zip_city_relation):
        with pytest.raises(CleaningError):
            inject_errors(zip_city_relation, "city", 1.5)
        with pytest.raises(CleaningError):
            inject_errors(zip_city_relation, "city", 0.1, mode="bogus")

    def test_active_mode_needs_two_values(self):
        relation = Relation.from_rows(["a", "b"], [("1", "x"), ("2", "x")])
        with pytest.raises(CleaningError):
            inject_errors(relation, "b", 0.5, mode="active")

    def test_multi_attribute_injection(self, zip_city_relation):
        result = inject_errors_multi(zip_city_relation, ["zip", "city"], 0.1, seed=5)
        attributes = {error.cell.attribute for error in result.errors}
        assert attributes == {"zip", "city"}


class TestDetection:
    def test_detects_injected_errors(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, mode="outside", seed=1)
        report = detect_errors(injected.relation, [zip_city_pfd])
        assert report.error_cells == injected.error_cells
        for error in report.errors:
            assert error.suggested_value in ("Los Angeles", "Chicago")

    def test_clean_table_yields_no_errors(self, zip_city_relation, zip_city_pfd):
        report = detect_errors(zip_city_relation, [zip_city_pfd])
        assert len(report) == 0

    def test_min_evidence_filter(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, seed=1)
        detector = ErrorDetector([zip_city_pfd], min_evidence=2)
        report = detector.detect(injected.relation)
        assert len(report) == 0  # a single PFD gives one violation per cell

    def test_errors_in_and_summary(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, seed=1)
        report = detect_errors(injected.relation, [zip_city_pfd])
        assert report.errors_in("city") == report.errors
        assert "suspected errors" in report.summary()


class TestRepair:
    def test_repair_restores_original_values(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, mode="outside", seed=1)
        result = repair_errors(injected.relation, [zip_city_pfd])
        for error in injected.errors:
            assert result.relation.cell(error.cell.row_id, "city") == error.original_value
        assert zip_city_pfd.holds_on(result.relation)

    def test_dry_run_does_not_mutate(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, seed=1)
        repairer = Repairer([zip_city_pfd], dry_run=True)
        result = repairer.repair(injected.relation)
        assert result.repairs
        for error in injected.errors:
            assert injected.relation.cell(error.cell.row_id, "city") == error.injected_value

    def test_verify_reports_remaining_errors(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, mode="outside", seed=1)
        repairer = Repairer([zip_city_pfd], verify=True)
        result = repairer.repair(injected.relation)
        # The majority-vote repairs fix every injected error, and the
        # re-detection (running on the mutated copy through fresh partitions)
        # confirms nothing is left flagged.
        assert result.remaining_error_cells == frozenset()
        # Without verify, the field stays unset.
        plain = Repairer([zip_city_pfd]).repair(injected.relation)
        assert plain.remaining_error_cells is None

    def test_repairs_carry_justification(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, seed=1)
        result = repair_errors(injected.relation, [zip_city_pfd])
        for repair in result.repairs:
            assert repair.justification
        assert "repairs applied" in result.summary()

    def test_repair_accuracy_metric(self, zip_city_relation, zip_city_pfd):
        injected = inject_errors(zip_city_relation, "city", 0.1, seed=1)
        result = repair_errors(injected.relation, [zip_city_pfd])
        truth = {error.cell: error.original_value for error in injected.errors}
        accuracy = repair_accuracy(
            [(repair.cell, repair.new_value) for repair in result.repairs], truth
        )
        assert accuracy == pytest.approx(1.0)


class TestMetrics:
    def test_precision_recall_counts(self):
        metrics = PrecisionRecall(true_positives=3, false_positives=1, false_negatives=2)
        assert metrics.precision == pytest.approx(0.75)
        assert metrics.recall == pytest.approx(0.6)
        assert 0 < metrics.f1 < 1
        assert "P=" in str(metrics)

    def test_zero_division(self):
        metrics = PrecisionRecall(0, 0, 0)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_dependency_precision_recall(self):
        discovered = {(("zip",), ("city",)), (("zip",), ("street",))}
        truth = {(("zip",), ("city",)), (("zip",), ("state",))}
        metrics = dependency_precision_recall(discovered, truth)
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1

    def test_cell_precision_recall(self):
        detected = {CellRef(0, "a"), CellRef(1, "a")}
        actual = {CellRef(1, "a"), CellRef(2, "a")}
        metrics = cell_precision_recall(detected, actual)
        assert metrics.true_positives == 1
        assert metrics.precision == pytest.approx(0.5)
        assert metrics.recall == pytest.approx(0.5)

    def test_normalize_dependency(self):
        assert normalize_dependency(["b", "a"], "c") == (("a", "b"), ("c",))

    def test_repair_accuracy_ignores_clean_cells(self):
        truth = {CellRef(0, "a"): "x"}
        repairs = [(CellRef(0, "a"), "x"), (CellRef(5, "a"), "whatever")]
        assert repair_accuracy(repairs, truth) == pytest.approx(1.0)
        assert repair_accuracy([], truth) == 0.0
