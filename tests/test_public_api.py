"""Public-API snapshot: ``repro.__all__`` is a contract.

Future refactors must not silently drop (or accidentally grow) the exported
surface — update this snapshot deliberately alongside the change.
"""

from __future__ import annotations

import repro

EXPECTED_ALL = {
    # session facade
    "CleaningSession",
    "SessionStats",
    "ValidationReport",
    "PFDValidation",
    "validate_pfds",
    # cleaning
    "detect_errors",
    "inject_errors",
    "repair_errors",
    # constraints
    "CFD",
    "FD",
    "CellRef",
    "Violation",
    # core
    "PFD",
    "PatternTableau",
    "PatternTuple",
    "WILDCARD",
    "load_pfds",
    "make_pfd",
    "pfds_from_json",
    "pfds_to_json",
    "save_pfds",
    # dataset
    "Relation",
    "Schema",
    "read_csv",
    "write_csv",
    # mutations (the unified CRUD entry point)
    "MutationBatch",
    "MutationResult",
    "UpsertOp",
    "UpdateOp",
    "DeleteOp",
    "batch_from_document",
    # scenario suite
    "ScenarioSpec",
    # engine
    "DictionaryColumn",
    "DictionaryDelta",
    "ColumnMatchSet",
    "ParallelExecutor",
    "ParallelStats",
    "PartitionManager",
    "StrippedPartition",
    "PatternEvaluator",
    "default_evaluator",
    "resolve_workers",
    # discovery
    "DiscoveryConfig",
    "DiscoveryResult",
    "PFDDiscoverer",
    "discover_cfds",
    "discover_fds",
    "discover_pfds",
    # inference
    "check_consistency",
    "implies",
    # patterns
    "Pattern",
    "compile_pattern",
    "parse_pattern",
    # metadata
    "__version__",
}


def test_public_api_snapshot():
    assert set(repro.__all__) == EXPECTED_ALL


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))
