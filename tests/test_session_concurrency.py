"""Thread-safety of :class:`~repro.session.CleaningSession` and the service.

The serving tier runs many requests against one session, so three
guarantees get stress-tested here:

* ``close()`` is idempotent and safe to race from many threads;
* N parallel ``detect`` calls return reports bit-identical to a serial run;
* ``ingest`` interleaved with concurrent reads never yields a *torn*
  report — every observed ``(rows, errors)`` pair matches the report a
  purely serial run produces at that exact row count.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CleaningSession, DiscoveryConfig
from repro.service import CleaningService, ConstraintRegistry

CONFIG = DiscoveryConfig(min_support=4)


def _zip_rows(errors: int = 0):
    rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
        (f"{10000 + i:05d}", "New York") for i in range(8)
    ]
    for i in range(errors):
        rows.append((f"{90100 + i:05d}", "New York"))
    return rows


def _session(errors: int = 0) -> CleaningSession:
    return CleaningSession.from_rows(
        ["zip", "city"], _zip_rows(errors), name="zips", config=CONFIG
    )


class TestClose:
    def test_close_is_idempotent(self):
        session = _session()
        session.discover(DiscoveryConfig(min_support=4, workers=2))
        assert session.stats().pool_size >= 1
        session.close()
        session.close()  # second close is a no-op, not an error
        session.close()

    def test_concurrent_close_is_safe(self):
        for _ in range(5):
            session = _session()
            session.discover(DiscoveryConfig(min_support=4, workers=2))
            barrier = threading.Barrier(8)
            errors: list[Exception] = []

            def racer():
                barrier.wait()
                try:
                    session.close()
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=racer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors

    def test_close_then_reuse_rebuilds_executor(self):
        session = _session(1)
        config = DiscoveryConfig(min_support=4, workers=2)
        session.discover(config)
        session.close()
        # A post-close stage call simply builds a fresh executor.
        report = session.detect()
        assert len(report.errors) > 0
        session.close()


class TestParallelDetect:
    def test_parallel_detect_bit_identical_to_serial(self):
        serial_session = _session(1)
        pfds = serial_session.discover().pfds
        serial = serial_session.detect(pfds)
        expected_cells = serial.error_cells
        expected_errors = sorted(
            (e.cell.row_id, e.cell.attribute, e.current_value, e.suggested_value)
            for e in serial.errors
        )

        shared = _session(1)
        shared_pfds = shared.discover().pfds
        barrier = threading.Barrier(8)

        def run_detect(_):
            barrier.wait()
            return shared.detect(shared_pfds)

        with ThreadPoolExecutor(max_workers=8) as pool:
            reports = list(pool.map(run_detect, range(8)))

        for report in reports:
            assert report.error_cells == expected_cells
            assert (
                sorted(
                    (
                        e.cell.row_id,
                        e.cell.attribute,
                        e.current_value,
                        e.suggested_value,
                    )
                    for e in report.errors
                )
                == expected_errors
            )

    def test_parallel_service_detect_bit_identical(self, tmp_path):
        with CleaningService(
            ConstraintRegistry(tmp_path / "reg"), config=CONFIG
        ) as service:
            service.load_tenant("acme", columns=["zip", "city"], rows=_zip_rows(1))
            service.discover("acme")
            serial = service.detect("acme")
            barrier = threading.Barrier(8)

            def run_detect(_):
                barrier.wait()
                return service.detect("acme")

            with ThreadPoolExecutor(max_workers=8) as pool:
                docs = list(pool.map(run_detect, range(8)))
            for doc in docs:
                assert doc == serial

            lock_stats = service.stats()["tenant_sessions"]["acme"]["lock"]
            assert lock_stats["reads"] >= 9


class TestIngestInterleavedWithReads:
    def test_reads_never_observe_torn_reports(self, tmp_path):
        """Concurrent ``detect`` during a stream of single-row ``ingest``
        batches must always see a report that a serial run produces at the
        same row count — never half an append."""
        batches = []
        for i in range(12):
            if i % 3 == 0:  # every third appended row is dirty
                batches.append([[f"{90200 + i:05d}", "New York"]])
            else:
                batches.append([[f"{90000 + i % 8:05d}", "Los Angeles"]])

        with CleaningService(
            ConstraintRegistry(tmp_path / "reg"), config=CONFIG
        ) as service:
            service.load_tenant("acme", columns=["zip", "city"], rows=_zip_rows())
            service.discover("acme")
            pfds = service.manager.peek("acme").pfds
            assert pfds

            # Serial ground truth: the exact expected error set per row count.
            ground = CleaningSession.from_rows(
                ["zip", "city"], _zip_rows(), name="acme", config=CONFIG
            )
            expected: dict[int, list] = {}

            def error_key(report):
                return sorted(
                    (e.cell.row_id, e.cell.attribute, e.current_value)
                    for e in report.errors
                )

            expected[16] = error_key(ground.detect(pfds))
            for batch in batches:
                ground.append(batch)
                expected[ground.relation.row_count] = error_key(ground.detect(pfds))

            observed: list[tuple[int, list]] = []
            observed_lock = threading.Lock()
            stop = threading.Event()
            failures: list[Exception] = []

            def reader():
                try:
                    while not stop.is_set():
                        doc = service.detect("acme")
                        pair = (
                            doc["rows"],
                            sorted(
                                (e["row"], e["attribute"], e["value"])
                                for e in doc["errors"]
                            ),
                        )
                        with observed_lock:
                            observed.append(pair)
                except Exception as error:  # pragma: no cover
                    failures.append(error)
                    stop.set()

            readers = [threading.Thread(target=reader) for _ in range(4)]
            for thread in readers:
                thread.start()
            try:
                for batch in batches:
                    service.ingest("acme", rows=batch)
            finally:
                stop.set()
                for thread in readers:
                    thread.join(timeout=60)

            assert not failures
            assert observed, "readers never completed a detect"
            for rows, errors in observed:
                assert rows in expected, f"impossible row count {rows}"
                assert errors == expected[rows], (
                    f"torn report at rows={rows}: {errors} != {expected[rows]}"
                )
            # The final state matches the serial end state exactly.
            final = service.detect("acme")
            assert final["rows"] == 16 + len(batches)
            assert (
                sorted(
                    (e["row"], e["attribute"], e["value"]) for e in final["errors"]
                )
                == expected[final["rows"]]
            )


class TestSessionStateLock:
    def test_concurrent_cold_stage_calls_compute_once(self):
        """Many threads hitting a cold session must agree on one memoized
        result object (the state lock serializes the first computation)."""
        session = _session(1)
        pfds = session.discover().pfds
        barrier = threading.Barrier(6)

        def run(_):
            barrier.wait()
            return session.detect(pfds)

        with ThreadPoolExecutor(max_workers=6) as pool:
            reports = list(pool.map(run, range(6)))
        assert all(report is reports[0] for report in reports)
        assert "detect" in session.stats().stages


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-v"])
