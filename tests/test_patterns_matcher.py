"""Tests for pattern matching and constrained-part extraction."""

import pytest

from repro.patterns.matcher import (
    CompiledPattern,
    compile_pattern,
    equivalent,
    extract_constrained,
    matches,
    reference_match,
)


class TestBasicMatching:
    def test_zip_pattern(self):
        assert matches(r"\D{5}", "90001")
        assert not matches(r"\D{5}", "9000")
        assert not matches(r"\D{5}", "900012")
        assert not matches(r"\D{5}", "9000a")

    def test_anchored_matching(self):
        # Matching is anchored: partial matches do not count.
        assert not matches(r"\D{3}", "90001")

    def test_prefix_constant(self):
        assert matches(r"900\D{2}", "90001")
        assert not matches(r"900\D{2}", "91001")

    def test_name_pattern(self):
        assert matches(r"John\ \A*", "John Charles")
        assert matches(r"John\ \A*", "John ")
        assert not matches(r"John\ \A*", "Johnny Charles")

    def test_variable_name_pattern(self):
        assert matches(r"\LU\LL*\ \A*", "Susan Boyle")
        assert not matches(r"\LU\LL*\ \A*", "susan boyle")

    def test_empty_string(self):
        assert matches(r"\A*", "")
        assert not matches(r"\A+", "")

    def test_plus_and_star(self):
        assert matches(r"\LL+", "abc")
        assert not matches(r"\LL+", "")
        assert matches(r"\LL*", "")

    def test_bounded_repeat(self):
        assert matches(r"\D{2,4}", "123")
        assert not matches(r"\D{2,4}", "1")
        assert not matches(r"\D{2,4}", "12345")


class TestConstrainedExtraction:
    def test_prefix_group(self):
        assert extract_constrained(r"{{900}}\D{2}", "90001") == "900"

    def test_first_name_extraction(self):
        assert extract_constrained(r"{{\LU\LL*\ }}\A*", "John Charles") == "John "
        assert extract_constrained(r"{{\LU\LL*\ }}\A*", "Susan Boyle") == "Susan "

    def test_non_matching_returns_none(self):
        assert extract_constrained(r"{{900}}\D{2}", "60601") is None

    def test_unconstrained_pattern_returns_none(self):
        assert extract_constrained(r"\D{5}", "90001") is None

    def test_infix_group(self):
        assert extract_constrained(r"\A*\S{{Donald}}\A*", "Holloway, Donald E.") == "Donald"

    def test_match_result_span(self):
        result = compile_pattern(r"{{\D{3}}}\D{2}").match("60601")
        assert result.matched
        assert result.constrained_value == "606"
        assert result.constrained_span == (0, 3)


class TestEquivalence:
    def test_same_first_name(self):
        assert equivalent(r"{{\LU\LL*\ }}\A*", "John Charles", "John Bosco")

    def test_different_first_names(self):
        assert not equivalent(r"{{\LU\LL*\ }}\A*", "John Charles", "Susan Boyle")

    def test_same_zip_prefix(self):
        assert equivalent(r"{{\D{3}}}\D{2}", "90001", "90099")
        assert not equivalent(r"{{\D{3}}}\D{2}", "90001", "60601")

    def test_non_matching_strings_are_not_equivalent(self):
        assert not equivalent(r"{{\D{3}}}\D{2}", "90001", "abcde")

    def test_unconstrained_pattern_only_requires_matching(self):
        assert equivalent(r"\D{5}", "90001", "12345")


class TestCompiledPatternObject:
    def test_accepts_string_or_ast(self):
        from repro.patterns.parser import parse_pattern

        text = r"{{900}}\D{2}"
        assert CompiledPattern(text).matches("90001")
        assert CompiledPattern(parse_pattern(text)).matches("90001")

    def test_compile_pattern_is_cached(self):
        first = compile_pattern(r"\D{5}")
        second = compile_pattern(r"\D{5}")
        assert first is second


class TestReferenceMatcher:
    CASES = [
        (r"{{900}}\D{2}", "90001", True, "900"),
        (r"{{900}}\D{2}", "90601", False, None),
        (r"{{John\ }}\A*", "John Charles", True, "John "),
        (r"{{\LU\LL*\ }}\A*", "Susan Boyle", True, "Susan "),
        (r"\D{5}", "90001", True, None),
        (r"\D{5}", "900", False, None),
        (r"\A*{{\ }}\A*", "a b", True, " "),
        (r"\LL+\D*", "abc123", True, None),
        (r"\LL+\D*", "abc", True, None),
        (r"\LL+\D*", "123", False, None),
    ]

    @pytest.mark.parametrize("pattern, value, expect_match, expected_group", CASES)
    def test_reference_results(self, pattern, value, expect_match, expected_group):
        result = reference_match(pattern, value)
        assert result.matched == expect_match
        if expect_match and expected_group is not None:
            assert result.constrained_value == expected_group

    @pytest.mark.parametrize("pattern, value, expect_match, expected_group", CASES)
    def test_reference_agrees_with_compiled(self, pattern, value, expect_match, expected_group):
        compiled = compile_pattern(pattern).match(value)
        reference = reference_match(pattern, value)
        assert compiled.matched == reference.matched

    def test_backtracking_through_star(self):
        # The star must give characters back for the suffix to match.
        result = reference_match(r"\A*ab", "xxxab")
        assert result.matched
