"""Tests for the FDep and CFDFinder baselines and for PFD selection/ranking."""

import pytest

from repro.dataset.relation import Relation
from repro.datagen.generators import build_gov_addresses
from repro.discovery import (
    CFDFinder,
    DiscoveryConfig,
    FDepDiscoverer,
    discover_cfds,
    discover_fds,
    discover_pfds,
    oracle_from_mapping,
    rank_dependencies,
    validate_against_oracle,
)


@pytest.fixture
def type_units_relation():
    rows = []
    for index in range(40):
        standard_type = ("IC50", "Ki", "EC50")[index % 3]
        units = {"IC50": "nM", "Ki": "nM", "EC50": "uM"}[standard_type]
        rows.append((str(index), standard_type, units))
    return Relation.from_rows(["activity_id", "standard_type", "standard_units"], rows, name="Act")


class TestFDep:
    def test_exact_fd_discovery(self, type_units_relation):
        result = discover_fds(type_units_relation)
        keys = result.dependency_keys
        assert (("standard_type",), ("standard_units",)) in keys
        assert (("standard_units",), ("standard_type",)) not in keys

    def test_approximate_tolerance(self, type_units_relation):
        dirty = type_units_relation.copy()
        dirty.set_cell(0, "standard_units", "WRONG")
        exact = discover_fds(dirty, max_violation_ratio=0.0)
        assert (("standard_type",), ("standard_units",)) not in exact.dependency_keys
        approx = discover_fds(dirty, max_violation_ratio=0.05)
        assert (("standard_type",), ("standard_units",)) in approx.dependency_keys

    def test_minimality_with_multi_lhs(self, type_units_relation):
        result = discover_fds(type_units_relation, max_lhs_size=2)
        # standard_type -> standard_units is minimal; its supersets are skipped.
        lhs_sizes = [len(fd.lhs) for fd in result.fds if fd.rhs == ("standard_units",)]
        assert 1 in lhs_sizes
        assert all(
            size == 1
            for fd, size in zip(result.fds, lhs_sizes)
            if fd.rhs == ("standard_units",) and "standard_type" in fd.lhs
        )

    def test_exclude_keys(self, type_units_relation):
        with_keys = discover_fds(type_units_relation)
        without_keys = FDepDiscoverer(exclude_keys=True).discover(type_units_relation)
        assert len(without_keys.fds) <= len(with_keys.fds)
        assert all("activity_id" not in fd.lhs for fd in without_keys.fds)

    def test_summary(self, type_units_relation):
        assert "FDep" in discover_fds(type_units_relation).summary()


class TestCFDFinder:
    def test_constant_cfds_found(self, type_units_relation):
        result = discover_cfds(type_units_relation, min_support=5, min_coverage=0.1)
        assert (("standard_type",), ("standard_units",)) in result.dependency_keys

    def test_high_coverage_becomes_variable_cfd(self, type_units_relation):
        result = discover_cfds(type_units_relation, min_support=5)
        cfd = next(
            cfd for cfd in result.cfds
            if cfd.lhs == ("standard_type",) and cfd.rhs == ("standard_units",)
        )
        assert not cfd.is_constant  # wildcard tableau: the FD holds outright

    def test_unique_lhs_yields_nothing(self):
        relation = Relation.from_rows(
            ["id", "value"], [(str(i), "x") for i in range(30)]
        )
        result = CFDFinder(min_support=5).discover(relation)
        assert not [cfd for cfd in result.cfds if cfd.lhs == ("id",)]

    def test_confidence_threshold(self, type_units_relation):
        dirty = type_units_relation.copy()
        for row_id in range(0, 6):
            dirty.set_cell(row_id, "standard_units", f"junk{row_id}")
        strict = CFDFinder(confidence=0.995, min_support=5).discover(dirty)
        lenient = CFDFinder(confidence=0.5, min_support=5).discover(dirty)
        assert len(lenient.cfds) >= len(strict.cfds)


class TestSelectionAndValidation:
    def test_rank_dependencies(self):
        table = build_gov_addresses(rows=200, seed=4)
        result = discover_pfds(table.relation, DiscoveryConfig())
        ranked = rank_dependencies(result.dependencies, table.relation)
        assert ranked
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= entry.score <= 1.0 for entry in ranked)

    def test_validate_against_oracle(self):
        table = build_gov_addresses(rows=200, seed=4, dirt_rate=0.0)
        config = DiscoveryConfig(generalize=False)
        result = discover_pfds(table.relation, config)
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None
        oracle = oracle_from_mapping(table.oracles["zip_prefix_city"])
        report = validate_against_oracle(dependency.pfd, table.relation, oracle)
        assert report.pfd_count > 0
        assert report.precision >= 0.9
        assert 0.0 < report.coverage <= 1.0
