"""Parallel execution pins: sharded discovery/detection vs the serial path.

The contract of :mod:`repro.engine.parallel` is *bit-identical* results at
any worker count: ``workers=2..4`` must reproduce the ``workers=1`` output
exactly — dependencies, candidate counts, violations, errors, repairs — on
both engine backends, cold and after ``append_rows`` deltas.  And
``workers=1`` (the default) must never create a pool or touch a process.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cleaning.detector import ErrorDetector, detect_errors
from repro.discovery.config import DiscoveryConfig
from repro.discovery.pfd_discovery import discover_pfds
from repro.dataset.relation import Relation
from repro.engine import parallel as parallel_module
from repro.engine.backend import HAS_NUMPY, NUMPY, PYTHON
from repro.engine.parallel import (
    ParallelExecutor,
    chunk_round_robin,
    default_start_method,
    resolve_workers,
    snapshot_relation,
)
from repro.exceptions import DiscoveryError, ReproError
from repro.session import CleaningSession

_SCHEMA = ["x", "y", "z"]
_CONFIG = DiscoveryConfig(min_support=2, min_coverage=0.05, max_lhs_size=2)

_cells = st.text(alphabet="ab1 ", max_size=3)
_tables = st.lists(st.tuples(_cells, _cells, _cells), min_size=0, max_size=25)
_batches = st.lists(st.tuples(_cells, _cells, _cells), min_size=1, max_size=8)

_BACKENDS = [NUMPY, PYTHON] if HAS_NUMPY else [PYTHON]


def _dirty_rows():
    """A table with discoverable PFDs and a few planted violations."""
    rows = [
        (f"{90000 + i % 16:05d}", "Los Angeles" if i % 16 < 8 else "San Diego", f"G{i % 4}")
        for i in range(160)
    ]
    rows[3] = ("90003", "Las Angeles", "G3")
    rows[40] = ("90008", "Los Angeles", "G0")
    return rows


def _discovery_fingerprint(result):
    return [
        (d.lhs, d.rhs, d.coverage, d.support, d.is_variable, d.pfd.tableau)
        for d in result.dependencies
    ]


# -- the workers= knob ---------------------------------------------------------


def test_resolve_workers_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    assert resolve_workers(None) == 1


def test_resolve_workers_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers() == 4
    assert resolve_workers(2) == 2
    assert resolve_workers(1) == 1


@pytest.mark.parametrize("value", ["0", "-2", "two", "1.5"])
def test_resolve_workers_rejects_bad_env(monkeypatch, value):
    monkeypatch.setenv("REPRO_WORKERS", value)
    with pytest.raises(ValueError):
        resolve_workers()


def test_resolve_workers_rejects_non_positive():
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_discovery_config_validates_workers():
    with pytest.raises(DiscoveryError):
        DiscoveryConfig(workers=0)
    assert DiscoveryConfig(workers=3).workers == 3


def test_session_validates_workers():
    relation = Relation.from_rows(_SCHEMA, [("a", "b", "c")])
    with pytest.raises(ReproError):
        CleaningSession(relation, workers=0)


def test_default_start_method_is_available():
    import multiprocessing

    assert default_start_method() in multiprocessing.get_all_start_methods()


def test_chunk_round_robin_covers_everything_in_order_tags():
    chunks = chunk_round_robin(list(range(10)), 3)
    assert sorted(item for chunk in chunks for item in chunk) == list(range(10))
    assert all(chunks)
    assert chunk_round_robin([], 4) == []
    assert chunk_round_robin([1, 2], 8) == [[1], [2]]


def test_snapshot_roundtrip_restores_identical_engine_state():
    relation = Relation.from_rows(_SCHEMA, _dirty_rows()[:40])
    snapshot = snapshot_relation(relation)
    restored = parallel_module._restore_relation(snapshot)
    assert list(restored.iter_rows()) == list(relation.iter_rows())
    for name in _SCHEMA:
        assert restored.dictionary(name).values == relation.dictionary(name).values
        assert list(restored.dictionary(name).codes) == list(relation.dictionary(name).codes)


# -- workers=1 must bypass the pool entirely -----------------------------------


class _PoolBan:
    def __init__(self, *args, **kwargs):
        raise AssertionError("workers=1 must never construct a process pool")


def test_serial_paths_create_no_pool(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _PoolBan)
    relation = Relation.from_rows(_SCHEMA, _dirty_rows())
    session = CleaningSession(relation, config=_CONFIG)
    result = session.discover()
    report = session.detect()
    session.repair()
    assert result.dependencies and report.errors
    # Explicit workers=1 likewise, even when the env asks for more.
    monkeypatch.setenv("REPRO_WORKERS", "3")
    explicit = CleaningSession(
        Relation.from_rows(_SCHEMA, _dirty_rows()), config=_CONFIG, workers=1
    )
    explicit.discover()
    explicit.detect()
    assert explicit.stats().pool_size == 0


def test_parallel_paths_do_use_the_pool(monkeypatch):
    monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _PoolBan)
    relation = Relation.from_rows(_SCHEMA, _dirty_rows())
    session = CleaningSession(relation, config=_CONFIG, workers=2)
    with pytest.raises(AssertionError, match="never construct"):
        session.discover()


# -- bit-identical pins --------------------------------------------------------


@pytest.mark.parametrize("backend", _BACKENDS)
@settings(max_examples=6, deadline=None)
@given(rows=_tables, batch=_batches, workers=st.integers(min_value=2, max_value=4))
def test_discover_detect_parity_random_tables(backend, rows, batch, workers):
    serial = CleaningSession.from_rows(_SCHEMA, rows, config=_CONFIG, backend=backend)
    with CleaningSession.from_rows(
        _SCHEMA, rows, config=_CONFIG, backend=backend, workers=workers
    ) as parallel:
        assert _discovery_fingerprint(serial.discover()) == _discovery_fingerprint(
            parallel.discover()
        )
        assert serial.discover().candidate_count == parallel.discover().candidate_count
        assert (
            serial.discover().candidates_per_level
            == parallel.discover().candidates_per_level
        )
        assert serial.discover().index_entries == parallel.discover().index_entries
        serial_report = serial.detect()
        parallel_report = parallel.detect()
        assert serial_report.errors == parallel_report.errors
        assert serial_report.violations == parallel_report.violations
        # After an append delta the pool is rebound and stays bit-identical.
        serial.append(batch)
        parallel.append(batch)
        serial_delta = serial.detect_new()
        parallel_delta = parallel.detect_new()
        assert serial_delta.errors == parallel_delta.errors
        assert serial_delta.violations == parallel_delta.violations


@pytest.mark.parametrize("backend", _BACKENDS)
@pytest.mark.parametrize("workers", [2, 3, 4])
def test_clean_pipeline_parity_dirty_table(backend, workers):
    serial = CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, backend=backend
    )
    with CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, backend=backend, workers=workers
    ) as parallel:
        assert _discovery_fingerprint(serial.discover()) == _discovery_fingerprint(
            parallel.discover()
        )
        serial_report = serial.detect()
        parallel_report = parallel.detect()
        assert serial_report.errors == parallel_report.errors
        assert serial_report.violations == parallel_report.violations
        assert serial_report.errors, "the planted violations must be detected"
        serial_repair = serial.repair()
        parallel_repair = parallel.repair()
        assert serial_repair.repairs == parallel_repair.repairs
        assert list(serial_repair.relation.iter_rows()) == list(
            parallel_repair.relation.iter_rows()
        )
        assert serial_repair.remaining_error_cells == parallel_repair.remaining_error_cells


def test_wrapper_functions_accept_workers():
    relation = Relation.from_rows(_SCHEMA, _dirty_rows())
    serial_result = discover_pfds(relation, _CONFIG)
    parallel_result = discover_pfds(
        Relation.from_rows(_SCHEMA, _dirty_rows()), _CONFIG, workers=2
    )
    assert _discovery_fingerprint(serial_result) == _discovery_fingerprint(parallel_result)
    serial_report = detect_errors(relation, serial_result.pfds)
    parallel_report = detect_errors(relation, serial_result.pfds, workers=2)
    assert serial_report.errors == parallel_report.errors
    assert serial_report.violations == parallel_report.violations


def test_env_override_forces_parallel(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    serial = CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, workers=1
    )
    with CleaningSession.from_rows(_SCHEMA, _dirty_rows(), config=_CONFIG) as parallel:
        assert parallel._workers_for() == 2
        assert _discovery_fingerprint(serial.discover()) == _discovery_fingerprint(
            parallel.discover()
        )
        assert serial.detect().errors == parallel.detect().errors
        assert parallel.stats().pool_size == 2


def test_detector_shards_by_lhs_groups():
    relation = Relation.from_rows(_SCHEMA, _dirty_rows())
    pfds = CleaningSession(relation, config=_CONFIG).discover().pfds
    assert len(pfds) > 1
    serial = ErrorDetector(pfds, workers=1).detect(relation)
    parallel = ErrorDetector(pfds, workers=3).detect(relation)
    assert serial.errors == parallel.errors
    assert serial.violations == parallel.violations


# -- executor lifecycle and stats ---------------------------------------------


def test_executor_rebinds_on_relation_version_change():
    relation = Relation.from_rows(_SCHEMA, _dirty_rows())
    with CleaningSession(relation, config=_CONFIG, workers=2) as session:
        session.discover()
        stats_before = session.stats()
        assert stats_before.pool_size == 2
        session.append([("90001", "Los Angeles", "G1")])
        session.detect_new()
        stats_after = session.stats()
        # The append bumped the relation version: a fresh broadcast happened.
        assert stats_after.bytes_broadcast > stats_before.bytes_broadcast


def test_session_stats_surface_parallel_counters():
    with CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, workers=2
    ) as session:
        session.discover()
        session.detect()
        stats = session.stats()
        assert stats.workers == 2
        assert stats.pool_size == 2
        assert stats.tasks_dispatched > 0
        assert stats.bytes_broadcast > 0
        stages = dict(stats.parallel_stage_seconds)
        assert set(stages) <= {"discover", "detect"}
        assert "discover" in stages and stages["discover"] >= 0.0
        assert "parallel:" in stats.summary()
        doc = stats.to_json_dict()
        assert doc["workers"] == 2
        assert doc["pool_size"] == 2
        assert doc["tasks_dispatched"] == stats.tasks_dispatched
        assert doc["bytes_broadcast"] == stats.bytes_broadcast
        assert set(doc["parallel_stage_seconds"]) == set(stages)


def test_serial_session_stats_report_no_pool(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    session = CleaningSession.from_rows(_SCHEMA, _dirty_rows(), config=_CONFIG)
    session.discover()
    stats = session.stats()
    assert stats.workers == 1
    assert stats.pool_size == 0
    assert stats.tasks_dispatched == 0
    assert "parallel:" not in stats.summary()


def test_close_is_idempotent_and_session_recovers():
    with CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, workers=2
    ) as session:
        first = session.discover()
        session.close()
        session.close()
        # The next parallel stage simply re-broadcasts.
        report = session.detect()
        assert report.violations
        assert first.dependencies


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="exercises the spawn fallback only where fork is also available",
)
def test_spawn_start_method_parity():
    serial = CleaningSession.from_rows(_SCHEMA, _dirty_rows(), config=_CONFIG)
    with CleaningSession.from_rows(
        _SCHEMA, _dirty_rows(), config=_CONFIG, workers=2
    ) as parallel:
        parallel._executor = ParallelExecutor(2, start_method="spawn")
        assert _discovery_fingerprint(serial.discover()) == _discovery_fingerprint(
            parallel.discover()
        )
        assert serial.detect().errors == parallel.detect().errors


# -- CLI -----------------------------------------------------------------------


def test_cli_discover_accepts_workers(tmp_path, capsys):
    import csv as csv_module

    from repro.cli import main

    path = tmp_path / "table.csv"
    with open(path, "w", newline="") as handle:
        writer = csv_module.writer(handle)
        writer.writerow(_SCHEMA)
        writer.writerows(_dirty_rows())
    exit_code = main(
        ["discover", str(path), "--min-support", "2", "--min-coverage", "0.05",
         "--workers", "2", "--stats"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "PFD discovery" in captured.out
    assert "parallel: 2 worker(s)" in captured.out
