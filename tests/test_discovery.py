"""Tests for PFD discovery, its configuration, the lattice, generalization,
and the brute-force reference algorithm (Section 4 of the paper)."""

import pytest

from repro.dataset.relation import Relation
from repro.discovery import (
    CandidateLattice,
    DiscoveryConfig,
    PFDDiscoverer,
    brute_force_discover,
    default_decision_function,
    discover_pfds,
    enumerate_substring_groups,
    generalize_tableau,
)
from repro.discovery.brute_force import SubstringGroup
from repro.exceptions import DiscoveryError


@pytest.fixture
def running_example():
    """Table 6 of the paper (the Example 8 running example)."""
    rows = [
        ("Tayseer Fahmi", "Egypt", "F"),
        ("Tayseer Qasem", "Yemen", "M"),
        ("Tayseer Salem", "Egypt", "F"),
        ("Tayseer Saeed", "Yemen", "M"),
        ("Noor Wagdi", "Egypt", "M"),
        ("Noor Shadi", "Yemen", "F"),
        ("Noor Hisham", "Egypt", "M"),
        ("Noor Hashim", "Yemen", "F"),
        ("Esmat Qadhi", "Yemen", "M"),
        ("Esmat Farahat", "Egypt", "F"),
    ]
    return Relation.from_rows(["name", "country", "gender"], rows, name="Running")


@pytest.fixture
def zip_city_table():
    rows = []
    for prefix, city in (("900", "Los Angeles"), ("606", "Chicago"), ("100", "New York")):
        for index in range(20):
            rows.append((f"{prefix}{index:02d}", city))
    return Relation.from_rows(["zip", "city"], rows, name="Zip")


class TestDiscoveryConfig:
    def test_defaults_match_paper(self):
        config = DiscoveryConfig()
        assert config.min_support == 5
        assert config.noise_ratio == pytest.approx(0.05)
        assert config.min_coverage == pytest.approx(0.10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support": 0},
            {"noise_ratio": 1.0},
            {"noise_ratio": -0.1},
            {"min_coverage": 1.5},
            {"max_lhs_size": 0},
            {"max_tableau_rows": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(**kwargs)

    def test_required_rhs_agreement(self):
        config = DiscoveryConfig(noise_ratio=0.05)
        assert config.required_rhs_agreement(100) == 95
        assert config.required_rhs_agreement(10) == 9
        # Tiny groups must still be decided by a strict majority, not a tie.
        assert config.required_rhs_agreement(2) == 2
        strict = DiscoveryConfig(noise_ratio=0.0)
        assert strict.required_rhs_agreement(10) == 10

    def test_with_overrides(self):
        config = DiscoveryConfig().with_overrides(min_support=2)
        assert config.min_support == 2
        assert config.noise_ratio == pytest.approx(0.05)

    def test_generalization_noise_defaults_to_noise(self):
        assert DiscoveryConfig(noise_ratio=0.07).effective_generalization_noise == 0.07
        assert DiscoveryConfig(generalization_noise_ratio=0.02).effective_generalization_noise == 0.02


class TestCandidateLattice:
    def test_level_one_excludes_trivial(self):
        lattice = CandidateLattice(["a", "b", "c"])
        candidates = list(lattice.level(1))
        assert (("a",), "a") not in candidates
        assert (("a",), "b") in candidates
        assert len(candidates) == 6

    def test_mark_satisfied_prunes_supersets(self):
        lattice = CandidateLattice(["a", "b", "c"], max_level=2)
        lattice.mark_satisfied(("a",), "c")
        level2 = list(lattice.level(2))
        assert (("a", "b"), "c") not in level2
        assert (("a", "b"), "c") not in list(lattice)

    def test_explicit_prune(self):
        lattice = CandidateLattice(["a", "b"])
        lattice.prune(("a",), "b")
        assert (("a",), "b") not in list(lattice.level(1))
        assert lattice.is_pruned(("a",), "b")

    def test_candidate_count(self):
        lattice = CandidateLattice(["a", "b", "c"], max_level=2)
        assert lattice.candidate_count(1) == 6
        assert lattice.candidate_count(2) == 3


class TestPFDDiscovery:
    def test_zip_city_variable_pfd(self, zip_city_table):
        result = discover_pfds(zip_city_table, DiscoveryConfig(min_support=5))
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None
        assert dependency.is_variable
        assert dependency.coverage == pytest.approx(1.0)
        assert dependency.pfd.holds_on(zip_city_table)

    def test_constant_pfds_without_generalization(self, zip_city_table):
        config = DiscoveryConfig(min_support=5, generalize=False)
        result = discover_pfds(zip_city_table, config)
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None
        assert not dependency.is_variable
        assert len(dependency.pfd.tableau) == 3  # one row per zip prefix

    def test_multi_lhs_running_example(self, running_example):
        config = DiscoveryConfig(min_support=2, min_coverage=0.10, max_lhs_size=2)
        result = PFDDiscoverer(config).discover(running_example)
        dependency = result.dependency_for(("name", "country"), "gender")
        assert dependency is not None
        assert dependency.pfd.holds_on(running_example)

    def test_single_lhs_insufficient_in_running_example(self, running_example):
        # With K=2 no single attribute determines gender (Example 8).
        config = DiscoveryConfig(min_support=2, min_coverage=0.10, max_lhs_size=1)
        result = PFDDiscoverer(config).discover(running_example)
        assert result.dependency_for(("name",), "gender") is None
        assert result.dependency_for(("country",), "gender") is None

    def test_discovered_pfds_tolerate_noise(self, zip_city_table):
        dirty = zip_city_table.copy()
        dirty.set_cell(0, "city", "New York")  # a single error
        result = discover_pfds(dirty, DiscoveryConfig(min_support=5, noise_ratio=0.05))
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None
        # The discovered PFD flags the dirty cell as a violation.
        violations = dependency.pfd.violations(dirty)
        suspect_rows = {cell.row_id for v in violations for cell in v.suspect_cells}
        assert 0 in suspect_rows

    def test_result_bookkeeping(self, zip_city_table):
        result = discover_pfds(zip_city_table)
        assert result.relation_name == "Zip"
        assert result.candidate_count >= 2
        assert result.index_entries > 0
        assert result.runtime_seconds >= 0
        assert "Zip" in result.summary()

    def test_include_exclude_attributes(self, zip_city_table):
        config = DiscoveryConfig(min_support=5, exclude_attributes=("city",))
        result = discover_pfds(zip_city_table, config)
        assert not result.dependencies
        config = DiscoveryConfig(min_support=5, include_attributes=("zip", "city"))
        assert discover_pfds(zip_city_table, config).dependencies

    def test_min_coverage_filters(self, zip_city_table):
        config = DiscoveryConfig(min_support=30, min_coverage=0.9)
        result = discover_pfds(zip_city_table, config)
        assert result.dependency_for(("zip",), "city") is None


class TestGeneralization:
    def test_generalize_constant_tableau(self, zip_city_table):
        config = DiscoveryConfig(min_support=5, generalize=False)
        result = discover_pfds(zip_city_table, config)
        dependency = result.dependency_for(("zip",), "city")
        outcome = generalize_tableau(
            zip_city_table, ("zip",), ("city",), dependency.pfd.tableau,
            DiscoveryConfig(min_support=5),
        )
        assert outcome.succeeded
        assert outcome.pfd.is_variable
        assert outcome.pfd.holds_on(zip_city_table)

    def test_generalization_rejected_when_too_noisy(self, zip_city_table):
        dirty = zip_city_table.copy()
        for row_id in range(0, 18):
            dirty.set_cell(row_id, "city", f"Wrong {row_id}")
        config = DiscoveryConfig(min_support=5, generalize=False, noise_ratio=0.4)
        result = discover_pfds(dirty, config)
        dependency = result.dependency_for(("zip",), "city")
        if dependency is None:
            return
        outcome = generalize_tableau(
            dirty, ("zip",), ("city",), dependency.pfd.tableau,
            DiscoveryConfig(min_support=5, noise_ratio=0.01),
        )
        assert not outcome.succeeded

    def test_single_row_tableau_not_generalized(self, zip_city_table):
        from repro.core.tableau import PatternTableau

        outcome = generalize_tableau(
            zip_city_table, ("zip",), ("city",),
            PatternTableau([{"zip": r"{{900}}\D{2}", "city": r"Los\ Angeles"}]),
            DiscoveryConfig(),
        )
        assert not outcome.succeeded


class TestBruteForce:
    @pytest.fixture
    def small_names(self):
        return Relation.from_rows(
            ["name", "gender"],
            [
                ("John Charles", "M"),
                ("John Bosco", "M"),
                ("Susan Orlean", "F"),
                ("Susan Boyle", "F"),
            ],
            name="Name",
        )

    def test_substring_enumeration(self, small_names):
        groups = enumerate_substring_groups(small_names, "name", "gender")
        by_text = {group.substring: group for group in groups}
        assert by_text["John"].support == 2
        assert set(by_text["John"].rhs_values) == {"M"}
        assert by_text["Susan"].support == 2

    def test_decision_function(self):
        good = SubstringGroup("John", ("M", "M"), (0, 1))
        bad = SubstringGroup("a", ("M", "F", "M", "F", "X", "Y"), (0, 1, 2, 3, 4, 5))
        assert default_decision_function(good)
        assert not default_decision_function(bad)

    def test_brute_force_finds_first_names_and_junk(self, small_names):
        result = brute_force_discover(small_names, "name", "gender", min_support=2)
        assert result.pfd is not None
        accepted_texts = {group.substring for group in result.accepted}
        # True positives (challenge C3: also many meaningless substrings).
        assert "John" in accepted_texts
        assert "Susan" in accepted_texts
        assert len(accepted_texts) > 2
        # Challenge C3: the junk rows (e.g. a single shared letter with a tied
        # majority) make the brute-force PFD self-contradictory on clean data.
        assert not result.pfd.holds_on(small_names)

    def test_brute_force_size_limit(self):
        big = Relation.from_rows(["a", "b"], [(f"v{i}", "x") for i in range(600)])
        with pytest.raises(DiscoveryError):
            enumerate_substring_groups(big, "a", "b")
