"""Property-based tests (hypothesis) for the pattern engine.

Invariants checked:

* the compiled (regex-backed) matcher and the reference backtracking matcher
  agree on every (pattern, string) pair drawn from a pattern generator;
* parse/serialize round-trips preserve the AST;
* strings generated *from* a pattern always match it;
* language containment decisions are consistent with membership of witness
  strings;
* induced patterns cover the strings they were induced from.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.patterns.alphabet import CharClass
from repro.patterns.ast import ClassAtom, ConstrainedGroup, Literal, Pattern, Repeat
from repro.patterns.induction import induce_pattern
from repro.patterns.matcher import compile_pattern, reference_match
from repro.patterns.nfa import language_contains, pattern_to_nfa
from repro.patterns.parser import parse_pattern

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_LITERAL_CHARS = "ABCabc01 -"


def _atoms() -> st.SearchStrategy:
    literal = st.sampled_from(list(_LITERAL_CHARS)).map(Literal)
    cls = st.sampled_from(list(CharClass)).map(ClassAtom)
    return st.one_of(literal, cls)


def _elements() -> st.SearchStrategy:
    def to_repeat(args):
        atom, kind, count = args
        if kind == "plain":
            return atom
        if kind == "star":
            return Repeat(atom, 0, None)
        if kind == "plus":
            return Repeat(atom, 1, None)
        return Repeat(atom, count, count)

    return st.tuples(
        _atoms(),
        st.sampled_from(["plain", "star", "plus", "fixed"]),
        st.integers(min_value=1, max_value=3),
    ).map(to_repeat)


@st.composite
def patterns(draw, with_group: bool = True) -> Pattern:
    elements = draw(st.lists(_elements(), min_size=1, max_size=5))
    if with_group and draw(st.booleans()):
        split = draw(st.integers(min_value=1, max_value=len(elements)))
        group = ConstrainedGroup(tuple(elements[:split]))
        return Pattern((group,) + tuple(elements[split:]))
    return Pattern(tuple(elements))


def _sample_string(pattern: Pattern, rng: random.Random) -> str:
    """Generate a random string from the pattern's language."""
    alphabet = {
        CharClass.ANY: "Aa0 -z9",
        CharClass.UPPER: "ABCXYZ",
        CharClass.LOWER: "abcxyz",
        CharClass.DIGIT: "0123456789",
        CharClass.SYMBOL: " -_.,",
    }

    def atom_char(atom) -> str:
        if isinstance(atom, Literal):
            return atom.char
        return rng.choice(alphabet[atom.cls])

    parts: list[str] = []
    for element in pattern.flattened_elements():
        if isinstance(element, Repeat):
            low = element.min_count
            high = element.max_count if element.max_count is not None else low + rng.randint(0, 3)
            count = rng.randint(low, max(low, high))
            parts.append("".join(atom_char(element.atom) for _ in range(count)))
        else:
            parts.append(atom_char(element))
    return "".join(parts)


_random_strings = st.text(alphabet=_LITERAL_CHARS + "XYZxyz789.", max_size=12)


# --------------------------------------------------------------------------
# Properties
# --------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(pattern=patterns(), value=_random_strings)
def test_compiled_and_reference_matchers_agree(pattern, value):
    compiled = compile_pattern(pattern).match(value)
    reference = reference_match(pattern, value)
    assert compiled.matched == reference.matched
    if compiled.matched and pattern.has_constrained_group:
        # Both engines are greedy, so the captured group must agree too.
        assert compiled.constrained_value == reference.constrained_value


@settings(max_examples=150, deadline=None)
@given(pattern=patterns())
def test_parse_serialize_roundtrip(pattern):
    assert parse_pattern(pattern.to_pattern_string()) == pattern


@settings(max_examples=120, deadline=None)
@given(pattern=patterns(), seed=st.integers(min_value=0, max_value=10_000))
def test_generated_strings_match_their_pattern(pattern, seed):
    value = _sample_string(pattern, random.Random(seed))
    assert compile_pattern(pattern).matches(value)


@settings(max_examples=60, deadline=None)
@given(pattern=patterns(with_group=False), seed=st.integers(min_value=0, max_value=10_000))
def test_nfa_agrees_with_regex_on_generated_strings(pattern, seed):
    value = _sample_string(pattern, random.Random(seed))
    assert pattern_to_nfa(pattern).accepts(value)


@settings(max_examples=40, deadline=None)
@given(pattern=patterns(with_group=False), seed=st.integers(min_value=0, max_value=10_000))
def test_every_pattern_is_contained_in_any_star(pattern, seed):
    assert language_contains(r"\A*", pattern)
    value = _sample_string(pattern, random.Random(seed))
    assert compile_pattern(r"\A*").matches(value)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.text(alphabet="ABCabc019- ", min_size=1, max_size=8), min_size=1, max_size=6
    )
)
def test_induced_pattern_covers_inputs(values):
    pattern = induce_pattern(values)
    if pattern is None:
        return
    compiled = compile_pattern(pattern)
    for value in values:
        if value:
            assert compiled.matches(value)


@settings(max_examples=60, deadline=None)
@given(value=st.text(alphabet="ABCabc019-, ", max_size=14))
def test_wildcard_cell_pattern_matches_everything(value):
    from repro.core.tableau import WILDCARD, effective_pattern

    assert compile_pattern(effective_pattern(WILDCARD)).matches(value)
