"""Tests for classical FDs and CFDs (the baselines' constraint classes)."""

import pytest

from repro.constraints.base import CellRef, Violation, embedded_dependency_key
from repro.constraints.cfd import CFD, CFDTuple, WILDCARD, constant_cfd
from repro.constraints.fd import FD, satisfied_fds, violation_ratio
from repro.dataset.relation import Relation
from repro.exceptions import ConstraintError, TableauError


@pytest.fixture
def name_table():
    return Relation.from_rows(
        ["name", "gender"],
        [
            ("John Charles", "M"),
            ("John Bosco", "M"),
            ("Susan Orlean", "F"),
            ("Susan Boyle", "M"),
        ],
        name="Name",
    )


@pytest.fixture
def zip_table():
    return Relation.from_rows(
        ["zip", "city"],
        [
            ("90001", "Los Angeles"),
            ("90002", "Los Angeles"),
            ("90003", "Los Angeles"),
            ("90004", "New York"),
        ],
        name="Zip",
    )


class TestCellRefAndViolation:
    def test_cellref_value_and_order(self, zip_table):
        cell = CellRef(3, "city")
        assert cell.value(zip_table) == "New York"
        assert CellRef(1, "a") < CellRef(2, "a")
        assert str(cell) == "t3[city]"

    def test_violation_rows(self):
        violation = Violation("FD", "x", (CellRef(2, "a"), CellRef(0, "b")))
        assert violation.rows() == (0, 2)

    def test_embedded_dependency_key_sorts(self):
        assert embedded_dependency_key(["b", "a"], ["c"]) == (("a", "b"), ("c",))


class TestFD:
    def test_paper_example_1_no_violation(self, name_table, zip_table):
        # Example 1: the FDs cannot detect the errors because no two tuples share the LHS.
        assert FD("name", "gender", "Name").holds_on(name_table)
        assert FD("zip", "city", "Zip").holds_on(zip_table)

    def test_fd_violation_detection(self):
        relation = Relation.from_rows(
            ["zip", "city"],
            [("90001", "LA"), ("90001", "NY"), ("90001", "LA")],
        )
        fd = FD("zip", "city")
        assert not fd.holds_on(relation)
        violations = fd.violations(relation)
        assert len(violations) == 1
        suspects = violations[0].suspect_cells
        assert suspects == (CellRef(1, "city"),)
        assert violations[0].expected_value == "LA"

    def test_empty_lhs_values_ignored(self):
        relation = Relation.from_rows(["a", "b"], [("", "1"), ("", "2")])
        assert FD("a", "b").holds_on(relation)

    def test_multi_attribute_fd(self):
        relation = Relation.from_rows(
            ["a", "b", "c"],
            [("1", "x", "p"), ("1", "y", "q"), ("1", "x", "p")],
        )
        assert FD(("a", "b"), "c").holds_on(relation)
        assert not FD("a", "c").holds_on(relation)

    def test_trivial_and_normalized(self):
        fd = FD(("a", "b"), ("a", "c"))
        assert not fd.is_trivial
        assert FD("a", "a").is_trivial
        parts = fd.normalized()
        assert [p.rhs for p in parts] == [("a",), ("c",)]

    def test_requires_nonempty_sides(self):
        with pytest.raises(ConstraintError):
            FD((), "a")

    def test_violation_ratio_and_satisfied(self):
        relation = Relation.from_rows(
            ["a", "b"], [("1", "x"), ("1", "x"), ("1", "y"), ("2", "z")]
        )
        fd = FD("a", "b")
        assert violation_ratio(relation, fd) == pytest.approx(0.25)
        assert satisfied_fds(relation, [fd, FD("b", "a")]) == [FD("b", "a")]

    def test_str(self):
        assert str(FD("zip", "city", "Zip")) == "Zip([zip] -> [city])"


class TestCFD:
    def test_constant_cfd_detects_error(self, zip_table):
        # phi from Example 1: zip=90004 -> city=Los Angeles flags s4.
        cfd = constant_cfd({"zip": "90004"}, {"city": "Los Angeles"}, "Zip")
        violations = cfd.violations(zip_table)
        assert len(violations) == 1
        assert violations[0].suspect_cells == (CellRef(3, "city"),)
        assert violations[0].expected_value == "Los Angeles"

    def test_constant_cfd_holds(self, zip_table):
        cfd = constant_cfd({"zip": "90001"}, {"city": "Los Angeles"}, "Zip")
        assert cfd.holds_on(zip_table)

    def test_variable_cfd_wildcards(self):
        relation = Relation.from_rows(
            ["type", "unit"],
            [("IC50", "nM"), ("IC50", "nM"), ("IC50", "uM"), ("Ki", "nM")],
        )
        cfd = CFD(
            ("type",),
            ("unit",),
            [{"type": WILDCARD, "unit": WILDCARD}],
        )
        violations = cfd.violations(relation)
        assert len(violations) == 1
        assert violations[0].suspect_cells == (CellRef(2, "unit"),)

    def test_mixed_row_constant_rhs(self):
        relation = Relation.from_rows(
            ["type", "unit"], [("IC50", "nM"), ("IC50", "uM"), ("Ki", "x")]
        )
        cfd = CFD(("type",), ("unit",), [{"type": "IC50", "unit": "nM"}])
        violations = cfd.violations(relation)
        assert {cell.row_id for v in violations for cell in v.suspect_cells} == {1}

    def test_tableau_validation(self):
        with pytest.raises(TableauError):
            CFD(("a",), ("b",), [{"a": "x"}])
        with pytest.raises(ConstraintError):
            CFD(("a",), ("b",), [])

    def test_is_constant_flag(self):
        constant = constant_cfd({"a": "1"}, {"b": "2"})
        assert constant.is_constant
        variable = CFD(("a",), ("b",), [{"a": WILDCARD, "b": WILDCARD}])
        assert not variable.is_constant

    def test_cfd_tuple_access(self):
        row = CFDTuple.from_mapping({"a": "1", "b": "_"})
        assert row.value("a") == "1"
        assert not row.is_constant_on(["a", "b"])
        with pytest.raises(TableauError):
            row.value("missing")
