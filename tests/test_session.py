"""The :class:`~repro.session.CleaningSession` facade.

Covers the tentpole guarantees: memoized stages sharing one engine state,
cross-stage cache reuse observable through :class:`SessionStats`, mutation
invalidation riding the relation's version counter, and equivalence of the
free-function convenience wrappers with the underlying stage classes.
"""

from __future__ import annotations

import pytest

from repro import (
    CleaningSession,
    DiscoveryConfig,
    PatternEvaluator,
    Relation,
    detect_errors,
    discover_pfds,
    repair_errors,
    validate_pfds,
    write_csv,
)
from repro.cleaning.detector import ErrorDetector
from repro.cleaning.repair import Repairer
from repro.datagen.suite import build_table
from repro.discovery.pfd_discovery import PFDDiscoverer
from repro.exceptions import ReproError
from repro.session import SessionStats, ValidationReport


def _zip_rows(errors: int = 0):
    rows = [(f"{90000 + i:05d}", "Los Angeles") for i in range(8)] + [
        (f"{10000 + i:05d}", "New York") for i in range(8)
    ]
    for i in range(errors):
        rows.append((f"{90100 + i:05d}", "New York"))
    return rows


@pytest.fixture
def session() -> CleaningSession:
    return CleaningSession.from_rows(
        ["zip", "city"], _zip_rows(), name="zips",
        config=DiscoveryConfig(min_support=4),
    )


class TestStages:
    def test_stages_chain_and_memoize(self, session):
        profile = session.profile()
        result = session.discover()
        report = session.detect()
        repaired = session.repair()
        validation = session.validate()
        assert session.profile() is profile
        assert session.discover() is result
        assert session.detect() is report
        assert session.repair() is repaired
        assert session.validate() is validation
        assert session.stats().stages == (
            "profile", "discover", "detect", "repair", "validate"
        )

    def test_detect_defaults_to_discovered_pfds(self, session):
        result = session.discover()
        report = session.detect()
        explicit = session.detect(result.pfds)
        assert explicit.error_cells == report.error_cells

    def test_discover_with_explicit_config_feeds_noarg_stages(self):
        session = CleaningSession.from_rows(["zip", "city"], _zip_rows(1), name="zips")
        result = session.discover(DiscoveryConfig(min_support=4))
        # A no-argument discover() returns the *last* discovery, whatever
        # config produced it — so detect()'s default PFDs match.
        assert session.discover() is result
        assert session.pfds == result.pfds
        assert len(session.detect()) > 0

    def test_different_config_rediscovers_and_drops_downstream(self, session):
        first = session.discover()
        report = session.detect()
        validation = session.validate()
        second = session.discover(DiscoveryConfig(min_support=2))
        assert second is not first
        # downstream default-PFD memos were dropped with the old discovery
        assert session.detect() is not report
        assert session.validate() is not validation
        assert len(session.validate()) == len(second.pfds)

    def test_repair_reuses_memoized_detection(self, session):
        report = session.detect()
        match_calls = session.evaluator.match_calls
        result = session.repair()
        # Repairing consumed the memoized report: no re-detection on the
        # session's relation (the verify pass runs on the repaired copy).
        assert result.remaining_error_cells is not None
        assert report.error_cells >= result.repaired_cells
        assert session.relation.partitions  # session relation untouched
        assert session.evaluator.match_calls >= match_calls

    def test_repair_does_not_mutate_session_relation(self):
        session = CleaningSession.from_rows(
            ["zip", "city"], _zip_rows(1), name="zips",
            config=DiscoveryConfig(min_support=4),
        )
        before = list(session.relation.column("city"))
        result = session.repair()
        assert list(session.relation.column("city")) == before
        assert result.relation is not session.relation

    def test_validate_reports_per_pfd(self, session):
        session.discover()
        report = session.validate()
        assert isinstance(report, ValidationReport)
        assert len(report) == len(session.pfds)
        assert report.holding_count <= len(report)
        assert "PFD(s) hold" in report.summary()

    def test_profile_feeds_discovery(self, session):
        profile = session.profile()
        session.discover()
        # discover() reused the memoized profile instead of re-profiling
        assert session.profile() is profile

    def test_from_csv_roundtrip(self, tmp_path):
        relation = Relation.from_rows(["zip", "city"], _zip_rows(), name="zips")
        path = tmp_path / "zips.csv"
        write_csv(relation, path)
        session = CleaningSession.from_csv(path, config=DiscoveryConfig(min_support=4))
        assert session.relation.row_count == relation.row_count
        assert session.discover().pfds


class TestCrossStageCacheReuse:
    """The facade win: discover → detect shares one primed engine state."""

    def test_detect_after_discover_is_free_of_new_engine_work(self, session):
        # Pinned serial: the hit/miss counters describe the parent-process
        # caches, which sharded stages under REPRO_WORKERS would bypass.
        session.workers = 1
        result = session.discover()
        dependency = result.dependency_for(("zip",), "city")
        assert dependency is not None and dependency.is_variable
        before = session.stats()
        session.detect([dependency.pfd])
        after = session.stats()
        # Zero additional pattern-set compilations...
        assert after.pattern_set_compilations == before.pattern_set_compilations
        # ...and zero new partition builds: every leaf is served from cache.
        assert after.partition_misses == before.partition_misses
        assert after.partition_hits > before.partition_hits

    def test_stats_snapshots_are_immutable_and_structured(self, session):
        session.discover()
        import dataclasses

        stats = session.stats()
        assert isinstance(stats, SessionStats)
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.match_calls = 0  # type: ignore[misc]
        doc = stats.to_json_dict()
        assert doc["relation"] == "zips"
        assert doc["partition_misses"] == stats.partition_misses
        assert "pattern-set compilations" in stats.summary()
        assert "partition cache:" in stats.summary()


class TestMutationInvalidation:
    def test_set_cell_invalidates_cached_stage_results(self, session):
        result = session.discover()
        report = session.detect()
        session.relation.set_cell(0, "city", "New York")
        assert session.discover() is not result
        assert session.detect() is not report

    def test_append_row_invalidates_cached_stage_results(self, session):
        result = session.discover()
        report = session.detect()
        validation = session.validate()
        session.relation.append_row(("90200", "Los Angeles"))
        assert session.discover() is not result
        assert session.detect() is not report
        assert session.validate() is not validation

    def test_mutated_relation_changes_detection_outcome(self):
        session = CleaningSession.from_rows(
            ["zip", "city"], _zip_rows(), name="zips",
            config=DiscoveryConfig(min_support=4),
        )
        session.discover()
        clean = session.detect()
        assert len(clean) == 0
        session.relation.set_cell(0, "city", "New York")
        dirty = session.detect()
        assert len(dirty) > 0

    def test_relation_version_counts_mutations(self):
        relation = Relation.from_rows(["a", "b"], [("1", "2")])
        version = relation.version
        relation.set_cell(0, "a", "3")
        assert relation.version == version + 1
        relation.append_row(("4", "5"))
        assert relation.version == version + 2


class TestWrapperEquivalence:
    """discover_pfds / detect_errors / repair_errors == the session path."""

    @pytest.mark.parametrize("table_id", ["T2", "T14"])
    def test_wrappers_match_direct_stage_classes(self, table_id):
        table = build_table(table_id, scale=0.15)
        relation = table.relation
        config = DiscoveryConfig(min_support=4, min_coverage=0.05)

        wrapped = discover_pfds(relation, config)
        direct = PFDDiscoverer(config, evaluator=PatternEvaluator()).discover(relation)
        assert wrapped.dependency_keys == direct.dependency_keys
        assert wrapped.pfds == direct.pfds
        assert wrapped.candidate_count == direct.candidate_count
        assert wrapped.index_entries == direct.index_entries

        pfds = wrapped.pfds
        if not pfds:
            pytest.skip(f"no PFDs discovered on {table_id} at this scale")

        wrapped_report = detect_errors(relation, pfds)
        direct_report = ErrorDetector(pfds, evaluator=PatternEvaluator()).detect(relation)
        assert wrapped_report.error_cells == direct_report.error_cells
        assert wrapped_report.errors == direct_report.errors

        wrapped_repair = repair_errors(relation, pfds)
        direct_repair = Repairer(pfds, evaluator=PatternEvaluator()).repair(relation)
        assert wrapped_repair.repairs == direct_repair.repairs
        assert wrapped_repair.unresolved == direct_repair.unresolved
        assert wrapped_repair.remaining_error_cells is None  # verify off by default

    def test_repair_errors_verify_flag(self):
        relation = Relation.from_rows(["zip", "city"], _zip_rows(1), name="zips")
        pfds = discover_pfds(relation, DiscoveryConfig(min_support=4)).pfds
        verified = repair_errors(relation, pfds, verify=True)
        assert verified.remaining_error_cells is not None

    def test_validate_pfds_wrapper(self):
        relation = Relation.from_rows(["zip", "city"], _zip_rows(), name="zips")
        pfds = discover_pfds(relation, DiscoveryConfig(min_support=4)).pfds
        report = validate_pfds(relation, pfds)
        assert len(report) == len(pfds)
        with pytest.raises(ReproError):
            validate_pfds(relation, [])
