"""Out-of-core backend benchmark: the SQLite-pushdown store vs the in-memory
engine.

The point of the `sql` backend is a *memory* bound, not raw speed: the
decoded table never materializes in the process, so peak RSS stays
O(distinct values + one ingestion chunk) while the in-memory backends hold
every cell as a Python string (or ndarray codes over them).  Per-process
peak RSS is a high-water mark (`ru_maxrss`), so each backend's full
pipeline — `from_csv` → discover → detect → repair — runs in its own child
interpreter; the child reports its peak RSS, pipeline wall time, and the
results, and the parent records peak RSS and cells/sec per backend into the
benchmark JSON (`extra_info`) next to a bit-identical-results assertion
across backends.
"""

from __future__ import annotations

import csv
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.backend import HAS_NUMPY, NUMPY, PYTHON, SQL

BACKENDS = (SQL, NUMPY if HAS_NUMPY else PYTHON)

#: Distinct zips in the synthetic table; each maps to one city, so the
#: wildcard PFD zip -> city holds, and a few seeded typos give detection
#: and repair real work.
DISTINCT_ZIPS = 150
TYPO_ROWS = 6

_CHILD = """
import json, resource, sys, time
from repro.session import CleaningSession

backend, path = sys.argv[1], sys.argv[2]
start = time.perf_counter()
with CleaningSession.from_csv(path, backend=backend) as session:
    discovery = session.discover()
    detection = session.detect()
    repair = session.repair()
    seconds = time.perf_counter() - start
    print(json.dumps({
        "seconds": seconds,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "rows": session.relation.row_count,
        "pfds": [str(p) for p in discovery.pfds],
        "errors": len(detection.errors),
        "repairs": [
            [r.cell.row_id, r.cell.attribute, r.old_value, r.new_value]
            for r in repair.repairs
        ],
    }))
"""

_results: dict[str, dict] = {}


def _row_target(scale: float) -> int:
    """20k rows at smoke scale, 100k at ``--repro-scale 1.0``."""
    return max(20_000, int(100_000 * scale))


@pytest.fixture(scope="module")
def dataset(repro_scale, tmp_path_factory) -> Path:
    count = _row_target(repro_scale)
    path = tmp_path_factory.mktemp("sql_bench") / "zips.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["zip", "city"])
        stride = max(1, count // TYPO_ROWS)
        for i in range(count):
            distinct = i % DISTINCT_ZIPS
            city = f"City{distinct % 31}"
            if i % stride == 7:
                city = f"Typo{i % TYPO_ROWS}"
            writer.writerow([f"{10000 + distinct * 41:05d}", city])
    return path


def _run_child(backend: str, path: Path) -> dict:
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, backend, str(path)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
    )
    return json.loads(completed.stdout)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_sql_backend_pipeline(benchmark, dataset, backend):
    result = benchmark.pedantic(_run_child, args=(backend, dataset), rounds=1)
    _results[backend] = result
    cells = result["rows"] * 2
    cells_per_sec = int(cells / result["seconds"])
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["rows"] = result["rows"]
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["pipeline_cells_per_sec"] = cells_per_sec
    benchmark.extra_info["peak_rss_kb"] = result["peak_rss_kb"]
    print(
        f"\npipeline[{backend}]: {cells} cells, {cells_per_sec:,} cells/sec, "
        f"peak RSS {result['peak_rss_kb'] / 1024:.1f} MB"
    )


def test_sql_backend_results_bit_identical(dataset):
    for backend in BACKENDS:
        if backend not in _results:
            _results[backend] = _run_child(backend, dataset)
    reference = _results[BACKENDS[-1]]
    sql = _results[SQL]
    assert sql["pfds"] == reference["pfds"]
    assert sql["errors"] == reference["errors"]
    assert sql["repairs"] == reference["repairs"]
    assert sql["repairs"], "the seeded typos must produce repairs"
