"""Figure 6: detection of injected errors drawn from the *active domain* of
the State attribute (the conceptually harder case), same sweep as Figure 5.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import run_figure


ERROR_RATES = (0.01, 0.04, 0.07, 0.10)
SUPPORTS = (2, 4, 6)
NOISE_RATIOS = (0.01, 0.04, 0.07)


@pytest.fixture(scope="module")
def figure6(repro_scale):
    rows = max(300, int(920 * max(repro_scale, 0.3)))
    return run_figure(
        "active",
        rows=rows,
        error_rates=ERROR_RATES,
        supports=SUPPORTS,
        noise_ratios=NOISE_RATIOS,
    )


@pytest.fixture(scope="module")
def figure5_reference(repro_scale):
    rows = max(300, int(920 * max(repro_scale, 0.3)))
    return run_figure(
        "outside",
        rows=rows,
        error_rates=ERROR_RATES,
        supports=(2,),
        noise_ratios=(0.04,),
    )


def test_bench_figure6_sweep(benchmark, repro_scale):
    rows = max(300, int(920 * max(repro_scale, 0.3)))
    result = benchmark.pedantic(
        run_figure,
        args=("active",),
        kwargs={
            "rows": rows,
            "error_rates": (0.02, 0.08),
            "supports": (2, 6),
            "noise_ratios": (0.04,),
        },
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 4


def test_figure6_series_reproduce_paper_shape(figure6, figure5_reference):
    print()
    print(figure6.render())

    def mean(values):
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    # Shape 1: recall still decreases with the error rate.
    series = figure6.series(2, 0.04)
    assert series[-1].recall <= series[0].recall + 0.05

    # Shape 2: precision still increases (weakly) with K.
    precision_k2 = mean(p.precision for p in figure6.points if p.min_support == 2)
    precision_k6 = mean(p.precision for p in figure6.points if p.min_support == 6)
    assert precision_k6 >= precision_k2 - 0.05

    # Shape 3 (the paper's headline for Figure 6): drawing the noise from the
    # active domain barely changes the outcome — the method is robust to the
    # error source.  Compare the K=2, delta=4% recall curves of both figures.
    reference = figure5_reference.series(2, 0.04)
    active = figure6.series(2, 0.04)
    reference_mean = mean(point.recall for point in reference)
    active_mean = mean(point.recall for point in active)
    assert abs(reference_mean - active_mean) <= 0.25
