"""Section 5.4 (efficiency): discovery runtime of FDep, CFDFinder, and PFD
discovery (single and multi LHS) as the table grows.

The paper's claim is an ordering — FDep < CFDFinder < PFD < PFD multi-LHS —
with all methods remaining practical.  Absolute numbers depend on the host;
the bench asserts the ordering on aggregate.
"""

from __future__ import annotations

import pytest

from repro.experiments.efficiency import run_efficiency


@pytest.fixture(scope="module")
def efficiency(repro_scale):
    base = max(repro_scale, 0.25)
    row_counts = tuple(int(n * base) for n in (1000, 2000, 4000))
    return run_efficiency(row_counts=row_counts)


def test_bench_efficiency_scaling(benchmark):
    result = benchmark.pedantic(
        run_efficiency, kwargs={"row_counts": (200, 400)}, rounds=1, iterations=1
    )
    assert len(result.points) == 2


def test_efficiency_ordering_reproduces_paper_shape(efficiency):
    print()
    print(efficiency.render())

    total_fdep = sum(point.fdep_seconds for point in efficiency.points)
    total_cfd = sum(point.cfd_seconds for point in efficiency.points)
    total_pfd = sum(point.pfd_seconds for point in efficiency.points)
    total_multi = sum(point.pfd_multi_seconds for point in efficiency.points)

    # Whole-value baselines are cheaper than PFD discovery (which has to deal
    # with partial values), and multi-LHS PFD discovery costs the most.  Note
    # one deviation from the paper recorded in EXPERIMENTS.md: our simple
    # hash-grouping CFDFinder re-implementation is not slower than FDep, so
    # only the "baselines < PFD < PFD multi-LHS" part of the ordering is
    # asserted.
    assert total_fdep <= total_pfd
    assert total_cfd <= total_pfd
    assert total_pfd <= total_multi * 1.1
    assert total_fdep <= total_multi
    # Runtime grows with the table size for PFD discovery.
    assert efficiency.points[-1].pfd_seconds >= efficiency.points[0].pfd_seconds * 0.8
