"""Incremental-append benchmark: ``detect_new`` after a 1% append vs a full
re-detect from cold caches.

Models the ingestion workflow the append path exists for: a wide, heavily
duplicated table has been cleaned once (engine caches warm), a small batch
of new rows arrives, and the question is what re-validating costs.  The
baseline is what every batch used to pay before delta maintenance — full
re-detection over the concatenated table with cold dictionaries, masks, and
partitions.

Asserted (the PR's acceptance criterion):

* scoped delta detection is at least **3×** faster than the full re-detect
  (measured ~2 orders of magnitude in practice — the scoped pass touches
  only classes containing appended rows), and
* the delta report over the extended caches equals the full-rebuild report
  (the base table is clean, so every error is the batch's doing).
"""

from __future__ import annotations

import time

from repro.cleaning.detector import ErrorDetector
from repro.core.pfd import make_pfd
from repro.dataset.relation import Relation
from repro.engine.evaluator import PatternEvaluator
from repro.session import CleaningSession

_COLUMNS = ["zip", "city", "state", "areacode", "phone", "county", "country", "uid"]

_REGIONS = [
    ("900", "Los Angeles", "CA", "213", "Los Angeles County"),
    ("941", "San Francisco", "CA", "415", "San Francisco County"),
    ("100", "New York", "NY", "212", "New York County"),
    ("606", "Chicago", "IL", "312", "Cook County"),
    ("770", "Dallas", "TX", "214", "Dallas County"),
    ("331", "Miami", "FL", "305", "Miami-Dade County"),
    ("981", "Seattle", "WA", "206", "King County"),
    ("802", "Denver", "CO", "303", "Denver County"),
]


def _region_row(region_index: int, suffix: int, uid: int) -> tuple[str, ...]:
    prefix, city, state, area, county = _REGIONS[region_index % len(_REGIONS)]
    return (
        f"{prefix}{suffix % 100:02d}",
        city,
        state,
        area,
        f"({area}) 555-{suffix % 10000:04d}",
        county,
        "US",
        f"u{uid:06d}",
    )


def _build_rows(row_count: int) -> list[tuple[str, ...]]:
    """A duplicated wide table: ~400 distinct (zip, city, ...) combinations,
    each repeated many times (the shape partition stripping thrives on)."""
    return [
        _region_row(uid % len(_REGIONS), uid // len(_REGIONS) % 50, uid)
        for uid in range(row_count)
    ]


#: The zip determines city / state / county; constraining the whole zip
#: yields one (small) equivalence class per distinct zip, so a 1% batch
#: touches ~1% of the classes — the shape scoped detection exploits.
_PFDS = [
    make_pfd("zip", "city", [{"zip": r"{{\D{5}}}", "city": "⊥"}]),
    make_pfd("zip", "state", [{"zip": r"{{\D{5}}}", "state": "⊥"}]),
    make_pfd("zip", "county", [{"zip": r"{{\D{5}}}", "county": "⊥"}]),
]


def test_bench_detect_new_beats_full_redetect(benchmark, repro_scale):
    row_count = max(1200, int(16000 * repro_scale))
    rows = _build_rows(row_count)
    batch_size = max(8, row_count // 100)  # the 1% append
    batch = [
        _region_row(uid % len(_REGIONS), uid // len(_REGIONS) % 50, row_count + uid)
        for uid in range(batch_size - 2)
    ]
    # Two fresh violations: existing zips re-ingested with the wrong city /
    # county (the appended rows become the minority of their class).
    batch.append(("90000", "San Francisco", "CA", "213", "(213) 555-0000",
                  "Los Angeles County", "US", "x1"))
    batch.append(("60600", "Chicago", "IL", "312", "(312) 555-0000",
                  "Dupage County", "US", "x2"))

    # Warm path: one cleaned session, append the batch, detect the delta.
    # Pinned serial: this benchmark measures the incremental-cache win, and
    # REPRO_WORKERS would make every timed call pay pool + broadcast setup.
    session = CleaningSession(Relation.from_rows(_COLUMNS, rows, name="wide"), workers=1)
    assert len(session.detect(_PFDS)) == 0, "the base table must start clean"
    appended = session.append(batch)
    delta_report = session.detect_new(_PFDS)

    def scoped_detect():
        return ErrorDetector(_PFDS, evaluator=session.evaluator, workers=1).detect(
            session.relation, since_row=appended.start
        )

    def full_redetect():
        cold = session.relation.copy()
        return ErrorDetector(_PFDS, evaluator=PatternEvaluator(), workers=1).detect(cold)

    # Scoped detection is stateless (unlike detect_new, which consumes the
    # pending delta), so it can be timed over many rounds.
    incremental_seconds = min(
        _timed(scoped_detect)[0] for _ in range(5)
    )
    full_seconds, full_report = min(
        (_timed(full_redetect) for _ in range(3)), key=lambda pair: pair[0]
    )

    # Identical findings: the base is clean, so the full report is exactly
    # the delta report (and both flag the two injected violations).
    assert delta_report.error_cells == full_report.error_cells
    assert scoped_detect().error_cells == full_report.error_cells
    assert len(delta_report.errors) >= 2

    speedup = full_seconds / incremental_seconds
    assert speedup >= 3.0, (
        f"detect_new after a 1% append must be >=3x faster than a full "
        f"re-detect, got {speedup:.1f}x ({incremental_seconds * 1e3:.2f} ms vs "
        f"{full_seconds * 1e3:.2f} ms on {row_count}+{batch_size} rows)"
    )

    benchmark.extra_info["rows"] = row_count
    benchmark.extra_info["batch_rows"] = batch_size
    benchmark.extra_info["incremental_seconds"] = round(incremental_seconds, 6)
    benchmark.extra_info["full_redetect_seconds"] = round(full_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.pedantic(scoped_detect, rounds=3, iterations=1)


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result
