"""Session-facade benchmark: one ``CleaningSession`` vs three free calls.

Models the workflow the facade replaces: running discover → detect → repair
as three independent CLI-style invocations, each re-loading the table and
re-priming its own engine state, versus one :class:`CleaningSession` that
loads once, primes once, and shares the evaluator + partition caches across
stages.

Asserted (the PR's acceptance criterion):

* the session path performs **strictly fewer pattern-set compilations** and
  **strictly fewer partition builds** (cache misses) than the three
  independent calls, and
* the discovered PFDs, detected cells, and applied repairs are identical.

Wall-clock for both paths is recorded as ``extra_info``.
"""

from __future__ import annotations

import time

import pytest

from repro.cleaning.detector import ErrorDetector
from repro.cleaning.repair import Repairer
from repro.dataset.relation import Relation
from repro.datagen.suite import build_table
from repro.discovery.config import DiscoveryConfig
from repro.discovery.pfd_discovery import PFDDiscoverer
from repro.engine.evaluator import PatternEvaluator
from repro.session import CleaningSession

#: Constant tableaux (no generalization) keep multi-row pattern batches in
#: play for every stage, so the pattern-set compilation counter is exercised.
CONFIG = DiscoveryConfig(min_support=4, min_coverage=0.05, generalize=False)


@pytest.fixture(scope="module")
def alumni_rows(repro_scale):
    table = build_table("T14", scale=max(0.25, repro_scale))
    relation = table.relation
    return list(relation.attribute_names), list(relation.iter_rows())


def _fresh_relation(alumni_rows) -> Relation:
    names, rows = alumni_rows
    return Relation.from_rows(names, rows, name="alumni")


def _run_session(alumni_rows):
    """discover → detect → repair through one shared session."""
    # Pinned serial: the compilation/partition counters describe parent-process
    # caches, which sharded stages under REPRO_WORKERS would bypass.
    session = CleaningSession(_fresh_relation(alumni_rows), config=CONFIG, workers=1)
    start = time.perf_counter()
    discovery = session.discover()
    report = session.detect()
    repair = session.repair(verify=False)
    elapsed = time.perf_counter() - start
    stats = session.stats()
    return {
        "pfds": discovery.pfds,
        "cells": report.error_cells,
        "repairs": repair.repairs,
        "compilations": stats.pattern_set_compilations,
        "partition_builds": stats.partition_misses,
        "seconds": elapsed,
    }


def _run_free_functions(alumni_rows):
    """The pre-facade workflow: three independent invocations, each with a
    freshly loaded relation and its own evaluator (what three CLI runs do)."""
    start = time.perf_counter()
    relation_a = _fresh_relation(alumni_rows)
    evaluator_a = PatternEvaluator()
    discovery = PFDDiscoverer(CONFIG, evaluator=evaluator_a, workers=1).discover(relation_a)

    relation_b = _fresh_relation(alumni_rows)
    evaluator_b = PatternEvaluator()
    report = ErrorDetector(discovery.pfds, evaluator=evaluator_b, workers=1).detect(relation_b)

    relation_c = _fresh_relation(alumni_rows)
    evaluator_c = PatternEvaluator()
    repair = Repairer(discovery.pfds, evaluator=evaluator_c, workers=1).repair(relation_c)
    elapsed = time.perf_counter() - start

    compilations = (
        evaluator_a.pattern_set_compilations
        + evaluator_b.pattern_set_compilations
        + evaluator_c.pattern_set_compilations
    )
    partition_builds = (
        relation_a.partitions().stats.misses
        + relation_b.partitions().stats.misses
        + relation_c.partitions().stats.misses
    )
    return {
        "pfds": discovery.pfds,
        "cells": report.error_cells,
        "repairs": repair.repairs,
        "compilations": compilations,
        "partition_builds": partition_builds,
        "seconds": elapsed,
    }


def test_bench_session_beats_free_functions(benchmark, alumni_rows):
    free = _run_free_functions(alumni_rows)
    session = benchmark.pedantic(lambda: _run_session(alumni_rows), rounds=3, iterations=1)

    # Identical observable results...
    assert session["pfds"] == free["pfds"]
    assert session["cells"] == free["cells"]
    assert session["repairs"] == free["repairs"]
    assert session["pfds"], "benchmark table must yield PFDs"

    # ...with strictly less engine work.
    assert session["compilations"] < free["compilations"], (
        f"session performed {session['compilations']} pattern-set compilations, "
        f"free functions {free['compilations']}"
    )
    assert session["partition_builds"] < free["partition_builds"], (
        f"session built {session['partition_builds']} partitions, "
        f"free functions {free['partition_builds']}"
    )

    benchmark.extra_info["session_seconds"] = round(session["seconds"], 4)
    benchmark.extra_info["free_seconds"] = round(free["seconds"], 4)
    benchmark.extra_info["session_compilations"] = session["compilations"]
    benchmark.extra_info["free_compilations"] = free["compilations"]
    benchmark.extra_info["session_partition_builds"] = session["partition_builds"]
    benchmark.extra_info["free_partition_builds"] = free["partition_builds"]
