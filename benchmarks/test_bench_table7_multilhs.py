"""Table 7 (row 14): multi-attribute-LHS PFD discovery runtime.

The paper reports that enabling multi-attribute LHS search increases the
discovery runtime (lattice level 2 and above) while still completing in
reasonable time.  The bench measures single- vs multi-LHS discovery on the
same tables and asserts the ordering.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen import build_table
from repro.discovery import DiscoveryConfig, PFDDiscoverer


@pytest.fixture(scope="module")
def tables(repro_scale):
    return [build_table(table_id, scale=repro_scale) for table_id in ("T1", "T3", "T13")]


def test_bench_multi_lhs_discovery(benchmark, tables):
    config = DiscoveryConfig(max_lhs_size=2)

    def run():
        return [PFDDiscoverer(config).discover(table.relation) for table in tables]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(result.dependencies for result in results)


def test_multi_lhs_is_slower_but_supersets_are_pruned(tables):
    single_config = DiscoveryConfig(max_lhs_size=1)
    multi_config = DiscoveryConfig(max_lhs_size=2)
    rows = []
    for table in tables:
        start = time.perf_counter()
        single = PFDDiscoverer(single_config).discover(table.relation)
        single_time = time.perf_counter() - start
        start = time.perf_counter()
        multi = PFDDiscoverer(multi_config).discover(table.relation)
        multi_time = time.perf_counter() - start
        rows.append((table.name, single_time, multi_time, len(single.dependencies), len(multi.dependencies)))
    print()
    print("table  single-LHS(s)  multi-LHS(s)  #deps(single)  #deps(multi)")
    for name, single_time, multi_time, single_count, multi_count in rows:
        print(f"{name:5}  {single_time:12.3f}  {multi_time:11.3f}  {single_count:13d}  {multi_count:12d}")

    # Multi-LHS explores a strictly larger candidate space: at least as slow
    # on average, and it never loses single-LHS dependencies (pruning only
    # removes supersets of already-satisfied dependencies).
    total_single = sum(row[1] for row in rows)
    total_multi = sum(row[2] for row in rows)
    assert total_multi >= total_single * 0.8
    for (_name, _st, _mt, single_count, multi_count) in rows:
        assert multi_count >= single_count
