"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 5) at a configurable scale.  The scale can be raised towards the
paper's table sizes with ``--repro-scale``; the default keeps a full
``pytest benchmarks/ --benchmark-only`` run in the low minutes on a laptop.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        type=float,
        default=0.25,
        help="row-count scale factor applied to the generated datasets",
    )


@pytest.fixture(scope="session")
def repro_scale(request) -> float:
    return request.config.getoption("--repro-scale")
