"""Parallel discovery benchmark: multi-LHS lattice sharding at 1/2/4 workers.

Multi-LHS discovery is the library's most expensive stage (Table 7's
``max_lhs_size=2`` runs dominate every end-to-end timing), and its work —
validating each lattice level's candidate groups — is embarrassingly
parallel *within* a level.  This benchmark times the same discovery on the
same wide duplicated table at ``workers=1``, ``2``, and ``4`` (fresh
sessions each, so every run pays its own broadcast), pins the parallel
results bit-identical to serial, and records the speedup curve.

Asserted (the PR's acceptance criterion):

* ``workers=4`` discovery is at least **1.7×** faster than serial — on
  machines that actually have 4 cores to run it on; single-core CI
  containers still record the curve but skip the floor, and
* every worker count returns bit-identical dependencies, candidate counts,
  and per-level tallies.
"""

from __future__ import annotations

import os
import time

from repro.discovery.config import DiscoveryConfig
from repro.session import CleaningSession

_COLUMNS = ["zip", "city", "state", "areacode", "county", "group"]

_REGIONS = [
    ("900", "Los Angeles", "CA", "213", "Los Angeles County"),
    ("941", "San Francisco", "CA", "415", "San Francisco County"),
    ("100", "New York", "NY", "212", "New York County"),
    ("606", "Chicago", "IL", "312", "Cook County"),
    ("770", "Dallas", "TX", "214", "Dallas County"),
    ("331", "Miami", "FL", "305", "Miami-Dade County"),
    ("981", "Seattle", "WA", "206", "King County"),
    ("802", "Denver", "CO", "303", "Denver County"),
]

#: Multi-LHS discovery — the workload the lattice sharding exists for.
_CONFIG = DiscoveryConfig(min_support=4, min_coverage=0.1, max_lhs_size=2)


def _build_rows(row_count: int) -> list[tuple[str, ...]]:
    """A duplicated wide table: a few hundred distinct region combinations,
    each repeated many times (partition stripping collapses the rows, so
    candidate validation cost is driven by the lattice width)."""
    rows = []
    for uid in range(row_count):
        prefix, city, state, area, county = _REGIONS[uid % len(_REGIONS)]
        rows.append(
            (
                f"{prefix}{uid // len(_REGIONS) % 40:02d}",
                city,
                state,
                area,
                county,
                f"G{uid % 5}",
            )
        )
    return rows


def _fingerprint(result):
    return [
        (d.lhs, d.rhs, d.coverage, d.support, d.is_variable, d.pfd.tableau)
        for d in result.dependencies
    ]


def _timed_discover(rows, workers):
    """Discovery from a cold session at the given worker count — each run
    pays its own dictionary build, broadcast, and (for workers>1) pool."""
    with CleaningSession.from_rows(
        _COLUMNS, rows, config=_CONFIG, workers=workers
    ) as session:
        start = time.perf_counter()
        result = session.discover()
        return time.perf_counter() - start, result


def test_bench_parallel_multilhs_discovery(benchmark, repro_scale):
    row_count = max(1000, int(8000 * repro_scale))
    rows = _build_rows(row_count)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    seconds = {}
    results = {}
    for workers in (1, 2, 4):
        runs = [_timed_discover(rows, workers) for _ in range(2)]
        seconds[workers] = min(elapsed for elapsed, _ in runs)
        results[workers] = runs[0][1]

    # Bit-identical across every worker count — the whole point of the
    # level-barrier merge protocol.
    serial = results[1]
    assert serial.dependencies, "the region table must yield dependencies"
    for workers in (2, 4):
        assert _fingerprint(results[workers]) == _fingerprint(serial)
        assert results[workers].candidate_count == serial.candidate_count
        assert results[workers].candidates_per_level == serial.candidates_per_level
        assert results[workers].index_entries == serial.index_entries

    speedup_2 = seconds[1] / seconds[2]
    speedup_4 = seconds[1] / seconds[4]
    if cores >= 4:
        assert speedup_4 >= 1.7, (
            f"multi-LHS discovery at workers=4 must be >=1.7x faster than "
            f"serial on a {cores}-core machine, got {speedup_4:.2f}x "
            f"({seconds[4] * 1e3:.0f} ms vs {seconds[1] * 1e3:.0f} ms on "
            f"{row_count} rows)"
        )

    benchmark.extra_info["rows"] = row_count
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["dependencies"] = len(serial.dependencies)
    benchmark.extra_info["candidates"] = serial.candidate_count
    benchmark.extra_info["serial_seconds"] = round(seconds[1], 6)
    benchmark.extra_info["workers2_seconds"] = round(seconds[2], 6)
    benchmark.extra_info["workers4_seconds"] = round(seconds[4], 6)
    benchmark.extra_info["speedup_workers2"] = round(speedup_2, 2)
    benchmark.extra_info["speedup_workers4"] = round(speedup_4, 2)
    benchmark.extra_info["speedup_floor_asserted"] = cores >= 4
    benchmark.pedantic(lambda: _timed_discover(rows, 2)[1], rounds=1, iterations=1)
