"""Table 3: qualitative showcase of real-world-style PFDs and the errors they
uncover (phone -> state, full name -> gender, zip -> city, zip -> state)."""

from __future__ import annotations

import pytest

from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def table3(repro_scale):
    return run_table3(scale=max(repro_scale, 0.4))


def test_bench_table3_examples(benchmark, repro_scale):
    result = benchmark.pedantic(
        run_table3, kwargs={"scale": max(repro_scale, 0.3)}, rounds=1, iterations=1
    )
    assert len(result.showcases) == 4


def test_table3_showcases_reproduce_paper_shape(table3):
    print()
    print(table3.render())

    by_name = {showcase.dependency: showcase for showcase in table3.showcases}
    assert set(by_name) == {
        "Phone Number -> State",
        "Full Name -> Gender",
        "ZIP -> CITY",
        "ZIP -> STATE",
    }
    # Every dependency yields a non-empty pattern tableau with the shapes the
    # paper's Table 3 lists (digit prefixes for phone/zip, a name token for
    # the gender dependency).
    assert any("\\D{7}" in pattern for pattern in by_name["Phone Number -> State"].sample_patterns)
    assert any("\\D{2}" in pattern for pattern in by_name["ZIP -> CITY"].sample_patterns)
    assert by_name["Full Name -> Gender"].sample_patterns
    # And every dependency uncovers at least one error in the dirty tables.
    for showcase in table3.showcases:
        assert showcase.detected_count > 0
