"""Columnar-core micro-benchmark: numpy backend vs the pure-Python fallback.

The NumPy columnar core keeps dictionary codes in ``int32`` ndarrays and
partitions as ``(sorted_rowids, class_offsets)`` pairs, so the hot engine
queries — warm tableau validation, delta error detection with sparse
errors, and partition intersection — become a handful of vectorized
reductions instead of per-row Python loops.  This module times the *same*
query on the *same* table pinned to each backend:

* ``validate_cells_per_sec`` — warm ``PFD.violations`` on a clean
  high-duplication table (caches primed, the steady-state re-validation
  cost of a monitoring loop);
* ``detect_cells_per_sec`` — warm :class:`ErrorDetector` passes on a table
  with a handful of seeded typos (sparse errors: the per-class agreement
  scan dominates, not violation emission);
* ``intersect_cells_per_sec`` — one uncached
  :meth:`StrippedPartition.intersect` of two cached single-attribute
  partitions (the inner step of lattice descent).

Every entry records its backend in ``extra_info`` so the benchmark JSON
carries both sides of each comparison.  The correctness-guarded speedup
tests assert bit-identical results first and then a >= 3x cells/sec win
for the numpy backend at smoke scale.
"""

from __future__ import annotations

import time

import pytest

from repro.cleaning.detector import ErrorDetector
from repro.core.pfd import make_pfd
from repro.dataset.relation import Relation
from repro.engine.backend import HAS_NUMPY, NUMPY, PYTHON
from repro.engine.evaluator import PatternEvaluator

pytestmark = pytest.mark.skipif(
    not HAS_NUMPY, reason="the columnar-core comparison needs numpy installed"
)

BACKENDS = (NUMPY, PYTHON)

#: Distinct zips in the synthetic table; each maps to exactly one city, so
#: the wildcard PFD zip -> city holds on the clean table.
DISTINCT_ZIPS = 200

#: Seeded typos for the detection workload — deliberately sparse (a few
#: violating classes among thousands) so per-class scanning, not violation
#: emission, dominates the measured time.
TYPO_ROWS = 8

#: Class size for the detection table.  Small classes keep each violation's
#: suspect/cell lists short: emission cost (CellRef construction, identical
#: on both backends) stays negligible next to the agreement scan being
#: compared.
DETECT_CLASS_SIZE = 8


def _row_target(scale: float) -> int:
    """10k rows at smoke scale, 100k at ``--repro-scale 1.0``."""
    return max(10_000, int(100_000 * scale))


def _clean_rows(count: int) -> list[tuple[str, str]]:
    rows = []
    for i in range(count):
        distinct = i % DISTINCT_ZIPS
        rows.append((f"{10000 + distinct * 37:05d}", f"City{distinct % 29}"))
    return rows


def _typo_rows(count: int) -> list[tuple[str, str]]:
    distinct = max(1, count // DETECT_CLASS_SIZE)
    rows = []
    for i in range(count):
        key = i % distinct
        rows.append((f"{key:06d}", f"City{key % 29}"))
    stride = max(1, count // TYPO_ROWS)
    for k in range(TYPO_ROWS):
        index = min(k * stride + k, count - 1)
        rows[index] = (rows[index][0], f"Typo{k}")
    return rows


def _wildcard_pfd():
    return make_pfd("zip", "city", [{"zip": "⊥", "city": "⊥"}])


def _pair_rows(count: int) -> list[tuple[str, str]]:
    # lcm(52, 38) = 988 reachable (a, b) pairs: the product partition spreads
    # out to ~1k classes that stay duplicated at 10k+ rows, so the
    # intersection genuinely regroups rather than copying one side.
    return [(f"a{i % 52}", f"b{i % 38}") for i in range(count)]


@pytest.fixture(scope="module")
def row_count(repro_scale):
    return _row_target(repro_scale)


@pytest.fixture(scope="module")
def clean_relations(row_count):
    rows = _clean_rows(row_count)
    return {
        backend: Relation.from_rows(["zip", "city"], rows, backend=backend)
        for backend in BACKENDS
    }


@pytest.fixture(scope="module")
def typo_relations(row_count):
    rows = _typo_rows(row_count)
    return {
        backend: Relation.from_rows(["zip", "city"], rows, backend=backend)
        for backend in BACKENDS
    }


@pytest.fixture(scope="module")
def pair_relations(row_count):
    rows = _pair_rows(row_count)
    relations = {
        backend: Relation.from_rows(["a", "b"], rows, backend=backend)
        for backend in BACKENDS
    }
    for relation in relations.values():  # prime the leaf partitions
        relation.partitions().attribute_partition("a")
        relation.partitions().attribute_partition("b")
    return relations


def _best_of(func, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_speedup(numpy_run, python_run, label: str, floor: float = 3.0) -> None:
    """min-of-N comparison with one noise-tolerant re-measure, as in the
    other engine benchmarks: a miss at the usual local margin (>= 10x) is
    scheduler noise on a shared runner, not a regression."""
    numpy_seconds = _best_of(numpy_run, rounds=5)
    python_seconds = _best_of(python_run, rounds=5)
    speedup = python_seconds / max(numpy_seconds, 1e-9)
    if speedup < floor:
        numpy_seconds = _best_of(numpy_run, rounds=10)
        python_seconds = _best_of(python_run, rounds=10)
        speedup = python_seconds / max(numpy_seconds, 1e-9)
    print(
        f"\n{label}: numpy {numpy_seconds * 1000:.2f} ms vs python "
        f"{python_seconds * 1000:.2f} ms ({speedup:.1f}x)"
    )
    assert speedup >= floor


# -- warm tableau validation ---------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_columnar_validation(benchmark, clean_relations, backend):
    relation = clean_relations[backend]
    evaluator = PatternEvaluator()
    pfd = _wildcard_pfd()
    assert pfd.violations(relation, evaluator=evaluator) == []  # warm caches

    violations = benchmark.pedantic(
        pfd.violations, args=(relation,), kwargs={"evaluator": evaluator}, rounds=5
    )
    assert violations == []
    cells = relation.row_count * 2
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["validate_cells_per_sec"] = int(cells / seconds)
    print(f"\nvalidation[{backend}]: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_columnar_validation_speedup(clean_relations):
    evaluators = {backend: PatternEvaluator() for backend in BACKENDS}
    pfd = _wildcard_pfd()
    results = {
        backend: pfd.violations(clean_relations[backend], evaluator=evaluators[backend])
        for backend in BACKENDS
    }
    assert results[NUMPY] == results[PYTHON] == []  # identical semantics first
    assert pfd.support(clean_relations[NUMPY]) == pfd.support(clean_relations[PYTHON])
    _assert_speedup(
        lambda: pfd.violations(clean_relations[NUMPY], evaluator=evaluators[NUMPY]),
        lambda: pfd.violations(clean_relations[PYTHON], evaluator=evaluators[PYTHON]),
        "warm validation",
    )


# -- sparse-error detection ----------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_columnar_detection(benchmark, typo_relations, backend):
    relation = typo_relations[backend]
    detector = ErrorDetector([_wildcard_pfd()])
    warm = detector.detect(relation)  # warm partitions + evaluator caches
    assert warm.violations

    report = benchmark.pedantic(detector.detect, args=(relation,), rounds=5)
    assert report.backend == backend
    assert len(report.violations) == len(warm.violations)
    cells = relation.row_count * 2
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["detect_cells_per_sec"] = int(cells / seconds)
    print(f"\ndetection[{backend}]: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_columnar_detection_speedup(typo_relations):
    detector = ErrorDetector([_wildcard_pfd()])
    reports = {backend: detector.detect(typo_relations[backend]) for backend in BACKENDS}
    assert reports[NUMPY].violations == reports[PYTHON].violations
    assert reports[NUMPY].errors == reports[PYTHON].errors
    assert reports[NUMPY].violations  # the seeded typos are found
    _assert_speedup(
        lambda: detector.detect(typo_relations[NUMPY]),
        lambda: detector.detect(typo_relations[PYTHON]),
        "sparse-error detection",
    )


# -- partition intersection ----------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_columnar_intersection(benchmark, pair_relations, backend):
    relation = pair_relations[backend]
    left = relation.partitions().attribute_partition("a")
    right = relation.partitions().attribute_partition("b")

    product = benchmark.pedantic(left.intersect, args=(right,), rounds=5)
    assert product.backend == backend
    assert product.class_count > 0
    cells = relation.row_count * 2
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["intersect_cells_per_sec"] = int(cells / seconds)
    print(f"\nintersection[{backend}]: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_columnar_intersection_speedup(pair_relations):
    partitions = {
        backend: (
            pair_relations[backend].partitions().attribute_partition("a"),
            pair_relations[backend].partitions().attribute_partition("b"),
        )
        for backend in BACKENDS
    }
    products = {
        backend: left.intersect(right) for backend, (left, right) in partitions.items()
    }
    assert products[NUMPY].classes == products[PYTHON].classes  # bit-identical
    assert products[NUMPY].error == products[PYTHON].error
    _assert_speedup(
        lambda: partitions[NUMPY][0].intersect(partitions[NUMPY][1]),
        lambda: partitions[PYTHON][0].intersect(partitions[PYTHON][1]),
        "partition intersection",
    )
