"""CRUD-delta benchmark: ``apply`` + ``detect_changed`` on a 1% update-heavy
stream vs wholesale invalidation + full re-detect.

Models the mutation workflow the unified batch API exists for: a wide,
heavily duplicated table has been cleaned once (engine caches warm), an
update-heavy batch arrives (~1% of rows rewritten in place, two of them
incorrectly), and the question is what re-validating costs.  The baseline is
what every mutation used to pay before delta maintenance — dropping the
touched caches wholesale and re-detecting over the entire table with cold
dictionaries, masks, and partitions.

Asserted (the PR's acceptance criterion):

* one full update cycle (apply the dirty batch, scope-detect, apply the
  restoring batch, scope-detect) is at least **3×** faster than the
  equivalent two wholesale re-detects, and
* the scoped reports are exact: the dirty half flags precisely the injected
  violations and the restoring half comes back clean.
"""

from __future__ import annotations

import time

from repro.cleaning.detector import ErrorDetector
from repro.core.pfd import make_pfd
from repro.dataset.mutations import MutationBatch
from repro.dataset.relation import Relation
from repro.engine.evaluator import PatternEvaluator
from repro.session import CleaningSession

_COLUMNS = ["zip", "city", "state", "areacode", "phone", "county", "country", "uid"]

_REGIONS = [
    ("900", "Los Angeles", "CA", "213", "Los Angeles County"),
    ("941", "San Francisco", "CA", "415", "San Francisco County"),
    ("100", "New York", "NY", "212", "New York County"),
    ("606", "Chicago", "IL", "312", "Cook County"),
    ("770", "Dallas", "TX", "214", "Dallas County"),
    ("331", "Miami", "FL", "305", "Miami-Dade County"),
    ("981", "Seattle", "WA", "206", "King County"),
    ("802", "Denver", "CO", "303", "Denver County"),
]


def _region_row(region_index: int, suffix: int, uid: int) -> tuple[str, ...]:
    prefix, city, state, area, county = _REGIONS[region_index % len(_REGIONS)]
    return (
        f"{prefix}{suffix % 100:02d}",
        city,
        state,
        area,
        f"({area}) 555-{suffix % 10000:04d}",
        county,
        "US",
        f"u{uid:06d}",
    )


def _build_rows(row_count: int) -> list[tuple[str, ...]]:
    return [
        _region_row(uid % len(_REGIONS), uid // len(_REGIONS) % 50, uid)
        for uid in range(row_count)
    ]


_PFDS = [
    make_pfd("zip", "city", [{"zip": r"{{\D{5}}}", "city": "⊥"}]),
    make_pfd("zip", "state", [{"zip": r"{{\D{5}}}", "state": "⊥"}]),
    make_pfd("zip", "county", [{"zip": r"{{\D{5}}}", "county": "⊥"}]),
]


def test_bench_update_stream_beats_wholesale_redetect(benchmark, repro_scale):
    row_count = max(2400, int(64000 * repro_scale))
    rows = _build_rows(row_count)
    stream_size = max(8, row_count // 100)  # the 1% update stream

    # The dirty batch rewrites ~1% of the rows in place, shaped like a real
    # update stream: most rows churn an unconstrained column (a new phone
    # number), a few get a fully consistent different region (their class
    # membership moves, nothing breaks), and the last two get a wrong city
    # for their zip — the injected violations scoped detection must find.
    targets = [(i * 97) % row_count for i in range(stream_size)]
    targets = sorted(set(targets))[:stream_size]
    dirty_cells = []
    restore_cells = []
    violation_targets = targets[-2:]
    for row_id in targets[:4]:
        new_region = _region_row((row_id + 3) % len(_REGIONS), row_id % 50, row_id)
        old_region = rows[row_id]
        for column_index in (0, 1, 2, 3, 5):
            dirty_cells.append((row_id, _COLUMNS[column_index], new_region[column_index]))
            restore_cells.append((row_id, _COLUMNS[column_index], old_region[column_index]))
    for row_id in targets[4:-2]:
        dirty_cells.append((row_id, "phone", f"(999) 555-{row_id % 10000:04d}"))
        restore_cells.append((row_id, "phone", rows[row_id][4]))
    for row_id in violation_targets:
        wrong_city = "San Francisco" if rows[row_id][1] != "San Francisco" else "Denver"
        dirty_cells.append((row_id, "city", wrong_city))
        restore_cells.append((row_id, "city", rows[row_id][1]))

    # The stream arrives as ready-made batches; building them is not the
    # system under test.
    dirty_batch = MutationBatch.update_cells(dirty_cells)
    restore_batch = MutationBatch.update_cells(restore_cells)

    # Pinned serial: this benchmark measures the incremental-cache win, and
    # REPRO_WORKERS would make every timed call pay pool + broadcast setup.
    session = CleaningSession(Relation.from_rows(_COLUMNS, rows, name="wide"), workers=1)
    assert len(session.detect(_PFDS)) == 0, "the base table must start clean"

    def update_cycle():
        """One delta-maintained round trip: dirty 1% of the rows, scope-detect,
        restore them, scope-detect again — state ends where it began."""
        session.apply(dirty_batch)
        dirty_report = session.detect_changed(_PFDS)
        session.apply(restore_batch)
        clean_report = session.detect_changed(_PFDS)
        return dirty_report, clean_report

    def wholesale_cycle():
        """What the same round trip cost pre-delta-maintenance: every mutation
        dropped the touched caches, so each half pays a full re-detect over
        cold dictionaries, masks, and partitions."""
        reports = []
        for _ in range(2):
            cold = session.relation.copy()
            reports.append(
                ErrorDetector(_PFDS, evaluator=PatternEvaluator(), workers=1).detect(cold)
            )
        return reports

    # Correctness first: the dirty half flags exactly the injected
    # violations, the restoring half heals them.
    dirty_report, clean_report = update_cycle()
    assert {error.cell.row_id for error in dirty_report.errors} == set(violation_targets)
    assert not clean_report.errors

    incremental_seconds = min(_timed(update_cycle)[0] for _ in range(5))
    full_seconds = min(_timed(wholesale_cycle)[0] for _ in range(3))

    speedup = full_seconds / incremental_seconds
    assert speedup >= 3.0, (
        f"a delta-maintained 1% update stream must be >=3x faster than "
        f"wholesale invalidation + full re-detect, got {speedup:.1f}x "
        f"({incremental_seconds * 1e3:.2f} ms vs {full_seconds * 1e3:.2f} ms "
        f"on {row_count} rows, {len(dirty_cells)} cell writes per half)"
    )

    benchmark.extra_info["rows"] = row_count
    benchmark.extra_info["updated_rows"] = len(targets)
    benchmark.extra_info["cell_writes_per_half"] = len(dirty_cells)
    benchmark.extra_info["incremental_seconds"] = round(incremental_seconds, 6)
    benchmark.extra_info["wholesale_seconds"] = round(full_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.pedantic(update_cycle, rounds=3, iterations=1)


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result
