"""Serving-tier benchmark: warm vs cold tenant latency, requests/sec.

The cleaning service's tentpole perf claim is that a *warm* tenant (live
session, primed engine caches) answers ``detect`` strictly faster than a
*cold* one (evicted, rehydrated from the registry: CSV re-read + cache
rebuild), and that the LRU manager plus the global ``compile_pattern_set``
memo keep a many-tenant daemon serving at interactive rates.

Asserted:

* warm ``detect`` median latency strictly below cold (post-eviction)
  ``detect`` median latency on the same tenant and data;
* both paths return bit-identical error sets.

Recorded as ``extra_info``: warm/cold medians, the warm/cold ratio, and a
requests-per-second figure over a round-robin of tenants served through one
bounded service (more tenants than live slots, so the rate includes
rehydration traffic).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.datagen.suite import build_table
from repro.discovery.config import DiscoveryConfig
from repro.service import CleaningService, ConstraintRegistry

CONFIG = DiscoveryConfig(min_support=4, min_coverage=0.05, generalize=False)


@pytest.fixture(scope="module")
def alumni_rows(repro_scale):
    table = build_table("T14", scale=max(0.25, repro_scale))
    relation = table.relation
    return list(relation.attribute_names), list(relation.iter_rows())


def _timed_detect(service, tenant):
    start = time.perf_counter()
    doc = service.detect(tenant)
    return time.perf_counter() - start, doc


def test_bench_warm_tenant_beats_cold(benchmark, tmp_path, alumni_rows):
    columns, rows = alumni_rows
    registry = ConstraintRegistry(tmp_path / "registry")

    def run():
        with CleaningService(registry, max_sessions=4, config=CONFIG) as service:
            service.load_tenant("alumni", columns=columns, rows=rows)
            service.discover("alumni")
            service.detect("alumni")  # prime the memoized report

            warm_times, cold_times = [], []
            warm_doc = cold_doc = None
            for _ in range(5):
                seconds, warm_doc = _timed_detect(service, "alumni")
                warm_times.append(seconds)
                # Evict: the next detect rehydrates from the registry and
                # rebuilds the session's engine caches from scratch.
                assert service.manager.evict("alumni")
                seconds, cold_doc = _timed_detect(service, "alumni")
                cold_times.append(seconds)
                service.detect("alumni")  # re-warm for the next iteration
            return warm_times, cold_times, warm_doc, cold_doc, service.stats()

    warm_times, cold_times, warm_doc, cold_doc, stats = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    warm = statistics.median(warm_times)
    cold = statistics.median(cold_times)

    assert warm_doc["errors"] == cold_doc["errors"], (
        "rehydrated tenant must detect bit-identically"
    )
    assert warm_doc["error_count"] > 0, "benchmark table must contain errors"
    assert warm < cold, (
        f"warm detect ({warm * 1e3:.2f} ms) must beat cold rehydration "
        f"({cold * 1e3:.2f} ms)"
    )
    assert stats["sessions"]["rehydrated"] >= 5

    benchmark.extra_info["rows"] = warm_doc["rows"]
    benchmark.extra_info["warm_detect_ms"] = round(warm * 1e3, 3)
    benchmark.extra_info["cold_detect_ms"] = round(cold * 1e3, 3)
    benchmark.extra_info["cold_over_warm"] = round(cold / warm, 2)


def test_bench_multi_tenant_throughput(benchmark, tmp_path, alumni_rows):
    columns, rows = alumni_rows
    tenant_count, live_slots, requests = 6, 3, 60
    registry = ConstraintRegistry(tmp_path / "registry")
    tenants = [f"tenant{i}" for i in range(tenant_count)]

    def run():
        with CleaningService(
            registry, max_sessions=live_slots, config=CONFIG
        ) as service:
            for tenant in tenants:
                service.load_tenant(tenant, columns=columns, rows=rows)
                service.discover(tenant)
            start = time.perf_counter()
            # Round-robin over twice the live bound: every request beyond the
            # first cycle alternates LRU hits with evict-and-rehydrate misses.
            for i in range(requests):
                doc = service.detect(tenants[i % tenant_count])
                assert doc["error_count"] > 0
            elapsed = time.perf_counter() - start
            return elapsed, service.stats()

    elapsed, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = requests / elapsed

    assert stats["sessions"]["live"] <= live_slots
    assert stats["sessions"]["evicted"] > 0, "bound must have forced evictions"

    benchmark.extra_info["tenants"] = tenant_count
    benchmark.extra_info["live_slots"] = live_slots
    benchmark.extra_info["requests"] = requests
    benchmark.extra_info["requests_per_second"] = round(rate, 1)
    benchmark.extra_info["rehydrated"] = stats["sessions"]["rehydrated"]
    benchmark.extra_info["evicted"] = stats["sessions"]["evicted"]
    benchmark.extra_info["detect_p95_ms"] = stats["endpoints"]["detect"].get(
        "p95_ms"
    )
