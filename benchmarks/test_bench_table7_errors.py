"""Table 7 (rows 15-16): error detection with validated PFDs.

For every suite table, the discovered dependencies that match the ground
truth (the stand-in for the paper's manual validation) are applied back to
the dirty table; the bench reports the number of detected errors and the
cell-level precision, and asserts the paper's headline: the average detection
precision is above 50 % (paper: 65 % on the tables where precision could be
computed, with several tables at or near 100 %).
"""

from __future__ import annotations

import pytest

from repro.cleaning import cell_precision_recall, detect_errors
from repro.datagen import benchmark_suite
from repro.discovery import DiscoveryConfig, PFDDiscoverer


@pytest.fixture(scope="module")
def detection_rows(repro_scale):
    suite = benchmark_suite(scale=max(repro_scale, 0.25))
    rows = []
    for table_id, table in suite.items():
        result = PFDDiscoverer(DiscoveryConfig()).discover(table.relation)
        validated = [d.pfd for d in result.dependencies if d.key in table.true_dependencies]
        report = detect_errors(table.relation, validated)
        metrics = cell_precision_recall(report.error_cells, table.error_cells.keys())
        rows.append((table_id, len(report.errors), len(table.error_cells), metrics))
    return rows


def test_bench_error_detection(benchmark, repro_scale):
    suite = benchmark_suite(scale=max(repro_scale, 0.25), table_ids=("T2", "T12"))

    def run():
        detected = 0
        for table in suite.values():
            result = PFDDiscoverer(DiscoveryConfig()).discover(table.relation)
            validated = [d.pfd for d in result.dependencies if d.key in table.true_dependencies]
            detected += len(detect_errors(table.relation, validated).errors)
        return detected

    assert benchmark.pedantic(run, rounds=1, iterations=1) >= 0


def test_error_detection_rows_reproduce_paper_shape(detection_rows):
    print()
    print("table  #detected  #true  precision  recall")
    for table_id, detected, true_count, metrics in detection_rows:
        print(f"{table_id:5}  {detected:9d}  {true_count:5d}  {metrics.precision:9.2f}  {metrics.recall:6.2f}")

    with_detection = [m for _t, detected, _n, m in detection_rows if detected > 0]
    assert with_detection, "expected at least some tables with detected errors"
    average_precision = sum(m.precision for m in with_detection) / len(with_detection)
    assert average_precision >= 0.5
    # Several tables reach perfect precision, as in the paper.
    assert any(m.precision == 1.0 for m in with_detection)
