"""Engine micro-benchmark: cells/sec for index build + tableau validation.

Tracks the perf trajectory of the vectorized evaluation core on a
*high-duplication* synthetic table — the regime the dictionary-encoded
engine is built for (a few hundred distinct values shared by tens of
thousands of cells).  Two numbers are recorded as ``extra_info`` on the
benchmark entries:

* ``index_cells_per_sec`` — :class:`PatternIndex` construction throughput;
* ``validate_cells_per_sec`` — PFD tableau validation (coverage +
  violations) throughput with a fresh evaluator.

A correctness-guarded comparison against the naive per-row evaluation path
(one ``CompiledPattern.match`` call per cell, as the seed implementation did)
asserts that the engine is actually faster on this table.
"""

from __future__ import annotations

import time
from collections import defaultdict

import pytest

from repro.core.pfd import make_pfd
from repro.dataset.index import PatternIndex
from repro.dataset.relation import Relation
from repro.engine.evaluator import PatternEvaluator

#: Distinct (zip, city) pairs; every pair is repeated COPIES times.
DISTINCT_PAIRS = 120
COPIES = 120


def _high_duplication_relation(scale: float = 1.0) -> Relation:
    copies = max(10, int(COPIES * scale))
    cities = ["Los Angeles", "New York", "Chicago", "Houston", "Phoenix", "Seattle"]
    rows = []
    for i in range(DISTINCT_PAIRS):
        # Step by 100 so every distinct zip has a unique 3-digit prefix: the
        # validated PFD (zip prefix -> city) then genuinely holds.
        zip_code = f"{10000 + i * 100:05d}"
        city = cities[i % len(cities)]
        rows.append((zip_code, city))
    return Relation.from_rows(["zip", "city"], rows * copies, name="engine-bench")


def _validation_pfd():
    return make_pfd(
        "zip",
        "city",
        [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}],
        relation_name="engine-bench",
    )


def _validate(relation: Relation) -> tuple[float, int]:
    """One full validation pass with a cold evaluator; returns (coverage,
    violation count)."""
    evaluator = PatternEvaluator()
    pfd = _validation_pfd()
    coverage = pfd.coverage(relation, evaluator=evaluator)
    violations = pfd.violations(relation, evaluator=evaluator)
    return coverage, len(violations)


def _naive_validate(relation: Relation) -> tuple[float, int]:
    """The seed evaluation path: one match call per cell per tableau row.

    Kept as an inline reference implementation so the benchmark can assert
    the engine actually beats per-row matching on high-duplication data.
    """
    pfd = _validation_pfd()
    row = pfd.tableau[0]
    lhs_compiled = row.compiled("zip")
    rhs_compiled = row.compiled("city")
    groups: dict[str, list[int]] = defaultdict(list)
    for row_id in range(relation.row_count):
        value = relation.cell(row_id, "zip")
        if not value:
            continue
        result = lhs_compiled.match(value)
        if result.matched:
            key = result.constrained_value if result.constrained_value is not None else ""
            groups[key].append(row_id)
    covered = sum(len(ids) for ids in groups.values())
    violating = 0
    for ids in groups.values():
        if len(ids) < 2:
            continue
        buckets: dict[tuple[bool, str], int] = defaultdict(int)
        for row_id in ids:
            value = relation.cell(row_id, "city")
            result = rhs_compiled.match(value)
            if result.matched:
                extracted = (
                    result.constrained_value if result.constrained_value is not None else ""
                )
                buckets[(True, extracted)] += 1
            else:
                buckets[(False, value)] += 1
        if len(buckets) >= 2:
            violating += 1
    coverage = covered / relation.row_count if relation.row_count else 0.0
    return coverage, violating


@pytest.fixture(scope="module")
def relation(repro_scale):
    return _high_duplication_relation(scale=max(repro_scale, 0.25))


def test_bench_engine_index_build(benchmark, relation):
    cells = relation.row_count * len(relation.attribute_names)

    def build():
        fresh = relation.copy()  # cold dictionary cache every round
        return PatternIndex(fresh)

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    assert index.total_entries() > 0
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["index_cells_per_sec"] = int(cells / seconds)
    print(f"\nindex build: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_bench_engine_tableau_validation(benchmark, relation):
    cells = relation.row_count * 2  # zip + city evaluated per tableau row

    coverage, violation_count = benchmark.pedantic(
        _validate, args=(relation,), rounds=3, iterations=1
    )
    assert coverage == 1.0
    assert violation_count == 0
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["validate_cells_per_sec"] = int(cells / seconds)
    print(f"\nvalidation: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_engine_validation_beats_per_row_matching(relation):
    # Warm both paths once (regex compilation, dictionary build), then time.
    engine_result = _validate(relation)
    naive_result = _naive_validate(relation)
    assert engine_result == naive_result  # identical semantics first

    def best_of(func, rounds: int = 3) -> float:
        # min-of-N is robust to scheduler noise on shared CI runners.
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            func(relation)
            best = min(best, time.perf_counter() - start)
        return best

    engine_seconds = best_of(_validate)
    naive_seconds = best_of(_naive_validate)

    print(
        f"\nengine {engine_seconds * 1000:.1f} ms vs per-row "
        f"{naive_seconds * 1000:.1f} ms "
        f"({naive_seconds / max(engine_seconds, 1e-9):.1f}x)"
    )
    # ~120x duplication: the engine matches each distinct value once and
    # broadcasts, so it must win comfortably; 1.0 keeps the assertion robust
    # against noisy CI machines while still catching a regression to per-row
    # matching.
    assert engine_seconds < naive_seconds
