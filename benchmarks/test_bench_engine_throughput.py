"""Engine micro-benchmark: cells/sec for index build + tableau validation.

Tracks the perf trajectory of the vectorized evaluation core on a
*high-duplication* synthetic table — the regime the dictionary-encoded
engine is built for (a few hundred distinct values shared by tens of
thousands of cells).  Numbers are recorded as ``extra_info`` on the
benchmark entries:

* ``index_cells_per_sec`` — :class:`PatternIndex` construction throughput;
* ``validate_cells_per_sec`` — PFD tableau validation (coverage +
  violations) throughput with a fresh evaluator;
* ``multi_cells_per_sec`` / ``per_pattern_cells_per_sec`` — the
  many-patterns workload (a 16-pattern tableau column): the set-at-a-time
  shared-DFA path versus one ``CompiledPattern.match`` pass per pattern;
* ``partition_cells_per_sec`` / ``dict_grouping_cells_per_sec`` — the
  candidate-validation workload (every 2-attribute LHS candidate of a wide
  duplicated table): cached stripped-partition intersections + per-class
  code checks versus the seed's per-candidate row-at-a-time dict grouping.

Correctness-guarded comparisons assert that the engine beats the naive
per-row evaluation path of the seed implementation, and that the shared-DFA
path both (a) issues exactly one scan per distinct value regardless of the
pattern-set size and (b) beats per-pattern matching by >= 3x cells/sec at 16
patterns.
"""

from __future__ import annotations

import itertools
import time
from collections import defaultdict

import pytest

from repro.core.pfd import make_pfd
from repro.dataset.index import PatternIndex
from repro.dataset.relation import Relation
from repro.engine.evaluator import PatternEvaluator
from repro.patterns.matcher import compile_pattern
from repro.patterns.multi import compile_pattern_set

#: Distinct (zip, city) pairs; every pair is repeated COPIES times.
DISTINCT_PAIRS = 120
COPIES = 120


def _high_duplication_relation(scale: float = 1.0) -> Relation:
    copies = max(10, int(COPIES * scale))
    cities = ["Los Angeles", "New York", "Chicago", "Houston", "Phoenix", "Seattle"]
    rows = []
    for i in range(DISTINCT_PAIRS):
        # Step by 100 so every distinct zip has a unique 3-digit prefix: the
        # validated PFD (zip prefix -> city) then genuinely holds.
        zip_code = f"{10000 + i * 100:05d}"
        city = cities[i % len(cities)]
        rows.append((zip_code, city))
    return Relation.from_rows(["zip", "city"], rows * copies, name="engine-bench")


def _validation_pfd():
    return make_pfd(
        "zip",
        "city",
        [{"zip": r"{{\D{3}}}\D{2}", "city": "⊥"}],
        relation_name="engine-bench",
    )


def _validate(relation: Relation) -> tuple[float, int]:
    """One full validation pass with a cold evaluator; returns (coverage,
    violation count)."""
    evaluator = PatternEvaluator()
    pfd = _validation_pfd()
    coverage = pfd.coverage(relation, evaluator=evaluator)
    violations = pfd.violations(relation, evaluator=evaluator)
    return coverage, len(violations)


def _naive_validate(relation: Relation) -> tuple[float, int]:
    """The seed evaluation path: one match call per cell per tableau row.

    Kept as an inline reference implementation so the benchmark can assert
    the engine actually beats per-row matching on high-duplication data.
    """
    pfd = _validation_pfd()
    row = pfd.tableau[0]
    lhs_compiled = row.compiled("zip")
    rhs_compiled = row.compiled("city")
    groups: dict[str, list[int]] = defaultdict(list)
    for row_id in range(relation.row_count):
        value = relation.cell(row_id, "zip")
        if not value:
            continue
        result = lhs_compiled.match(value)
        if result.matched:
            key = result.constrained_value if result.constrained_value is not None else ""
            groups[key].append(row_id)
    covered = sum(len(ids) for ids in groups.values())
    violating = 0
    for ids in groups.values():
        if len(ids) < 2:
            continue
        buckets: dict[tuple[bool, str], int] = defaultdict(int)
        for row_id in ids:
            value = relation.cell(row_id, "city")
            result = rhs_compiled.match(value)
            if result.matched:
                extracted = (
                    result.constrained_value if result.constrained_value is not None else ""
                )
                buckets[(True, extracted)] += 1
            else:
                buckets[(False, value)] += 1
        if len(buckets) >= 2:
            violating += 1
    coverage = covered / relation.row_count if relation.row_count else 0.0
    return coverage, violating


@pytest.fixture(scope="module")
def relation(repro_scale):
    return _high_duplication_relation(scale=max(repro_scale, 0.25))


def test_bench_engine_index_build(benchmark, relation):
    cells = relation.row_count * len(relation.attribute_names)

    def build():
        fresh = relation.copy()  # cold dictionary cache every round
        return PatternIndex(fresh)

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    assert index.total_entries() > 0
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["index_cells_per_sec"] = int(cells / seconds)
    print(f"\nindex build: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_bench_engine_tableau_validation(benchmark, relation):
    cells = relation.row_count * 2  # zip + city evaluated per tableau row

    coverage, violation_count = benchmark.pedantic(
        _validate, args=(relation,), rounds=3, iterations=1
    )
    assert coverage == 1.0
    assert violation_count == 0
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["validate_cells_per_sec"] = int(cells / seconds)
    print(f"\nvalidation: {cells} cells, {int(cells / seconds):,} cells/sec")


#: The many-patterns workload: one tableau pattern per 3-digit zip prefix,
#: the shape a 16-row constant tableau produces on its LHS column.
MANY_PATTERN_COUNT = 16


def _prefix_patterns(count: int = MANY_PATTERN_COUNT) -> list[str]:
    # Prefixes 100, 101, ... match the zips generated by
    # ``_high_duplication_relation`` (10000 + i * 100 -> prefix 100 + i).
    return [r"{{" + str(100 + i) + r"}}\D{2}" for i in range(count)]


def _match_many(evaluator: PatternEvaluator, patterns, relation: Relation):
    return evaluator.match_column_many(patterns, relation.dictionary("zip"))


def _match_per_pattern(evaluator: PatternEvaluator, patterns, relation: Relation):
    column = relation.dictionary("zip")
    return [evaluator.match_column(pattern, column) for pattern in patterns]


def test_multi_matcher_one_scan_per_distinct_value(relation):
    """Call-counting guard: the shared-DFA path scans each distinct value
    once per batch, no matter how many patterns the set contains."""
    compiled = [compile_pattern(p) for p in _prefix_patterns(32)]
    distinct = relation.dictionary("zip").distinct_count

    evaluator = PatternEvaluator()
    evaluator.match_column_many(compiled[:16], relation.dictionary("zip"))
    assert evaluator.multi_scans == distinct
    assert evaluator.match_calls == 0  # no per-pattern matching at all

    # Twice the patterns: still one scan per distinct value for the batch.
    other = PatternEvaluator()
    other.match_column_many(compiled, relation.dictionary("zip"))
    assert other.multi_scans == distinct
    assert other.match_calls == 0

    # The per-pattern path, by contrast, scales its match calls with K.
    per_pattern = PatternEvaluator()
    _match_per_pattern(per_pattern, compiled[:16], relation)
    assert per_pattern.match_calls == 16 * distinct


def test_bench_many_patterns_set_at_a_time(benchmark, relation):
    patterns = [compile_pattern(p) for p in _prefix_patterns()]
    cells = relation.row_count * len(patterns)
    compile_pattern_set(patterns)  # warm the memoized shared DFA

    def run():
        return _match_many(PatternEvaluator(), patterns, relation)

    match_set = benchmark.pedantic(run, rounds=5, iterations=1)
    assert match_set.pattern_count == len(patterns)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["multi_cells_per_sec"] = int(cells / seconds)
    print(f"\nset-at-a-time: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_bench_many_patterns_per_pattern(benchmark, relation):
    patterns = [compile_pattern(p) for p in _prefix_patterns()]
    cells = relation.row_count * len(patterns)

    def run():
        return _match_per_pattern(PatternEvaluator(), patterns, relation)

    outcomes = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(outcomes) == len(patterns)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["per_pattern_cells_per_sec"] = int(cells / seconds)
    print(f"\nper-pattern: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_many_patterns_shared_dfa_beats_per_pattern():
    """The acceptance bar of the set-at-a-time refactor: >= 3x cells/sec over
    per-pattern matching at 16 tableau patterns on one column.

    Measured on a wider column (400 distinct zips) than the module fixture so
    the per-batch fixed costs amortize and the measured ratio sits at the
    asymptotic per-value one (~10x locally) — far enough from the 3x bar to
    be robust against noisy CI runners and slower interpreters.
    """
    pairs = [(f"{10000 + i * 100:05d}", "X") for i in range(400)]
    relation = Relation.from_rows(["zip", "city"], pairs * 3, name="wide")
    patterns = [compile_pattern(p) for p in _prefix_patterns()]
    compile_pattern_set(patterns)  # construction is memoized per pattern set

    # Semantics first: identical masks from both paths.
    multi_set = _match_many(PatternEvaluator(), patterns, relation)
    per_pattern = _match_per_pattern(PatternEvaluator(), patterns, relation)
    for pattern, outcome in zip(patterns, per_pattern):
        assert multi_set.matched_mask(pattern) == outcome.matched_mask()

    def best_of(func, rounds: int = 7) -> float:
        best = float("inf")
        for _ in range(rounds):
            evaluator = PatternEvaluator()  # cold per-column caches each round
            start = time.perf_counter()
            func(evaluator, patterns, relation)
            best = min(best, time.perf_counter() - start)
        return best

    multi_seconds = best_of(_match_many)
    per_pattern_seconds = best_of(_match_per_pattern)
    speedup = per_pattern_seconds / max(multi_seconds, 1e-9)
    if speedup < 3.0:
        # Local margin is ~10x; a miss here is scheduler noise on a shared
        # runner, so re-measure once with more rounds before failing.
        multi_seconds = best_of(_match_many, rounds=15)
        per_pattern_seconds = best_of(_match_per_pattern, rounds=15)
        speedup = per_pattern_seconds / max(multi_seconds, 1e-9)
    print(
        f"\nset-at-a-time {multi_seconds * 1000:.2f} ms vs per-pattern "
        f"{per_pattern_seconds * 1000:.2f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 3.0


#: The candidate-validation workload: a wide duplicated table on which every
#: 2-attribute LHS candidate ``(Ai, Aj) -> B`` is checked for exact FD
#: satisfaction — the inner loop of level-2 lattice descent.
WIDE_ATTRIBUTES = ("a", "b", "c", "d", "e", "f")


def _wide_duplicated_relation(scale: float = 1.0) -> Relation:
    """High per-column duplication (few distinct values per attribute), with
    pairwise combinations spreading back out — the regime where stripped
    classes stay large and per-candidate regrouping is most expensive."""
    copies = max(4, int(12 * scale))
    rows = []
    for i in range(240):
        rows.append(
            (
                f"a{i % 24}",
                f"b{i % 30}",
                f"c{i % 24}",  # a -> c holds (same modulus)
                f"d{i % 8}",
                f"e{(i % 24) % 6}",  # a -> e holds (coarsening of a)
                f"f{i % 7}",
            )
        )
    return Relation.from_rows(list(WIDE_ATTRIBUTES), rows * copies, name="wide-bench")


def _level2_candidates() -> list[tuple[tuple[str, str], str]]:
    candidates = []
    for lhs in itertools.combinations(WIDE_ATTRIBUTES, 2):
        for rhs in WIDE_ATTRIBUTES:
            if rhs not in lhs:
                candidates.append((lhs, rhs))
    return candidates


def _partition_validate(relation: Relation) -> list[bool]:
    """Partition-intersection candidate validation: cached level-1 partitions,
    one memoized probe-table intersection per LHS pair, and a per-class
    dictionary-code agreement check per RHS."""
    manager = relation.partitions()
    results = []
    for lhs, rhs in _level2_candidates():
        partition = manager.attribute_set_partition(lhs)
        results.append(partition.refines_codes(relation.dictionary(rhs).codes))
    return results


def _dict_grouping_validate(relation: Relation) -> list[bool]:
    """The seed validation path: per candidate, group every row by its LHS
    value tuple and compare RHS values (``FD._first_violation_exists``)."""
    results = []
    for lhs, rhs in _level2_candidates():
        seen: dict[tuple[str, ...], str] = {}
        holds = True
        for row_id in range(relation.row_count):
            key = tuple(relation.cell(row_id, attr) for attr in lhs)
            if any(not part for part in key):
                continue
            rhs_value = relation.cell(row_id, rhs)
            if key in seen:
                if seen[key] != rhs_value:
                    holds = False
                    break
            else:
                seen[key] = rhs_value
        results.append(holds)
    return results


@pytest.fixture(scope="module")
def wide_relation(repro_scale):
    return _wide_duplicated_relation(scale=max(repro_scale, 0.25))


def test_bench_partition_candidate_validation(benchmark, wide_relation):
    candidates = _level2_candidates()
    cells = wide_relation.row_count * 3 * len(candidates)  # 2 LHS + 1 RHS cells

    def run():
        fresh = wide_relation.copy()  # cold partition + dictionary caches
        return _partition_validate(fresh)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(candidates)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["partition_cells_per_sec"] = int(cells / seconds)
    print(f"\npartition validation: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_bench_dict_grouping_candidate_validation(benchmark, wide_relation):
    candidates = _level2_candidates()
    cells = wide_relation.row_count * 3 * len(candidates)

    results = benchmark.pedantic(
        _dict_grouping_validate, args=(wide_relation,), rounds=3, iterations=1
    )
    assert len(results) == len(candidates)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["dict_grouping_cells_per_sec"] = int(cells / seconds)
    print(f"\ndict grouping: {cells} cells, {int(cells / seconds):,} cells/sec")


def test_partition_validation_beats_dict_grouping():
    """The acceptance bar of the partition refactor: >= 2x candidate
    validation throughput over the seed's per-candidate dict grouping on a
    duplicated wide table (measured cold — partition construction and
    intersection included)."""
    relation = _wide_duplicated_relation(scale=1.0)

    # Semantics first: identical verdicts from both paths.
    assert _partition_validate(relation.copy()) == _dict_grouping_validate(relation)

    def best_of(func, rounds: int = 5) -> float:
        best = float("inf")
        for _ in range(rounds):
            fresh = relation.copy()  # cold caches for the partition path
            start = time.perf_counter()
            func(fresh)
            best = min(best, time.perf_counter() - start)
        return best

    partition_seconds = best_of(_partition_validate)
    dict_seconds = best_of(_dict_grouping_validate)
    speedup = dict_seconds / max(partition_seconds, 1e-9)
    if speedup < 2.0:
        # Re-measure once with more rounds before failing: a miss at the
        # usual local margin is scheduler noise on a shared runner.
        partition_seconds = best_of(_partition_validate, rounds=10)
        dict_seconds = best_of(_dict_grouping_validate, rounds=10)
        speedup = dict_seconds / max(partition_seconds, 1e-9)
    print(
        f"\npartition {partition_seconds * 1000:.1f} ms vs dict grouping "
        f"{dict_seconds * 1000:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup >= 2.0


def test_engine_validation_beats_per_row_matching(relation):
    # Warm both paths once (regex compilation, dictionary build), then time.
    engine_result = _validate(relation)
    naive_result = _naive_validate(relation)
    assert engine_result == naive_result  # identical semantics first

    def best_of(func, rounds: int = 3) -> float:
        # min-of-N is robust to scheduler noise on shared CI runners.
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            func(relation)
            best = min(best, time.perf_counter() - start)
        return best

    engine_seconds = best_of(_validate)
    naive_seconds = best_of(_naive_validate)

    print(
        f"\nengine {engine_seconds * 1000:.1f} ms vs per-row "
        f"{naive_seconds * 1000:.1f} ms "
        f"({naive_seconds / max(engine_seconds, 1e-9):.1f}x)"
    )
    # ~120x duplication: the engine matches each distinct value once and
    # broadcasts, so it must win comfortably; 1.0 keeps the assertion robust
    # against noisy CI machines while still catching a regression to per-row
    # matching.
    assert engine_seconds < naive_seconds
