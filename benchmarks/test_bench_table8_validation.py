"""Table 8: precision and coverage of discovered PFDs for the three
manually-validated dependencies (Full Name -> Gender, Fax -> State,
Zip -> City), validated against the generator oracles.
"""

from __future__ import annotations

import pytest

from repro.experiments.table8 import run_table8


@pytest.fixture(scope="module")
def table8_result(repro_scale):
    return run_table8(scale=max(repro_scale, 0.4))


def test_bench_table8_validation(benchmark, repro_scale):
    result = benchmark.pedantic(
        run_table8, kwargs={"scale": max(repro_scale, 0.4)}, rounds=1, iterations=1
    )
    assert len(result.rows) == 3


def test_table8_rows_reproduce_paper_shape(table8_result):
    print()
    print(table8_result.render())

    rows = {row.dependency: row for row in table8_result.rows}
    # Paper: 401 / 176 / 26 PFDs with precision 97.1 / 98.3 / 100 % and
    # coverage 54.9 / 46 / 78.3 %.  The synthetic tables are smaller, so the
    # counts differ, but precision stays very high (> 90 %) and every
    # dependency achieves substantial coverage.
    for row in rows.values():
        assert row.pfd_count > 0
        assert row.precision >= 0.9
        assert row.coverage >= 0.3
    # Zip -> City has the highest coverage of the three, as in the paper.
    assert rows["Zip -> City"].coverage >= rows["Fax -> State"].coverage - 0.05
