"""Figure 5: detection of injected errors drawn from *outside* the active
domain of Zip -> State, sweeping the error rate, the minimum support K, and
the allowed-noise ratio delta.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import run_figure


ERROR_RATES = (0.01, 0.04, 0.07, 0.10)
SUPPORTS = (2, 4, 6)
NOISE_RATIOS = (0.01, 0.04, 0.07)


@pytest.fixture(scope="module")
def figure5(repro_scale):
    rows = max(300, int(920 * max(repro_scale, 0.3)))
    return run_figure(
        "outside",
        rows=rows,
        error_rates=ERROR_RATES,
        supports=SUPPORTS,
        noise_ratios=NOISE_RATIOS,
    )


def test_bench_figure5_sweep(benchmark, repro_scale):
    rows = max(300, int(920 * max(repro_scale, 0.3)))
    result = benchmark.pedantic(
        run_figure,
        args=("outside",),
        kwargs={
            "rows": rows,
            "error_rates": (0.02, 0.08),
            "supports": (2, 6),
            "noise_ratios": (0.04,),
        },
        rounds=1,
        iterations=1,
    )
    assert len(result.points) == 4


def test_figure5_series_reproduce_paper_shape(figure5):
    print()
    print(figure5.render())

    def mean(values):
        values = list(values)
        return sum(values) / len(values) if values else 0.0

    # Shape 1: precision increases (weakly) with the minimum support K.
    precision_by_support = {
        support: mean(p.precision for p in figure5.points if p.min_support == support)
        for support in SUPPORTS
    }
    assert precision_by_support[6] >= precision_by_support[2] - 0.05

    # Shape 2: recall decreases with the minimum support K.
    recall_by_support = {
        support: mean(p.recall for p in figure5.points if p.min_support == support)
        for support in SUPPORTS
    }
    assert recall_by_support[6] <= recall_by_support[2] + 0.05

    # Shape 3: recall decreases as the error rate grows (for K=2, delta=4%).
    series = figure5.series(2, 0.04)
    assert series[-1].recall <= series[0].recall + 0.05

    # Shape 4: larger delta gives better or equal recall at K=2.
    recall_small_delta = mean(p.recall for p in figure5.points if p.min_support == 2 and p.noise_ratio == 0.01)
    recall_large_delta = mean(p.recall for p in figure5.points if p.min_support == 2 and p.noise_ratio == 0.07)
    assert recall_large_delta >= recall_small_delta - 0.05

    # Shape 5: precision stays high overall (errors come from outside the
    # active domain, so flagged cells are almost always genuine errors).
    assert mean(p.precision for p in figure5.points) >= 0.8
