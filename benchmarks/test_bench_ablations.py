"""Ablation benches for the design choices called out in DESIGN.md:

* substring pruning (Section 4.4) — index size with and without pruning;
* single-semantics positional grouping (Section 4.4) — tableau quality with
  and without it on a "Last, First" name table;
* constant -> variable generalization (Section 4.3) — tableau compactness;
* discovery with generalization disabled — the constant tableau must cover
  the same dependency with many more rows.
"""

from __future__ import annotations

import pytest

from repro.datagen import build_name_gender_table, build_zip_state_table
from repro.dataset.index import PatternIndex
from repro.discovery import DiscoveryConfig, PFDDiscoverer


@pytest.fixture(scope="module")
def name_table(repro_scale):
    return build_name_gender_table(rows=max(300, int(600 * repro_scale)), dirt_rate=0.01)


@pytest.fixture(scope="module")
def zip_table(repro_scale):
    return build_zip_state_table(rows=max(300, int(900 * repro_scale)))


def test_bench_substring_pruning(benchmark, zip_table):
    relation = zip_table.relation

    def build_pruned():
        return PatternIndex(relation, prune_substrings=True).total_entries()

    pruned_entries = benchmark(build_pruned)
    unpruned_entries = PatternIndex(relation, prune_substrings=False).total_entries()
    print(f"\nindex entries: pruned={pruned_entries}, unpruned={unpruned_entries}")
    assert pruned_entries <= unpruned_entries


def test_bench_positional_grouping_ablation(benchmark, name_table):
    relation = name_table.relation

    def discover(positional: bool):
        config = DiscoveryConfig(positional_grouping=positional, generalize=False)
        return PFDDiscoverer(config).discover(relation)

    with_grouping = benchmark.pedantic(discover, args=(True,), rounds=1, iterations=1)
    without_grouping = discover(False)
    dep_with = with_grouping.dependency_for(("full_name",), "gender")
    dep_without = without_grouping.dependency_for(("full_name",), "gender")
    assert dep_with is not None and dep_without is not None
    ratio_with = dep_with.pfd.violation_ratio(relation)
    ratio_without = dep_without.pfd.violation_ratio(relation)
    print(
        f"\nviolation ratio with grouping={ratio_with:.3f} "
        f"(rows={len(dep_with.pfd.tableau)}), "
        f"without={ratio_without:.3f} (rows={len(dep_without.pfd.tableau)})"
    )
    # Dropping the positional filter admits structurally mixed tableau rows,
    # which can only keep or worsen the violation ratio of the result.
    assert ratio_with <= ratio_without + 0.02


def test_bench_generalization_compactness(benchmark, zip_table):
    relation = zip_table.relation

    def discover(generalize: bool):
        return PFDDiscoverer(DiscoveryConfig(generalize=generalize)).discover(relation)

    generalized = benchmark.pedantic(discover, args=(True,), rounds=1, iterations=1)
    constants = discover(False)
    dep_generalized = generalized.dependency_for(("zip",), "state")
    dep_constant = constants.dependency_for(("zip",), "state")
    assert dep_generalized is not None and dep_constant is not None
    print(
        f"\ntableau rows: generalized={len(dep_generalized.pfd.tableau)}, "
        f"constants={len(dep_constant.pfd.tableau)}"
    )
    # The variable PFD represents the whole tableau with a single row while
    # covering at least as many tuples.
    assert len(dep_generalized.pfd.tableau) < len(dep_constant.pfd.tableau)
    assert dep_generalized.coverage >= dep_constant.coverage - 0.05


def test_bench_tokenize_vs_ngrams(benchmark, name_table):
    """Forcing n-grams on a token-structured column still finds the
    dependency but produces a less precise tableau, justifying restriction (i)."""
    relation = name_table.relation

    def discover():
        return PFDDiscoverer(DiscoveryConfig(generalize=False)).discover(relation)

    result = benchmark.pedantic(discover, rounds=1, iterations=1)
    dependency = result.dependency_for(("full_name",), "gender")
    assert dependency is not None
    # The tokenizer-based patterns anchor whole first-name tokens.
    rendered = dependency.pfd.describe()
    assert "{{" in rendered
