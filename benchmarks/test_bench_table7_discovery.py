"""Table 7 (rows 1-13): PFD vs FDep vs CFDFinder discovery over the suite.

Regenerates the discovery-quality rows of Table 7 — number of embedded
dependencies, precision, recall, and runtime per method — and asserts the
paper's qualitative claims: PFD discovery uncovers at least as many valid
dependencies as the baselines, with high average recall, while FDep remains
the fastest method.
"""

from __future__ import annotations

import pytest

from repro.experiments.table7 import run_table7


@pytest.fixture(scope="module")
def table7_result(repro_scale):
    return run_table7(scale=repro_scale, run_multi_lhs=False)


def test_bench_table7_discovery(benchmark, repro_scale):
    """Benchmark the full Table-7 discovery sweep (all 15 tables, 3 methods)."""
    result = benchmark.pedantic(
        run_table7,
        kwargs={"scale": repro_scale, "table_ids": ("T2", "T7", "T12"), "run_multi_lhs": False},
        rounds=1,
        iterations=1,
    )
    assert len(result.tables) == 3


def test_table7_rows_reproduce_paper_shape(table7_result):
    print()
    print(table7_result.render())

    # Shape 1: PFD recall is high on average (paper: 93 %).
    assert table7_result.average_pfd_recall() >= 0.8
    # Shape 2: PFD precision is reasonable on average (paper: 78 %).
    assert table7_result.average_pfd_precision() >= 0.55
    # Shape 3: per table, PFD finds at least as many valid dependencies as
    # either baseline (the paper reports only two exceptions out of 15).
    exceptions = 0
    for table in table7_result.tables:
        pfd_valid = table.pfd.recall
        if pfd_valid + 1e-9 < max(table.fdep.recall, table.cfd.recall):
            exceptions += 1
    assert exceptions <= 2
    # Shape 4: FDep is the fastest discovery method on most tables.
    faster = sum(
        1
        for table in table7_result.tables
        if table.fdep.runtime_seconds <= table.pfd.runtime_seconds
    )
    assert faster >= len(table7_result.tables) - 2
    # Shape 5: some dependencies are reported as variable (generalized) PFDs.
    assert sum(table.pfd.variable_count for table in table7_result.tables) > 0
