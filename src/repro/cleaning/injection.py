"""Controlled error injection (the experimental setup of Section 5.3).

The controlled evaluation of the paper cleans a table, injects errors into a
target attribute at rates from 1 % to 10 %, and measures how well the PFDs
discovered from the *dirty* table detect the injected cells.  Two noise
sources are used:

* ``outside`` the active domain — the replacement value is drawn from a pool
  of values that do not occur in the column (Figure 5), and
* ``active`` domain — the replacement is another value already present in
  the column, which is expected to be harder (Figure 6).

A third mode, ``typo``, perturbs characters of the original value (delete /
substitute / append) and is used by the qualitative Table 3 reproduction,
whose real-world errors are misspellings like ``Chicag`` and ``lL``.

All injection is deterministic given a seed and returns the exact set of
injected cells so that precision/recall can be computed.
"""

from __future__ import annotations

import dataclasses
import random
import string
from typing import Optional, Sequence

from ..constraints.base import CellRef
from ..dataset.relation import Relation
from ..exceptions import CleaningError


@dataclasses.dataclass(frozen=True)
class InjectedError:
    """One injected error: where, what it was, and what it became."""

    cell: CellRef
    original_value: str
    injected_value: str


@dataclasses.dataclass
class InjectionResult:
    """The dirty relation plus the full injection log."""

    relation: Relation
    errors: list[InjectedError]

    @property
    def error_cells(self) -> set[CellRef]:
        return {error.cell for error in self.errors}

    @property
    def error_rate(self) -> float:
        if self.relation.row_count == 0:
            return 0.0
        return len(self.errors) / self.relation.row_count


def _typo(value: str, rng: random.Random) -> str:
    """A single-character perturbation of ``value`` (never the identity)."""
    if not value:
        return "?"
    choice = rng.choice(("delete", "substitute", "append", "swap"))
    index = rng.randrange(len(value))
    if choice == "delete" and len(value) > 1:
        return value[:index] + value[index + 1 :]
    if choice == "swap" and len(value) > 1:
        j = (index + 1) % len(value)
        chars = list(value)
        chars[index], chars[j] = chars[j], chars[index]
        mutated = "".join(chars)
        if mutated != value:
            return mutated
    if choice == "append":
        return value + rng.choice(string.ascii_lowercase)
    alphabet = string.ascii_letters + string.digits
    replacement = rng.choice([c for c in alphabet if c != value[index]])
    return value[:index] + replacement + value[index + 1 :]


def inject_errors(
    relation: Relation,
    attribute: str,
    error_rate: float,
    mode: str = "outside",
    seed: int = 0,
    outside_pool: Optional[Sequence[str]] = None,
    copy: bool = True,
) -> InjectionResult:
    """Inject errors into ``attribute`` of ``relation``.

    Parameters
    ----------
    relation:
        The clean relation; it is copied unless ``copy=False``.
    attribute:
        Target column.
    error_rate:
        Fraction of rows to corrupt (0–1).
    mode:
        ``"outside"`` (values from ``outside_pool`` / synthesized values not
        in the active domain), ``"active"`` (another value from the active
        domain), or ``"typo"`` (character-level perturbation).
    seed:
        Seed of the deterministic RNG.
    outside_pool:
        Candidate replacement values for ``outside`` mode; values that happen
        to be in the active domain are skipped.  When omitted, synthetic
        out-of-domain strings are generated.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise CleaningError(f"error_rate must be in [0, 1], got {error_rate}")
    if mode not in ("outside", "active", "typo"):
        raise CleaningError(f"unknown injection mode {mode!r}")
    target = relation.copy() if copy else relation
    rng = random.Random(seed)
    row_count = target.row_count
    error_count = int(round(error_rate * row_count))
    if error_count == 0:
        return InjectionResult(relation=target, errors=[])

    active_domain = sorted(target.active_domain(attribute))
    if mode == "active" and len(active_domain) < 2:
        raise CleaningError(
            "active-domain injection needs at least two distinct values "
            f"in {attribute!r}"
        )
    pool: list[str] = []
    if mode == "outside":
        if outside_pool is not None:
            pool = [value for value in outside_pool if value not in set(active_domain)]
        if not pool:
            pool = [f"ERR_{index:04d}" for index in range(max(error_count, 16))]

    candidate_rows = [
        row_id for row_id in range(row_count) if target.cell(row_id, attribute)
    ]
    rng.shuffle(candidate_rows)
    chosen = sorted(candidate_rows[:error_count])

    errors: list[InjectedError] = []
    for row_id in chosen:
        original = target.cell(row_id, attribute)
        if mode == "outside":
            replacement = rng.choice(pool)
            if replacement == original:
                replacement = replacement + "_x"
        elif mode == "active":
            alternatives = [value for value in active_domain if value != original]
            replacement = rng.choice(alternatives)
        else:
            replacement = _typo(original, rng)
            if replacement == original:
                replacement = original + "x"
        target.set_cell(row_id, attribute, replacement)
        errors.append(
            InjectedError(
                cell=CellRef(row_id, attribute),
                original_value=original,
                injected_value=replacement,
            )
        )
    return InjectionResult(relation=target, errors=errors)


def inject_errors_multi(
    relation: Relation,
    attributes: Sequence[str],
    error_rate: float,
    mode: str = "typo",
    seed: int = 0,
) -> InjectionResult:
    """Spread errors across several attributes (used by the Table 7 error
    detection reproduction, where every table carries mixed dirtiness)."""
    target = relation.copy()
    all_errors: list[InjectedError] = []
    for offset, attribute in enumerate(attributes):
        result = inject_errors(
            target,
            attribute,
            error_rate,
            mode=mode,
            seed=seed + offset,
            copy=False,
        )
        all_errors.extend(result.errors)
    return InjectionResult(relation=target, errors=all_errors)
