"""Evaluation metrics for discovery and error detection.

Two families of metrics are needed to reproduce the paper's tables:

* **Dependency-level** precision/recall (Table 7, rows 2–3, 6–7, 11–12):
  discovered embedded dependencies are compared against a ground-truth list.
* **Cell-level** precision/recall (Table 7 rows 15–16, Figures 5 and 6):
  detected error cells are compared against the set of truly erroneous cells
  (known exactly for injected errors, and from the generator's ground truth
  for the synthetic tables).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from ..constraints.base import CellRef, embedded_dependency_key

DependencyKey = tuple[tuple[str, ...], tuple[str, ...]]


@dataclasses.dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F1 with the underlying counts kept around."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"(tp={self.true_positives}, fp={self.false_positives}, fn={self.false_negatives})"
        )


def normalize_dependency(lhs: Sequence[str], rhs: Sequence[str] | str) -> DependencyKey:
    """Canonical form of an embedded dependency for set comparison."""
    if isinstance(rhs, str):
        rhs = (rhs,)
    return embedded_dependency_key(lhs, rhs)


def dependency_precision_recall(
    discovered: Iterable[DependencyKey],
    ground_truth: Iterable[DependencyKey],
) -> PrecisionRecall:
    """Compare discovered embedded dependencies against the ground truth."""
    discovered_set = set(discovered)
    truth_set = set(ground_truth)
    true_positives = len(discovered_set & truth_set)
    false_positives = len(discovered_set - truth_set)
    false_negatives = len(truth_set - discovered_set)
    return PrecisionRecall(true_positives, false_positives, false_negatives)


def cell_precision_recall(
    detected: Iterable[CellRef],
    actual_errors: Iterable[CellRef],
) -> PrecisionRecall:
    """Compare detected error cells against the known erroneous cells."""
    detected_set = set(detected)
    actual_set = set(actual_errors)
    true_positives = len(detected_set & actual_set)
    false_positives = len(detected_set - actual_set)
    false_negatives = len(actual_set - detected_set)
    return PrecisionRecall(true_positives, false_positives, false_negatives)


def repair_accuracy(
    repairs: Iterable[tuple[CellRef, str]],
    ground_truth_values: dict[CellRef, str],
) -> float:
    """Fraction of repairs that restore the original (pre-error) value.

    Only repairs applied to genuinely erroneous cells are counted; repairs of
    clean cells are ignored here (they show up as cell-level false positives
    instead).
    """
    relevant = 0
    correct = 0
    for cell, value in repairs:
        if cell not in ground_truth_values:
            continue
        relevant += 1
        if ground_truth_values[cell] == value:
            correct += 1
    if relevant == 0:
        return 0.0
    return correct / relevant
