"""Error detection with PFDs (Section 5.3).

Given a relation and a set of (validated) PFDs, the detector collects every
violation, maps it to the suspect cells, and aggregates the per-cell evidence
into an error report.  When several PFDs disagree about a cell, the cell is
still reported (any violation is evidence of *some* error in the violating
tuple pair), but the proposed repair comes from the constraint with the
strongest support.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Iterable, Optional, Sequence

from ..constraints.base import CellRef, Violation
from ..core.pfd import PFD, prime_for_pfds, prime_partitions_for_pfds
from ..dataset.relation import Relation
from ..engine.backend import resolve_backend
from ..engine.evaluator import PatternEvaluator
from ..engine.parallel import (
    ParallelExecutor,
    _DetectionTask,
    chunk_round_robin,
    resolve_workers,
)


@dataclasses.dataclass(frozen=True)
class DetectedError:
    """One suspected erroneous cell with its evidence."""

    cell: CellRef
    current_value: str
    suggested_value: Optional[str]
    evidence_count: int
    constraints: tuple[str, ...]


@dataclasses.dataclass
class DetectionReport:
    """All errors detected on one relation by one set of PFDs."""

    relation_name: str
    errors: list[DetectedError]
    violations: list[Violation]
    #: Engine backend the evaluation ran on (``"numpy"``/``"python"``); both
    #: produce bit-identical reports — recorded for benchmarks/telemetry.
    backend: str = "python"

    @property
    def error_cells(self) -> set[CellRef]:
        return {error.cell for error in self.errors}

    def errors_in(self, attribute: str) -> list[DetectedError]:
        return [error for error in self.errors if error.cell.attribute == attribute]

    def __len__(self) -> int:
        return len(self.errors)

    def summary(self) -> str:
        lines = [f"{len(self.errors)} suspected errors in {self.relation_name!r}"]
        for error in self.errors[:25]:
            suggestion = (
                f" -> {error.suggested_value!r}" if error.suggested_value is not None else ""
            )
            lines.append(
                f"  {error.cell} = {error.current_value!r}{suggestion} "
                f"({error.evidence_count} violation(s))"
            )
        if len(self.errors) > 25:
            lines.append(f"  ... and {len(self.errors) - 25} more")
        return "\n".join(lines)


class ErrorDetector:
    """Detect cell-level errors by evaluating PFD violations.

    Parameters
    ----------
    pfds:
        The constraints to evaluate (typically validated discovery output).
    min_evidence:
        Minimum number of violations that must implicate a cell before it is
        reported (1 keeps every suspect; higher values trade recall for
        precision when many overlapping PFDs are supplied).
    evaluator:
        Optional shared :class:`PatternEvaluator`; pass the one used during
        discovery so detection reuses its per-distinct-value match cache.
    workers:
        Process-parallel workers for the violation search (see
        :mod:`repro.engine.parallel`).  ``None`` defers to the
        ``REPRO_WORKERS`` environment variable (else 1); 1 runs the serial
        path and never creates a pool.
    executor:
        Optional shared :class:`ParallelExecutor` (a session passes its own
        so detection reuses the pool discovery broadcast to).
    """

    def __init__(
        self,
        pfds: Sequence[PFD],
        min_evidence: int = 1,
        evaluator: Optional[PatternEvaluator] = None,
        workers: Optional[int] = None,
        executor: Optional[ParallelExecutor] = None,
    ):
        self.pfds = list(pfds)
        self.min_evidence = min_evidence
        # Scoped per detector unless the caller shares one (e.g. discovery's).
        self.evaluator = evaluator or PatternEvaluator()
        self.workers = workers
        self.executor = executor

    def detect(
        self,
        relation: Relation,
        since_row: int = 0,
        changed_rows: Optional[Iterable[int]] = None,
    ) -> DetectionReport:
        """Evaluate every PFD and aggregate suspect cells into a report.

        Evaluation is set-at-a-time across the *whole* PFD set: the tableau
        patterns of every PFD touching one column are matched in a single
        shared-DFA batch up front, so sibling PFDs on the same attribute share
        one scan per distinct value instead of one scan each.  The violating
        groups themselves come from the relation's stripped-partition cache,
        primed here once for all tableau rows: two PFDs whose rows share an
        (attribute, pattern) pair locate their groups in the same cached
        equivalence classes.

        ``since_row`` scopes detection to the delta of an append (see
        :meth:`repro.core.pfd.PFD.violations`): the violation search only
        visits appended tuples (constant rows) and equivalence classes
        containing appended rows (variable rows) — a PFD whose tableau-row
        partitions gained nothing in the delta contributes no work beyond
        those per-row early exits.  Suspect cells of a scoped report may
        still reference pre-existing rows: an appended tuple can turn an
        old cell into the minority of its class, and a class an appended
        row joined is re-examined as a whole.

        ``changed_rows`` generalizes the scope to arbitrary CRUD deltas: an
        explicit row-id set (typically
        :attr:`~repro.dataset.mutations.MutationResult.changed_rows`)
        restricts the search to those tuples and the equivalence classes
        currently containing them, regardless of recency.  It takes
        precedence over ``since_row``; an empty set yields an empty report.
        """
        if changed_rows is not None:
            changed_rows = tuple(sorted({int(row_id) for row_id in changed_rows}))
        workers = resolve_workers(self.workers)
        # Out-of-core relations stay serial: their state is a live SQLite
        # connection that cannot be shipped to pool workers.
        if (
            workers > 1
            and len(self.pfds) > 1
            and not getattr(relation, "is_sql_backed", False)
        ):
            all_violations = self._collect_violations_parallel(
                relation, since_row, workers, changed_rows
            )
        else:
            all_violations = self._collect_violations(relation, since_row, changed_rows)
        evidence: dict[CellRef, list[Violation]] = defaultdict(list)
        for violation in all_violations:
            for cell in violation.suspect_cells:
                evidence[cell].append(violation)

        errors: list[DetectedError] = []
        for cell, cell_violations in sorted(evidence.items()):
            if len(cell_violations) < self.min_evidence:
                continue
            suggestion = self._best_suggestion(cell_violations)
            errors.append(
                DetectedError(
                    cell=cell,
                    current_value=relation.cell(cell.row_id, cell.attribute),
                    suggested_value=suggestion,
                    evidence_count=len(cell_violations),
                    constraints=tuple(
                        dict.fromkeys(v.constraint_repr for v in cell_violations)
                    ),
                )
            )
        return DetectionReport(
            relation_name=relation.name,
            errors=errors,
            violations=all_violations,
            backend=resolve_backend(relation.backend),
        )

    def _collect_violations(
        self,
        relation: Relation,
        since_row: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """The serial violation search: prime once, then one pass per PFD."""
        prime_for_pfds(relation, self.pfds, self.evaluator)
        prime_partitions_for_pfds(relation, self.pfds, self.evaluator)
        all_violations: list[Violation] = []
        for pfd in self.pfds:
            all_violations.extend(
                pfd.violations(
                    relation,
                    evaluator=self.evaluator,
                    since_row=since_row,
                    changed_rows=changed_rows,
                )
            )
        return all_violations

    def _collect_violations_parallel(
        self,
        relation: Relation,
        since_row: int,
        workers: int,
        changed_rows: Optional[tuple[int, ...]] = None,
    ) -> list[Violation]:
        """Shard the PFDs across the worker pool and merge in serial order.

        PFDs are grouped by their LHS attributes before chunking, so PFDs
        sharing tableau-row partitions land on the same worker and reuse one
        cached equivalence-class build, mirroring the sharing the serial
        ``prime_partitions_for_pfds`` pass exploits.  Each PFD's violation
        list is independent of its neighbors, so reassembling the per-PFD
        lists by original position reproduces the serial violation order
        bit for bit.
        """
        executor = self.executor
        owned = executor is None
        if owned:
            executor = ParallelExecutor(workers)
        try:
            group_index: dict[tuple[str, ...], int] = {}
            groups: list[list[int]] = []
            for position, pfd in enumerate(self.pfds):
                key = tuple(pfd.lhs)
                index = group_index.get(key)
                if index is None:
                    group_index[key] = index = len(groups)
                    groups.append([])
                groups[index].append(position)
            tasks = [
                _DetectionTask(
                    positions=tuple(positions),
                    pfds=tuple(self.pfds[position] for position in positions),
                    since_row=since_row,
                    changed_rows=changed_rows,
                )
                for chunk in chunk_round_robin(groups, workers * 2)
                for positions in [[p for group in chunk for p in group]]
            ]
            violations_by_position: dict[int, list[Violation]] = {}
            for task_result in executor.run_tasks(relation, "detect", tasks, stage="detect"):
                for position, violations in task_result:
                    violations_by_position[position] = violations
            return [
                violation
                for position in range(len(self.pfds))
                for violation in violations_by_position[position]
            ]
        finally:
            if owned:
                executor.close()

    @staticmethod
    def _best_suggestion(violations: Iterable[Violation]) -> Optional[str]:
        """Majority vote over the expected values proposed by the violations."""
        counts: dict[str, int] = defaultdict(int)
        for violation in violations:
            if violation.expected_value is not None:
                counts[violation.expected_value] += 1
        if not counts:
            return None
        value, _ = max(counts.items(), key=lambda item: (item[1], item[0]))
        return value


def detect_errors(
    relation: Relation,
    pfds: Sequence[PFD],
    min_evidence: int = 1,
    evaluator: Optional[PatternEvaluator] = None,
    workers: Optional[int] = None,
) -> DetectionReport:
    """Convenience wrapper: detection through a throwaway
    :class:`~repro.session.CleaningSession`.

    Callers running more than one pipeline stage on the same relation
    should hold a session instead, so discovery, detection, and repair
    share one evaluator and one partition cache (and, with ``workers > 1``,
    one broadcast worker pool).
    """
    from ..session import CleaningSession  # local import: session sits above

    session = CleaningSession(relation, evaluator=evaluator, workers=workers)
    try:
        return session.detect(pfds, min_evidence=min_evidence)
    finally:
        session.close()
