"""Data cleaning with PFDs: error injection, detection, repair, and the
precision/recall evaluation harness (Section 5.3 of the paper)."""

from .detector import DetectedError, DetectionReport, ErrorDetector, detect_errors
from .evaluation import (
    PrecisionRecall,
    cell_precision_recall,
    dependency_precision_recall,
    normalize_dependency,
    repair_accuracy,
)
from .injection import (
    InjectedError,
    InjectionResult,
    inject_errors,
    inject_errors_multi,
)
from .repair import Repair, RepairResult, Repairer, repair_errors

__all__ = [
    "DetectedError",
    "DetectionReport",
    "ErrorDetector",
    "detect_errors",
    "PrecisionRecall",
    "cell_precision_recall",
    "dependency_precision_recall",
    "normalize_dependency",
    "repair_accuracy",
    "InjectedError",
    "InjectionResult",
    "inject_errors",
    "inject_errors_multi",
    "Repair",
    "RepairResult",
    "Repairer",
    "repair_errors",
]
