"""Explainable repair of detected errors.

Section 4.5 of the paper motivates PFDs with *automatic and explainable
repairs*: each repair is justified by the violated PFD row, so a human can
audit it.  The repairer applies the suggestions produced by the detector
(majority / constant-RHS values) and records, for every change, which
constraint demanded it — the "ETL rule"-style explanation the paper asks for.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..constraints.base import CellRef
from ..core.pfd import PFD
from ..dataset.relation import Relation
from ..engine.evaluator import PatternEvaluator
from .detector import DetectionReport, ErrorDetector


@dataclasses.dataclass(frozen=True)
class Repair:
    """One applied (or proposed) repair with its justification."""

    cell: CellRef
    old_value: str
    new_value: str
    justification: tuple[str, ...]


@dataclasses.dataclass
class RepairResult:
    """The repaired relation and the log of changes."""

    relation: Relation
    repairs: list[Repair]
    unresolved: list[CellRef]
    #: Suspect cells still flagged after re-detection (``verify=True`` only).
    remaining_error_cells: Optional[frozenset[CellRef]] = None

    @property
    def repaired_cells(self) -> set[CellRef]:
        return {repair.cell for repair in self.repairs}

    def summary(self) -> str:
        lines = [
            f"{len(self.repairs)} repairs applied, {len(self.unresolved)} cells "
            "flagged without a confident repair"
        ]
        for repair in self.repairs[:25]:
            lines.append(
                f"  {repair.cell}: {repair.old_value!r} -> {repair.new_value!r} "
                f"(by {repair.justification[0]})"
            )
        if len(self.repairs) > 25:
            lines.append(f"  ... and {len(self.repairs) - 25} more")
        return "\n".join(lines)


class Repairer:
    """Apply PFD-derived repairs to a relation.

    Parameters
    ----------
    pfds:
        Constraints to enforce.
    min_evidence:
        Forwarded to :class:`~repro.cleaning.detector.ErrorDetector`.
    dry_run:
        When True the input relation is left untouched and the proposed
        repairs are only reported.
    verify:
        When True (and not a dry run), the repaired relation is re-detected
        and the still-flagged suspect cells are reported in
        :attr:`RepairResult.remaining_error_cells`.  Each applied repair
        invalidates only the touched attribute's cached partitions, so the
        re-detection regroups exactly the mutated columns and reuses the
        rest of the shared equivalence classes.
    workers:
        Forwarded to the internal :class:`ErrorDetector` passes (detection
        and verification).  ``None`` defers to ``REPRO_WORKERS``.
    """

    def __init__(
        self,
        pfds: Sequence[PFD],
        min_evidence: int = 1,
        dry_run: bool = False,
        evaluator: Optional[PatternEvaluator] = None,
        verify: bool = False,
        workers: Optional[int] = None,
    ):
        self.pfds = list(pfds)
        self.min_evidence = min_evidence
        self.dry_run = dry_run
        self.evaluator = evaluator
        self.verify = verify
        self.workers = workers

    def repair(
        self, relation: Relation, report: Optional[DetectionReport] = None
    ) -> RepairResult:
        """Detect (unless a report is supplied) and apply repairs."""
        if report is None:
            report = ErrorDetector(
                self.pfds, min_evidence=self.min_evidence, evaluator=self.evaluator,
                workers=self.workers,
            ).detect(relation)
        target = relation if self.dry_run else relation.copy()
        repairs: list[Repair] = []
        unresolved: list[CellRef] = []
        for error in report.errors:
            if error.suggested_value is None or error.suggested_value == error.current_value:
                unresolved.append(error.cell)
                continue
            if not self.dry_run:
                target.set_cell(error.cell.row_id, error.cell.attribute, error.suggested_value)
            repairs.append(
                Repair(
                    cell=error.cell,
                    old_value=error.current_value,
                    new_value=error.suggested_value,
                    justification=error.constraints,
                )
            )
        remaining: Optional[frozenset[CellRef]] = None
        if self.verify and not self.dry_run:
            verification = ErrorDetector(
                self.pfds, min_evidence=self.min_evidence, evaluator=self.evaluator,
                workers=self.workers,
            ).detect(target)
            remaining = frozenset(verification.error_cells)
        return RepairResult(
            relation=target,
            repairs=repairs,
            unresolved=unresolved,
            remaining_error_cells=remaining,
        )


def repair_errors(
    relation: Relation,
    pfds: Sequence[PFD],
    min_evidence: int = 1,
    evaluator: Optional[PatternEvaluator] = None,
    verify: bool = False,
) -> RepairResult:
    """Convenience wrapper: repair through a throwaway
    :class:`~repro.session.CleaningSession`.

    ``verify`` defaults to False here for backwards compatibility; the
    session's :meth:`~repro.session.CleaningSession.repair` defaults to
    True.  Callers running more than one pipeline stage on the same
    relation should hold a session instead.
    """
    from ..session import CleaningSession  # local import: session sits above

    return CleaningSession(relation, evaluator=evaluator).repair(
        pfds, min_evidence=min_evidence, verify=verify
    )
