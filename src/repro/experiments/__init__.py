"""Experiment runners that regenerate every table and figure of the paper's
evaluation section (see DESIGN.md for the experiment index)."""

from .efficiency import EfficiencyPoint, EfficiencyResult, run_efficiency
from .figures import (
    DEFAULT_ERROR_RATES,
    DEFAULT_NOISE_RATIOS,
    DEFAULT_SUPPORTS,
    FigureResult,
    SweepPoint,
    evaluate_point,
    run_figure,
    run_figure5,
    run_figure6,
)
from .table3 import DependencyShowcase, Table3Result, run_table3
from .table7 import (
    ErrorDetectionRow,
    MethodRow,
    Table7Result,
    TableResult,
    evaluate_table,
    run_table7,
)
from .table8 import Table8Result, Table8Row, run_table8
from .reporting import format_percent, format_seconds, format_table

__all__ = [
    "EfficiencyPoint",
    "EfficiencyResult",
    "run_efficiency",
    "DEFAULT_ERROR_RATES",
    "DEFAULT_NOISE_RATIOS",
    "DEFAULT_SUPPORTS",
    "FigureResult",
    "SweepPoint",
    "evaluate_point",
    "run_figure",
    "run_figure5",
    "run_figure6",
    "DependencyShowcase",
    "Table3Result",
    "run_table3",
    "ErrorDetectionRow",
    "MethodRow",
    "Table7Result",
    "TableResult",
    "evaluate_table",
    "run_table7",
    "Table8Result",
    "Table8Row",
    "run_table8",
    "format_percent",
    "format_seconds",
    "format_table",
]
