"""Table 3 reproduction: qualitative examples of real-world PFDs and the
errors they uncover.

Table 3 of the paper lists, for four embedded dependencies (phone -> state,
full name -> gender, zip -> city, zip -> state), a few representative PFD
tableau rows together with concrete erroneous tuples they flag.  The runner
builds the corresponding synthetic tables with a sprinkle of typos /
swapped values, discovers PFDs, and reports sample tableau rows and the
errors detected with them — the same qualitative evidence as the paper's
table.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..datagen.generators import (
    build_gov_contacts,
    build_name_gender_table,
    build_udw_alumni,
)
from ..discovery.config import DiscoveryConfig
from ..session import CleaningSession
from .reporting import format_table


@dataclasses.dataclass
class DependencyShowcase:
    """Sample PFDs and detected errors for one embedded dependency."""

    dependency: str
    sample_patterns: list[str]
    detected_errors: list[str]
    detected_count: int
    true_error_count: int


@dataclasses.dataclass
class Table3Result:
    showcases: list[DependencyShowcase]

    def render(self) -> str:
        rows = []
        for showcase in self.showcases:
            patterns = "; ".join(showcase.sample_patterns[:3]) or "-"
            errors = "; ".join(showcase.detected_errors[:3]) or "-"
            rows.append([
                showcase.dependency,
                patterns,
                errors,
                f"{showcase.detected_count}/{showcase.true_error_count}",
            ])
        headers = ["Dependency", "Pattern tableau (sample)", "Errors (sample)", "detected/true"]
        return format_table(headers, rows, title="Table 3 — Real-world PFDs and errors")


def _showcase(
    table,
    lhs: str,
    rhs: str,
    dependency_name: str,
    config: Optional[DiscoveryConfig] = None,
    max_samples: int = 5,
) -> DependencyShowcase:
    config = config or DiscoveryConfig(min_support=4, noise_ratio=0.05, min_coverage=0.05)
    relation = table.relation
    # One session per showcase: detection below reuses the caches primed here.
    session = CleaningSession(relation, config=config.with_overrides(generalize=False))
    result = session.discover()
    dependency = result.dependency_for((lhs,), rhs)
    patterns: list[str] = []
    detected: list[str] = []
    detected_count = 0
    if dependency is not None:
        for row in dependency.pfd.tableau.rows[:max_samples]:
            patterns.append(row.render((lhs,), (rhs,)))
        report = session.detect([dependency.pfd])
        detected_count = len(report.errors)
        for error in report.errors[:max_samples]:
            row_values = relation.row_dict(error.cell.row_id)
            detected.append(
                f"{row_values[lhs]} — {row_values[rhs]}"
                + (f" (should be {error.suggested_value})" if error.suggested_value else "")
            )
    return DependencyShowcase(
        dependency=dependency_name,
        sample_patterns=patterns,
        detected_errors=detected,
        detected_count=detected_count,
        true_error_count=len(table.error_cells),
    )


def run_table3(scale: float = 1.0) -> Table3Result:
    """Reproduce the qualitative Table 3 on the synthetic counterparts."""
    contacts = build_gov_contacts(rows=max(300, int(800 * scale)), dirt_rate=0.02)
    names = build_name_gender_table(rows=max(300, int(600 * scale)), dirt_rate=0.02)
    alumni = build_udw_alumni(rows=max(300, int(800 * scale)), dirt_rate=0.02)
    showcases = [
        _showcase(contacts, "phone", "state", "Phone Number -> State"),
        _showcase(names, "full_name", "gender", "Full Name -> Gender"),
        _showcase(alumni, "zip", "city", "ZIP -> CITY"),
        _showcase(alumni, "zip", "state", "ZIP -> STATE"),
    ]
    return Table3Result(showcases=showcases)
