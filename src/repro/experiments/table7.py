"""Table 7 reproduction: PFD vs FDep vs CFDFinder discovery quality, runtime,
and PFD-based error detection, over the 15-table suite.

For every table the runner reports, per method,

* the number of discovered *embedded dependencies*,
* precision and recall against the generator's ground truth,
* the discovery runtime,

plus (PFD only) the number of variable PFDs, the multi-LHS runtime, and the
error-detection row pair (#errors detected, cell-level precision).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional, Sequence

from ..cleaning.evaluation import cell_precision_recall, dependency_precision_recall
from ..datagen.generators import GeneratedTable
from ..datagen.suite import benchmark_suite
from ..discovery.cfdfinder import CFDFinder
from ..discovery.config import DiscoveryConfig
from ..discovery.fdep import FDepDiscoverer
from ..discovery.pfd_discovery import PFDDiscoverer
from ..session import CleaningSession
from .reporting import format_percent, format_table


@dataclasses.dataclass
class MethodRow:
    """Per-method metrics for one table (rows 1-13 of Table 7)."""

    method: str
    dependency_count: int
    precision: float
    recall: float
    runtime_seconds: float
    variable_count: int = 0


@dataclasses.dataclass
class ErrorDetectionRow:
    """PFD error-detection metrics for one table (rows 15-16 of Table 7)."""

    detected_errors: int
    true_errors: int
    precision: float
    recall: float


@dataclasses.dataclass
class TableResult:
    """All Table-7 metrics for one of the 15 tables."""

    table_id: str
    table_name: str
    column_count: int
    row_count: int
    fdep: MethodRow
    cfd: MethodRow
    pfd: MethodRow
    multi_lhs_runtime_seconds: float
    error_detection: ErrorDetectionRow


@dataclasses.dataclass
class Table7Result:
    """The full reproduction of Table 7."""

    tables: list[TableResult]

    def average_pfd_precision(self) -> float:
        return _mean([table.pfd.precision for table in self.tables])

    def average_pfd_recall(self) -> float:
        return _mean([table.pfd.recall for table in self.tables])

    def average_detection_precision(self) -> float:
        rows = [t.error_detection for t in self.tables if t.error_detection.detected_errors]
        return _mean([row.precision for row in rows])

    def render(self) -> str:
        headers = [
            "Table", "Cols", "Rows",
            "FDep#", "FDep P", "FDep R", "FDep t",
            "CFD#", "CFD P", "CFD R", "CFD t",
            "PFD#", "PFD var", "PFD P", "PFD R", "PFD t", "Multi t",
            "#Err", "Err P",
        ]
        rows = []
        for table in self.tables:
            rows.append([
                table.table_id, table.column_count, table.row_count,
                table.fdep.dependency_count, format_percent(table.fdep.precision),
                format_percent(table.fdep.recall), f"{table.fdep.runtime_seconds:.2f}",
                table.cfd.dependency_count, format_percent(table.cfd.precision),
                format_percent(table.cfd.recall), f"{table.cfd.runtime_seconds:.2f}",
                table.pfd.dependency_count, table.pfd.variable_count,
                format_percent(table.pfd.precision), format_percent(table.pfd.recall),
                f"{table.pfd.runtime_seconds:.2f}", f"{table.multi_lhs_runtime_seconds:.2f}",
                table.error_detection.detected_errors,
                format_percent(table.error_detection.precision),
            ])
        summary = (
            f"\nAverages: PFD precision={format_percent(self.average_pfd_precision())}, "
            f"PFD recall={format_percent(self.average_pfd_recall())}, "
            f"error-detection precision={format_percent(self.average_detection_precision())}"
        )
        return format_table(headers, rows, title="Table 7 — PFD vs CFD/FD discovery") + summary


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def evaluate_table(
    table: GeneratedTable,
    config: Optional[DiscoveryConfig] = None,
    run_multi_lhs: bool = True,
) -> TableResult:
    """Compute every Table-7 metric for one generated table."""
    config = config or DiscoveryConfig(min_support=5, noise_ratio=0.05, min_coverage=0.10)
    relation = table.relation
    truth = table.true_dependencies

    fdep_discoverer = FDepDiscoverer(max_lhs_size=1, max_violation_ratio=0.005, exclude_keys=False)
    fdep_result = fdep_discoverer.discover(relation)
    fdep_pr = dependency_precision_recall(fdep_result.dependency_keys, truth)
    fdep_row = MethodRow(
        method="FDep",
        dependency_count=len(fdep_result.fds),
        precision=fdep_pr.precision,
        recall=fdep_pr.recall,
        runtime_seconds=fdep_result.runtime_seconds,
    )

    cfd_finder = CFDFinder(confidence=0.995, min_support=config.min_support,
                           min_coverage=config.min_coverage, max_lhs_size=1)
    cfd_result = cfd_finder.discover(relation)
    cfd_pr = dependency_precision_recall(cfd_result.dependency_keys, truth)
    cfd_row = MethodRow(
        method="CFDFinder",
        dependency_count=len(cfd_result.cfds),
        precision=cfd_pr.precision,
        recall=cfd_pr.recall,
        runtime_seconds=cfd_result.runtime_seconds,
    )

    # One session carries PFD discovery *and* the downstream error detection
    # (rows 15-16): detection reuses the evaluator and partition state that
    # discovery primed instead of re-priming from scratch.
    session = CleaningSession(relation, config=config)
    pfd_result = session.discover()
    pfd_pr = dependency_precision_recall(pfd_result.dependency_keys, truth)
    pfd_row = MethodRow(
        method="PFD",
        dependency_count=len(pfd_result.dependencies),
        precision=pfd_pr.precision,
        recall=pfd_pr.recall,
        runtime_seconds=pfd_result.runtime_seconds,
        variable_count=pfd_result.variable_count,
    )

    multi_runtime = pfd_result.runtime_seconds
    if run_multi_lhs:
        start = time.perf_counter()
        PFDDiscoverer(config.with_overrides(max_lhs_size=2)).discover(relation)
        multi_runtime = time.perf_counter() - start

    # Error detection (rows 15-16): validated PFDs are simulated by keeping
    # only the discovered dependencies that match the ground truth, exactly as
    # the paper "manually validated the dependencies and used the PFDs of
    # each validated dependency to detect errors".
    validated = [
        dependency.pfd
        for dependency in pfd_result.dependencies
        if dependency.key in truth
    ]
    report = session.detect(validated)
    detection_pr = cell_precision_recall(report.error_cells, table.error_cells.keys())
    detection_row = ErrorDetectionRow(
        detected_errors=len(report.errors),
        true_errors=len(table.error_cells),
        precision=detection_pr.precision,
        recall=detection_pr.recall,
    )

    return TableResult(
        table_id=table.name,
        table_name=relation.name,
        column_count=table.column_count,
        row_count=table.row_count,
        fdep=fdep_row,
        cfd=cfd_row,
        pfd=pfd_row,
        multi_lhs_runtime_seconds=multi_runtime,
        error_detection=detection_row,
    )


def run_table7(
    scale: float = 1.0,
    config: Optional[DiscoveryConfig] = None,
    table_ids: Optional[tuple[str, ...]] = None,
    run_multi_lhs: bool = True,
) -> Table7Result:
    """Reproduce Table 7 over the (possibly scaled-down) 15-table suite."""
    suite = benchmark_suite(scale=scale, table_ids=table_ids)
    tables = [
        evaluate_table(table, config=config, run_multi_lhs=run_multi_lhs)
        for table in suite.values()
    ]
    return Table7Result(tables=tables)
