"""Table 8 reproduction: precision and coverage of discovered PFDs for the
three manually validated dependencies — Full Name -> Gender, Fax -> State,
and Zip -> City.

The paper validated each constant PFD against an external web service
(gender-api.com, a fax area-code registry, and the uszipcode package).  The
synthetic generators ship the equivalent ground-truth mappings as oracles, so
the validation is automated here: a constant PFD row is *correct* when the
oracle maps its constrained LHS constant to exactly the RHS constant the row
asserts.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..datagen import pools
from ..datagen.generators import (
    build_gov_facilities,
    build_name_gender_table,
    build_udw_alumni,
)
from ..discovery.config import DiscoveryConfig
from ..discovery.pfd_discovery import PFDDiscoverer
from ..discovery.selection import ValidationReport, validate_against_oracle
from .reporting import format_percent, format_table


@dataclasses.dataclass
class Table8Row:
    """One row of Table 8."""

    dependency: str
    pfd_count: int
    precision: float
    coverage: float


@dataclasses.dataclass
class Table8Result:
    rows: list[Table8Row]

    def render(self) -> str:
        headers = ["Dependency", "# PFDs", "Precision", "Coverage"]
        rendered = [
            [row.dependency, row.pfd_count, format_percent(row.precision), format_percent(row.coverage)]
            for row in self.rows
        ]
        return format_table(headers, rendered, title="Table 8 — Precision and coverage of discovered PFDs")


def _normalized_oracle(mapping: dict[str, str]):
    """Oracle that ignores trailing separators and case of the lookup key."""
    lowered = {key.lower(): value for key, value in mapping.items()}

    def oracle(key: str) -> Optional[str]:
        stripped = key.strip(" ,.-").lower()
        if stripped in lowered:
            return lowered[stripped]
        # Zip / fax prefixes: try successively shorter digit prefixes.
        digits = "".join(ch for ch in stripped if ch.isdigit())
        for length in range(len(digits), 2, -1):
            if digits[:length] in lowered:
                return lowered[digits[:length]]
        return None

    return oracle


def _validate(
    dependency_name: str,
    table_relation,
    lhs: str,
    rhs: str,
    oracle_mapping: dict[str, str],
    config: DiscoveryConfig,
) -> ValidationReport:
    result = PFDDiscoverer(config.with_overrides(generalize=False)).discover(table_relation)
    dependency = result.dependency_for((lhs,), rhs)
    if dependency is None:
        return ValidationReport(
            dependency_name=dependency_name,
            pfd_count=0,
            correct_count=0,
            covered_rows=0,
            total_rows=table_relation.row_count,
        )
    return validate_against_oracle(
        dependency.pfd,
        table_relation,
        _normalized_oracle(oracle_mapping),
        dependency_name=dependency_name,
    )


def run_table8(scale: float = 1.0, config: Optional[DiscoveryConfig] = None) -> Table8Result:
    """Reproduce Table 8: validate the constant PFDs of three dependencies."""
    config = config or DiscoveryConfig(min_support=5, noise_ratio=0.05, min_coverage=0.10)

    name_table = build_name_gender_table(rows=max(200, int(600 * scale)), dirt_rate=0.01)
    fax_table = build_gov_facilities(rows=max(200, int(500 * scale)))
    zip_table = build_udw_alumni(rows=max(200, int(800 * scale)))

    reports = [
        _validate(
            "Full Name -> Gender",
            name_table.relation,
            "full_name",
            "gender",
            pools.first_name_gender_oracle(),
            config,
        ),
        _validate(
            "Fax -> State",
            fax_table.relation,
            "fax",
            "state",
            pools.area_code_state_oracle(),
            config,
        ),
        _validate(
            "Zip -> City",
            zip_table.relation,
            "zip",
            "city",
            pools.zip_prefix_city_oracle(),
            config,
        ),
    ]
    rows = [
        Table8Row(
            dependency=report.dependency_name,
            pfd_count=report.pfd_count,
            precision=report.precision,
            coverage=report.coverage,
        )
        for report in reports
    ]
    return Table8Result(rows=rows)
