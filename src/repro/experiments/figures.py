"""Figures 5 and 6 reproduction: controlled error injection on Zip -> State.

The protocol of Section 5.3:

1. start from a clean Zip -> State table,
2. inject errors into the State attribute at rates 1 %, 2 %, ..., 10 %,
   drawing the wrong values either from *outside* the active domain
   (Figure 5) or from the active domain itself (Figure 6),
3. run PFD discovery **on the dirty table** for minimum support
   K ∈ {2, 4, 6} and allowed-noise δ ∈ {1 %, 4 %, 7 %},
4. use the discovered Zip -> State PFDs to detect the injected cells and
   report cell-level precision and recall.

Expected shapes (paper): precision rises with K while recall falls; larger δ
trades precision for recall (except at large K); higher error rates depress
recall; the active-domain curves track the outside-domain ones closely.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..cleaning.evaluation import cell_precision_recall
from ..cleaning.injection import inject_errors
from ..datagen.generators import build_zip_state_table
from ..discovery.config import DiscoveryConfig
from ..session import CleaningSession
from .reporting import format_table


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a Figure 5/6 curve."""

    error_rate: float
    min_support: int
    noise_ratio: float
    precision: float
    recall: float
    detected: int
    injected: int


@dataclasses.dataclass
class FigureResult:
    """All points of one figure (one injection mode)."""

    mode: str
    points: list[SweepPoint]

    def series(self, min_support: int, noise_ratio: float) -> list[SweepPoint]:
        """One curve: fixed K and δ, varying error rate."""
        return sorted(
            (
                point
                for point in self.points
                if point.min_support == min_support
                and abs(point.noise_ratio - noise_ratio) < 1e-9
            ),
            key=lambda point: point.error_rate,
        )

    def render(self) -> str:
        headers = ["error rate", "K", "delta", "precision", "recall", "#detected", "#injected"]
        rows = [
            [
                f"{point.error_rate:.2f}",
                point.min_support,
                f"{point.noise_ratio:.2f}",
                point.precision,
                point.recall,
                point.detected,
                point.injected,
            ]
            for point in sorted(
                self.points, key=lambda p: (p.min_support, p.noise_ratio, p.error_rate)
            )
        ]
        title = (
            "Figure 5 — injected errors from outside the active domain"
            if self.mode == "outside"
            else "Figure 6 — injected errors from the active domain"
        )
        return format_table(headers, rows, title=title)


#: Parameter grid used by the paper.
DEFAULT_ERROR_RATES: tuple[float, ...] = (0.01, 0.02, 0.04, 0.06, 0.08, 0.10)
DEFAULT_SUPPORTS: tuple[int, ...] = (2, 4, 6)
DEFAULT_NOISE_RATIOS: tuple[float, ...] = (0.01, 0.04, 0.07)

#: Replacement values for "outside the active domain" injection: state codes
#: that the generator never emits for this table.
_OUTSIDE_STATE_POOL: tuple[str, ...] = ("OK", "SC", "MI", "MN", "WI", "MO", "KY", "AL", "VT", "ME")


def evaluate_point(
    clean_relation,
    attribute: str,
    error_rate: float,
    mode: str,
    min_support: int,
    noise_ratio: float,
    seed: int = 0,
    target_dependency: Optional[tuple[str, str]] = ("zip", "state"),
) -> SweepPoint:
    """Inject, discover on the dirty table, detect, and score one grid point."""
    injection = inject_errors(
        clean_relation,
        attribute,
        error_rate,
        mode=mode,
        seed=seed,
        outside_pool=_OUTSIDE_STATE_POOL,
    )
    dirty = injection.relation
    config = DiscoveryConfig(
        min_support=min_support,
        noise_ratio=noise_ratio,
        min_coverage=0.05,
    )
    # Discovery and detection on the dirty table share one session state.
    session = CleaningSession(dirty, config=config)
    result = session.discover()
    if target_dependency is not None:
        lhs, rhs = target_dependency
        dependency = result.dependency_for((lhs,), rhs)
        pfds = [dependency.pfd] if dependency is not None else []
    else:
        pfds = result.pfds
    report = session.detect(pfds)
    detected_cells = {cell for cell in report.error_cells if cell.attribute == attribute}
    metrics = cell_precision_recall(detected_cells, injection.error_cells)
    return SweepPoint(
        error_rate=error_rate,
        min_support=min_support,
        noise_ratio=noise_ratio,
        precision=metrics.precision,
        recall=metrics.recall,
        detected=len(detected_cells),
        injected=len(injection.errors),
    )


def run_figure(
    mode: str,
    rows: int = 920,
    error_rates: Sequence[float] = DEFAULT_ERROR_RATES,
    supports: Sequence[int] = DEFAULT_SUPPORTS,
    noise_ratios: Sequence[float] = DEFAULT_NOISE_RATIOS,
    seed: int = 42,
) -> FigureResult:
    """Run the full sweep for one injection mode (``"outside"`` or ``"active"``)."""
    table = build_zip_state_table(rows=rows, seed=seed)
    clean = table.relation
    points: list[SweepPoint] = []
    for min_support in supports:
        for noise_ratio in noise_ratios:
            for error_rate in error_rates:
                points.append(
                    evaluate_point(
                        clean,
                        "state",
                        error_rate,
                        mode,
                        min_support,
                        noise_ratio,
                        seed=seed + int(error_rate * 1000),
                    )
                )
    return FigureResult(mode=mode, points=points)


def run_figure5(**kwargs) -> FigureResult:
    """Figure 5: injected errors drawn from outside the active domain."""
    return run_figure("outside", **kwargs)


def run_figure6(**kwargs) -> FigureResult:
    """Figure 6: injected errors drawn from the active domain."""
    return run_figure("active", **kwargs)
