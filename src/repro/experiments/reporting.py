"""Small formatting helpers shared by the experiment runners.

Every experiment produces plain Python data (lists of dataclasses / dicts);
these helpers render them as fixed-width text tables so the benchmark harness
can print rows directly comparable to the paper's tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    rendered_rows = [[_render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """``0.784`` becomes ``"78.4%"`` (the paper reports percentages)."""
    return f"{100.0 * value:.1f}%"


def format_seconds(value: float) -> str:
    return f"{value:.2f}s"


def format_mapping(mapping: Mapping[str, object], indent: str = "  ") -> str:
    """Key/value listing used for experiment metadata blocks."""
    return "\n".join(f"{indent}{key}: {value}" for key, value in mapping.items())


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
