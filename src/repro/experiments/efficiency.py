"""Efficiency study (Section 5.4): discovery runtime as the table grows.

The paper's qualitative claim is an ordering — FDep is faster than
CFDFinder, which is faster than single-LHS PFD discovery, which is faster
than multi-LHS PFD discovery — while all stay "reasonable".  The runner
measures all four on increasingly large instances of the same generated
table and reports the series; the benchmark harness asserts the ordering.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from ..datagen.generators import build_udw_alumni
from ..discovery.cfdfinder import CFDFinder
from ..discovery.config import DiscoveryConfig
from ..discovery.fdep import FDepDiscoverer
from ..session import CleaningSession
from .reporting import format_table


@dataclasses.dataclass(frozen=True)
class EfficiencyPoint:
    """Runtimes (seconds) of the four methods at one table size."""

    rows: int
    fdep_seconds: float
    cfd_seconds: float
    pfd_seconds: float
    pfd_multi_seconds: float


@dataclasses.dataclass
class EfficiencyResult:
    points: list[EfficiencyPoint]

    def render(self) -> str:
        headers = ["rows", "FDep (s)", "CFDFinder (s)", "PFD (s)", "PFD multi-LHS (s)"]
        rows = [
            [point.rows, point.fdep_seconds, point.cfd_seconds, point.pfd_seconds, point.pfd_multi_seconds]
            for point in self.points
        ]
        return format_table(headers, rows, title="Section 5.4 — discovery runtime scaling")


def run_efficiency(
    row_counts: Sequence[int] = (250, 500, 1000, 2000),
    seed: int = 21,
    config: DiscoveryConfig | None = None,
) -> EfficiencyResult:
    """Measure discovery runtimes over growing instances of the alumni table."""
    config = config or DiscoveryConfig(min_support=5, noise_ratio=0.05, min_coverage=0.10)
    points: list[EfficiencyPoint] = []
    for rows in row_counts:
        table = build_udw_alumni(rows=rows, seed=seed)
        relation = table.relation

        start = time.perf_counter()
        FDepDiscoverer(max_lhs_size=1, max_violation_ratio=0.005).discover(relation)
        fdep_seconds = time.perf_counter() - start

        start = time.perf_counter()
        CFDFinder(confidence=0.995, min_support=config.min_support).discover(relation)
        cfd_seconds = time.perf_counter() - start

        # Both PFD rows run through one session: the multi-LHS pass reuses
        # the evaluator and the level-1 partitions primed by the single-LHS
        # pass (the same caches a real caller would share).  Pinned serial —
        # the reported ordering is a property of the algorithms, and pool
        # overhead on the small instances would distort it under
        # REPRO_WORKERS.
        session = CleaningSession(relation, workers=1)
        start = time.perf_counter()
        session.discover(config)
        pfd_seconds = time.perf_counter() - start

        start = time.perf_counter()
        session.discover(config.with_overrides(max_lhs_size=2))
        pfd_multi_seconds = time.perf_counter() - start

        points.append(
            EfficiencyPoint(
                rows=rows,
                fdep_seconds=fdep_seconds,
                cfd_seconds=cfd_seconds,
                pfd_seconds=pfd_seconds,
                pfd_multi_seconds=pfd_multi_seconds,
            )
        )
    return EfficiencyResult(points=points)
