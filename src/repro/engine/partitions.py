"""Stripped partitions (position list indexes) over dictionary-encoded columns.

A *partition* of a relation groups tuple ids into equivalence classes: two
rows belong to the same class when they agree on the grouping key.  TANE
(Huhtala et al.) made two observations that this module adopts wholesale:

* classes of size one can never witness a violation of a functional
  dependency, so they are **stripped** — dropped from the representation;
* the partition of a multi-attribute set ``{A, B}`` is the *product* of the
  single-attribute partitions, computable from the stripped classes alone —
  it never has to be re-grouped from the raw rows.

The pattern twist of this library adds a third kind of grouping key: the
*extracted constrained part* of a tableau pattern.  A pattern-projected
partition groups the rows whose value matches the pattern by that part, and
is seeded from the engine's memoized per-distinct-value matches
(:meth:`~repro.engine.evaluator.PatternEvaluator.match_column`, itself fed by
the shared-DFA :class:`~repro.engine.evaluator.ColumnMatchSet` masks), so
building one costs no pattern matching beyond what the evaluator already
cached.

Two class representations, one partition object
-----------------------------------------------

A :class:`StrippedPartition` stores its classes either as

* a tuple of row-id tuples (the ``python`` backend's native form), or
* a ``(sorted_rowids, class_offsets)`` pair of ``int64`` ndarrays (the
  ``numpy`` backend's native form): ``rowids[offsets[i]:offsets[i+1]]`` is
  class ``i``, rows ascending within a class, classes ordered by their
  smallest member.

Each representation is derived lazily from the other, so every existing
consumer of ``partition.classes`` keeps working regardless of backend while
the partition algebra — :meth:`~StrippedPartition.intersect` (sort/group
over packed class-pair keys instead of a Python probe-table dict),
:meth:`~StrippedPartition.refines`, :meth:`~StrippedPartition.refines_codes`,
:meth:`~StrippedPartition.minority_rows`, ``error`` — runs vectorized on the
numpy backend.  Which backend a partition uses follows the backend of the
dictionary column it was built from (see :mod:`repro.engine.backend`).

Three partition sources, one cache
----------------------------------

:class:`PartitionManager` — created lazily per relation via
:meth:`repro.dataset.relation.Relation.partitions` and invalidated on
mutation exactly like the dictionary cache — memoizes:

(a) **attribute partitions**, grouped straight off the dictionary codes;
(b) **pattern-projected partitions**, keyed by ``(attribute, pattern)``;
(c) **multi-attribute/pattern intersections**, keyed by the frozen set of
    leaf keys and built by peeling one leaf off a memoized level-``(n-1)``
    prefix — the lattice-descent shape of level-wise discovery, where every
    level-``n`` candidate shares its first ``n-1`` attributes with a
    previously validated candidate.

Everything downstream — ``PFD.violations``, FD checking, the discovery
baselines, error detection and repair — asks this manager for classes
instead of re-grouping the relation row by row, which makes per-candidate
work scale with the number (and size) of surviving equivalence classes
rather than with the raw row count.

A partition object is an immutable snapshot: like a ``DictionaryColumn``, it
keeps meaning after the relation mutates, but the manager will no longer
hand it out.

Delta maintenance
-----------------

Batch ingestion (:meth:`repro.dataset.relation.Relation.append_rows`) does
not invalidate this cache — it *extends* it.  :meth:`PartitionManager.extend`
receives the per-column :class:`~repro.engine.dictionary.DictionaryDelta`
records and

* patches every cached **attribute partition**: on the python backend the
  appended row ids join the class of their code (promoting singletons,
  inserting classes of newly seen values in first-occurrence order) and the
  old partition's probe table — when one was built — is patched alongside
  (copied, index-remapped if insertions shifted classes, and the changed
  classes' rows reassigned) instead of being discarded and re-derived on
  the next ``intersect``; on the numpy backend the class arrays are
  regrouped from the extended code vector in one vectorized pass (memcpy
  speed, bit-identical to the patch);
* patches every cached **pattern partition** from per-key grouping state
  kept since the build: only the distinct values first seen in the batch
  are matched against the pattern, then the python backend appends the new
  covered rows to their component groups (patching the probe table the same
  way) while the numpy backend regroups vectorized;
* marks every memoized **intersection** whose leaves were patched as
  *stale*: the next request refreshes it by re-running the product over the
  patched leaf classes (cost ``O(||π||)``, never a regroup of raw rows), so
  appends themselves stay O(patched leaves) and entries a workload stopped
  reading cost nothing; entries it cannot patch (no delta available for the
  column) are dropped and rebuilt cold on demand.

The patched partitions are bit-identical — classes, class order, covered
rows, and row counts — to what a from-scratch rebuild would produce, which
the incremental-append and backend property tests pin.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence, Union

from ..patterns.alphabet import CharClass
from ..patterns.ast import ClassAtom, ConstrainedGroup, Pattern, Repeat
from ..patterns.matcher import CompiledPattern, compile_pattern
from .backend import NUMPY, np, resolve_backend, stable_order
from .dictionary import DictionaryColumn, DictionaryDelta, DictionaryUpdate
from .evaluator import PatternEvaluator, default_evaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset -> engine)
    from ..dataset.relation import Relation

PatternLike = Union[Pattern, str, CompiledPattern]

#: The tableau wildcard's pattern ``{{\A*}}`` matches every non-empty value
#: and constrains the whole value — its projected partition is exactly the
#: attribute partition, so keys carrying it are canonicalized to plain
#: attribute keys (one shared cache entry instead of two).
_WILDCARD_PATTERN = Pattern(
    (ConstrainedGroup((Repeat(ClassAtom(CharClass.ANY), 0, None),)),)
)


def _empty_arrays() -> tuple["np.ndarray", "np.ndarray"]:
    return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)


def _group_stripped(
    keys: "np.ndarray",
    rows: "np.ndarray",
    sort_keys: Optional["np.ndarray"] = None,
) -> tuple["np.ndarray", "np.ndarray"]:
    """Group ``rows`` by ``keys`` into stripped class arrays.

    Returns a ``(rowids, offsets)`` pair holding only the groups of size
    >= 2, rows ascending within a group, groups ordered by their smallest
    member — the canonical class order every construction path agrees on.

    Precondition: within each run of equal keys, ``rows`` must already be
    ascending in input order (true for every caller: grouping over row-order
    vectors is globally ascending, and an intersection gathers each product
    class from a single class of one parent, whose rows are ascending).
    A stable key-only argsort — radix sort for small integer keys,
    measurably faster than ``lexsort`` — then preserves that order within
    groups.

    ``sort_keys``, when given, is a coarser ordinal per element whose stable
    order already makes equal ``keys`` contiguous (an intersection sorts by
    its left class only: the input arrives grouped by right class, so each
    left run keeps that grouping).  Sorting the coarser key keeps the domain
    small enough for the radix path.
    """
    if len(rows) == 0:
        return _empty_arrays()
    order = stable_order(keys if sort_keys is None else sort_keys)
    sorted_keys = keys[order]
    sorted_rows = rows[order]
    boundary = np.empty(len(sorted_keys), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    sizes = np.diff(np.append(starts, len(sorted_keys)))
    keep = sizes >= 2
    starts = starts[keep]
    sizes = sizes[keep]
    if len(starts) == 0:
        return _empty_arrays()
    # Reorder groups by their first (= smallest) member.
    group_order = np.argsort(sorted_rows[starts], kind="stable")
    starts = starts[group_order]
    sizes = sizes[group_order]
    offsets = np.empty(len(sizes) + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    take = np.arange(offsets[-1], dtype=np.int64) + np.repeat(starts - offsets[:-1], sizes)
    return sorted_rows[take], offsets


class StrippedPartition:
    """Equivalence classes of size >= 2 over row ids.

    Attributes
    ----------
    classes:
        The stripped classes: tuples of row ids, each ascending, ordered by
        their smallest member (which equals first-seen order of the grouping
        keys — consumers that used to iterate insertion-ordered dicts see
        the same sequence).  On the numpy backend this tuple view is
        materialized lazily from the class arrays; vectorized consumers
        should use :meth:`class_arrays` instead.
    row_count:
        Total rows of the underlying relation (for error/coverage ratios).
    backend:
        ``"numpy"`` or ``"python"`` — which representation is native and
        whether the partition algebra runs vectorized.

    The *covered* rows — every row the grouping key is defined on, including
    the stripped singletons — are kept alongside because PFD semantics need
    them (tableau-row support counts rows, not classes; constant rows apply
    to single tuples).  For intersections they are derived lazily from the
    parent partitions, so candidates rejected on classes alone never pay for
    them.
    """

    __slots__ = (
        "row_count",
        "backend",
        "_classes",
        "_rowids",
        "_offsets",
        "_covered",
        "_covered_array",
        "_parents",
        "_probe",
        "_probe_array",
        "_stripped",
    )

    def __init__(
        self,
        classes: Sequence[Sequence[int]],
        row_count: int,
        covered: Optional[Sequence[int]] = None,
        parents: Optional[tuple["StrippedPartition", "StrippedPartition"]] = None,
        backend: Optional[str] = None,
    ):
        self.backend = resolve_backend(backend)
        self.row_count = row_count
        self._classes: Optional[tuple[tuple[int, ...], ...]] = tuple(
            tuple(class_rows) for class_rows in classes
        )
        self._rowids: Optional["np.ndarray"] = None
        self._offsets: Optional["np.ndarray"] = None
        self._covered: Optional[tuple[int, ...]] = (
            tuple(covered) if covered is not None else None
        )
        self._covered_array: Optional["np.ndarray"] = None
        self._parents = parents
        self._probe: Optional[dict[int, int]] = None
        self._probe_array: Optional["np.ndarray"] = None
        self._stripped: Optional[int] = None

    @classmethod
    def from_arrays(
        cls,
        rowids: "np.ndarray",
        offsets: "np.ndarray",
        row_count: int,
        covered: Optional["np.ndarray"] = None,
        parents: Optional[tuple["StrippedPartition", "StrippedPartition"]] = None,
    ) -> "StrippedPartition":
        """Build a numpy-backed partition directly from class arrays."""
        partition = cls.__new__(cls)
        partition.backend = NUMPY
        partition.row_count = row_count
        partition._classes = None
        partition._rowids = np.ascontiguousarray(rowids, dtype=np.int64)
        partition._offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        partition._covered = None
        partition._covered_array = (
            np.ascontiguousarray(covered, dtype=np.int64) if covered is not None else None
        )
        partition._parents = parents
        partition._probe = None
        partition._probe_array = None
        partition._stripped = None
        return partition

    # -- representations -----------------------------------------------------

    @property
    def classes(self) -> tuple[tuple[int, ...], ...]:
        """The stripped classes as a tuple of row-id tuples (lazy view)."""
        if self._classes is None:
            rowids = self._rowids.tolist()
            offsets = self._offsets.tolist()
            self._classes = tuple(
                tuple(rowids[offsets[i]:offsets[i + 1]])
                for i in range(len(offsets) - 1)
            )
        return self._classes

    def class_arrays(self) -> tuple["np.ndarray", "np.ndarray"]:
        """The ``(sorted_rowids, class_offsets)`` pair (lazy view).

        ``rowids[offsets[i]:offsets[i+1]]`` is class ``i``; requires numpy
        to be importable (always true on the numpy backend).
        """
        if self._rowids is None:
            classes = self._classes
            if not classes:
                self._rowids, self._offsets = _empty_arrays()
            else:
                sizes = np.fromiter(
                    (len(class_rows) for class_rows in classes),
                    dtype=np.int64,
                    count=len(classes),
                )
                offsets = np.empty(len(classes) + 1, dtype=np.int64)
                offsets[0] = 0
                np.cumsum(sizes, out=offsets[1:])
                total = int(offsets[-1])
                self._rowids = np.fromiter(
                    (row for class_rows in classes for row in class_rows),
                    dtype=np.int64,
                    count=total,
                )
                self._offsets = offsets
        return self._rowids, self._offsets

    # -- size ----------------------------------------------------------------

    @property
    def class_count(self) -> int:
        """Number of stripped (size >= 2) classes."""
        if self._classes is not None:
            return len(self._classes)
        return len(self._offsets) - 1

    @property
    def stripped_row_count(self) -> int:
        """Total rows inside the stripped classes (TANE's ``||π||``)."""
        if self._stripped is None:
            if self._rowids is not None:
                self._stripped = len(self._rowids)
            else:
                self._stripped = sum(len(class_rows) for class_rows in self._classes)
        return self._stripped

    @property
    def covered(self) -> tuple[int, ...]:
        """All rows the grouping key is defined on (singletons included)."""
        if self._covered is None:
            if self._covered_array is not None:
                self._covered = tuple(self._covered_array.tolist())
            elif self._parents is None:
                raise ValueError("partition was built without covered rows")
            elif self.backend == NUMPY:
                self._covered = tuple(self.covered_array().tolist())
            else:
                left, right = self._parents
                right_covered = set(right.covered)
                self._covered = tuple(
                    row for row in left.covered if row in right_covered
                )
        return self._covered

    def covered_array(self) -> "np.ndarray":
        """The covered rows as an ascending int64 ndarray (lazy view)."""
        if self._covered_array is None:
            if self._covered is not None:
                self._covered_array = np.fromiter(
                    self._covered, dtype=np.int64, count=len(self._covered)
                )
            elif self._parents is None:
                raise ValueError("partition was built without covered rows")
            else:
                left, right = self._parents
                self._covered_array = np.intersect1d(
                    left.covered_array(), right.covered_array(), assume_unique=True
                )
        return self._covered_array

    @property
    def covered_count(self) -> int:
        if self._covered is None and self._covered_array is not None:
            return len(self._covered_array)
        return len(self.covered)

    @property
    def error(self) -> float:
        """TANE's partition error ``e``: the fraction of rows that must be
        removed before the grouping key identifies tuples uniquely."""
        if not self.row_count:
            return 0.0
        return (self.stripped_row_count - self.class_count) / self.row_count

    # -- algebra -------------------------------------------------------------

    def probe_table(self) -> dict[int, int]:
        """Row id -> index of its stripped class (singletons absent)."""
        if self._probe is None:
            if self._rowids is not None:
                sizes = np.diff(self._offsets)
                indices = np.repeat(
                    np.arange(len(sizes), dtype=np.int64), sizes
                )
                self._probe = dict(zip(self._rowids.tolist(), indices.tolist()))
            else:
                probe: dict[int, int] = {}
                for index, class_rows in enumerate(self._classes):
                    for row in class_rows:
                        probe[row] = index
                self._probe = probe
        return self._probe

    def probe_array(self) -> "np.ndarray":
        """Row id -> stripped class index as an ndarray (``-1`` = singleton).

        The vectorized counterpart of :meth:`probe_table`, used by the
        array-based partition product and refinement checks.
        """
        if self._probe_array is None:
            rowids, offsets = self.class_arrays()
            probe = np.full(self.row_count, -1, dtype=np.int64)
            if len(rowids):
                probe[rowids] = np.repeat(
                    np.arange(len(offsets) - 1, dtype=np.int64), np.diff(offsets)
                )
            self._probe_array = probe
        return self._probe_array

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """The product partition (rows equivalent under *both* keys).

        On the numpy backend the product is a sort/group over packed
        ``(self class, other class)`` code pairs — one stable radix argsort
        plus a handful of vectorized reductions.  The python backend keeps the
        classic probe-table algorithm.  Either way only the stripped classes
        are visited, so the cost is near ``O(||self|| + ||other||)`` —
        independent of the relation's row count.
        """
        if self.backend == NUMPY and other.backend == NUMPY:
            return self._intersect_numpy(other)
        if not self.classes or not other.classes:
            return StrippedPartition(
                (), self.row_count, parents=(self, other), backend=self.backend
            )
        probe = self.probe_table()
        produced: list[tuple[int, ...]] = []
        for class_rows in other.classes:
            groups: dict[int, list[int]] = {}
            for row in class_rows:
                index = probe.get(row)
                if index is not None:
                    groups.setdefault(index, []).append(row)
            for rows in groups.values():
                if len(rows) >= 2:
                    produced.append(tuple(rows))
        produced.sort(key=lambda rows: rows[0])
        return StrippedPartition(
            produced, self.row_count, parents=(self, other), backend=self.backend
        )

    def _intersect_numpy(self, other: "StrippedPartition") -> "StrippedPartition":
        if self.class_count == 0 or other.class_count == 0:
            rowids, offsets = _empty_arrays()
            return StrippedPartition.from_arrays(
                rowids, offsets, self.row_count, parents=(self, other)
            )
        probe = self.probe_array()
        rows, offsets = other.class_arrays()
        other_class = np.repeat(
            np.arange(other.class_count, dtype=np.int64), np.diff(offsets)
        )
        left_class = probe[rows]
        keep = left_class >= 0
        rows = rows[keep]
        left_kept = left_class[keep]
        # Pack the (left class, right class) pair into one int64 key; both
        # factors are class counts, so the product cannot overflow 63 bits
        # for any relation that fits in memory.  Sorting by the left class
        # alone suffices (the gather above is grouped by right class), which
        # keeps the sort domain at class_count rather than the pair product.
        key = left_kept * np.int64(other.class_count) + other_class[keep]
        rowids, offsets = _group_stripped(key, rows, sort_keys=left_kept)
        return StrippedPartition.from_arrays(
            rowids, offsets, self.row_count, parents=(self, other)
        )

    def refines(self, other: "StrippedPartition") -> bool:
        """True when every class of ``self`` sits inside one class of
        ``other`` (the TANE validity check for exact dependencies)."""
        if self.backend == NUMPY and other.backend == NUMPY:
            rowids, offsets = self.class_arrays()
            if not len(rowids):
                return True
            probe = other.probe_array()[rowids]
            if (probe < 0).any():
                return False
            first = np.repeat(probe[offsets[:-1]], np.diff(offsets))
            return bool(np.array_equal(probe, first))
        probe = other.probe_table()
        for class_rows in self.classes:
            target = probe.get(class_rows[0])
            if target is None:
                return False
            for row in class_rows[1:]:
                if probe.get(row) != target:
                    return False
        return True

    def refines_codes(self, codes: Sequence[int]) -> bool:
        """True when every class agrees on ``codes`` (a per-row code array,
        e.g. a RHS column's dictionary codes — empty values included, which
        is exactly the textbook FD comparison semantics)."""
        if self.backend == NUMPY:
            rowids, offsets = self.class_arrays()
            if not len(rowids):
                return True
            class_codes = np.asarray(codes)[rowids]
            first = np.repeat(class_codes[offsets[:-1]], np.diff(offsets))
            return bool(np.array_equal(class_codes, first))
        for class_rows in self.classes:
            expected = codes[class_rows[0]]
            for row in class_rows[1:]:
                if codes[row] != expected:
                    return False
        return True

    def minority_rows(self, codes: Sequence[int]) -> list[int]:
        """Rows outside the majority ``codes`` bucket of their class, in
        ascending row-id order.

        The per-class majority is the bucket with the most rows (ties broken
        toward the smaller code, matching first-seen value order); the
        returned suspects drive approximate-dependency ratios without
        materializing violation objects.
        """
        if self.backend == NUMPY:
            return self._minority_rows_numpy(codes)
        suspects: list[int] = []
        for class_rows in self.classes:
            buckets: dict[int, list[int]] = {}
            for row in class_rows:
                buckets.setdefault(codes[row], []).append(row)
            if len(buckets) < 2:
                continue
            majority = max(buckets.items(), key=lambda item: (len(item[1]), -item[0]))[0]
            for code, rows in buckets.items():
                if code != majority:
                    suspects.extend(rows)
        suspects.sort()
        return suspects

    def _minority_rows_numpy(self, codes: Sequence[int]) -> list[int]:
        rowids, offsets = self.class_arrays()
        if not len(rowids):
            return []
        class_codes = np.asarray(codes, dtype=np.int64)[rowids]
        sizes = np.diff(offsets)
        class_ids = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
        # Bucket = (class, code); count members per bucket.
        order = np.lexsort((class_codes, class_ids))
        sorted_codes = class_codes[order]
        sorted_ids = class_ids[order]
        boundary = np.empty(len(order), dtype=bool)
        boundary[0] = True
        boundary[1:] = (sorted_codes[1:] != sorted_codes[:-1]) | (
            sorted_ids[1:] != sorted_ids[:-1]
        )
        starts = np.flatnonzero(boundary)
        bucket_sizes = np.diff(np.append(starts, len(order)))
        bucket_class = sorted_ids[starts]
        bucket_code = sorted_codes[starts]
        # Majority per class: max by (size, -code) == last bucket per class
        # after sorting by (class, size, -code).
        selection = np.lexsort((-bucket_code, bucket_sizes, bucket_class))
        selected_class = bucket_class[selection]
        last = np.empty(len(selection), dtype=bool)
        last[:-1] = selected_class[1:] != selected_class[:-1]
        last[-1] = True
        majority = np.empty(len(sizes), dtype=np.int64)
        majority[selected_class[last]] = bucket_code[selection][last]
        suspects = rowids[class_codes != majority[class_ids]]
        suspects.sort()
        return suspects.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StrippedPartition(classes={self.class_count}, "
            f"stripped_rows={self.stripped_row_count}, rows={self.row_count})"
        )


@dataclasses.dataclass(frozen=True)
class PartitionKey:
    """Cache key of one leaf partition: an attribute, optionally projected
    through a tableau pattern (``pattern is None`` = plain attribute)."""

    attribute: str
    pattern: Optional[CompiledPattern] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.pattern is None:
            return f"PartitionKey({self.attribute!r})"
        return f"PartitionKey({self.attribute!r}, {self.pattern.pattern.to_pattern_string()!r})"


@dataclasses.dataclass
class PartitionStats:
    """Cache-effectiveness counters of one :class:`PartitionManager`."""

    attribute_hits: int = 0
    attribute_misses: int = 0
    pattern_hits: int = 0
    pattern_misses: int = 0
    intersection_hits: int = 0
    intersection_misses: int = 0
    #: Cached partitions patched in place by :meth:`PartitionManager.extend`
    #: (delta maintenance instead of a full rebuild).
    attribute_extends: int = 0
    pattern_extends: int = 0
    intersection_refreshes: int = 0
    #: Cached partitions patched in place by :meth:`PartitionManager.apply_update`
    #: (cell overwrites / deletes maintained as deltas instead of the old
    #: per-attribute cache drop).
    attribute_updates: int = 0
    pattern_updates: int = 0
    #: Probe tables carried forward (patched) across an extend instead of
    #: being discarded and re-derived on the next ``intersect``.
    probe_patches: int = 0

    @property
    def hits(self) -> int:
        return self.attribute_hits + self.pattern_hits + self.intersection_hits

    @property
    def misses(self) -> int:
        return self.attribute_misses + self.pattern_misses + self.intersection_misses

    @property
    def extends(self) -> int:
        return (
            self.attribute_extends
            + self.pattern_extends
            + self.intersection_refreshes
            + self.attribute_updates
            + self.pattern_updates
        )

    def summary(self) -> str:
        return (
            f"partition cache: {self.hits} hits / {self.misses} misses "
            f"(attribute {self.attribute_hits}/{self.attribute_misses}, "
            f"pattern {self.pattern_hits}/{self.pattern_misses}, "
            f"intersection {self.intersection_hits}/{self.intersection_misses}), "
            f"{self.extends} delta extends"
        )


class _PatternGroups:
    """Mutable grouping state behind one cached pattern partition.

    Kept so :meth:`PartitionManager.extend_pattern` can patch the partition
    in O(delta): ``components[code]`` is the extracted constrained part of
    the distinct value at ``code`` (``None`` = uncovered).  On the python
    backend ``groups`` maps a component to *all* its row ids (singletons
    included — the stripped classes are derived by filtering) and
    ``covered`` is the ascending covered row list; the numpy backend skips
    both and regroups vectorized from the code vector instead.
    """

    __slots__ = ("components", "groups", "covered")

    def __init__(self) -> None:
        self.components: list[Optional[str]] = []
        self.groups: dict[str, list[int]] = {}
        self.covered: list[int] = []

    def append_component(self, value: str, result) -> None:
        """Record the grouping component of one distinct value: ``None``
        excludes its rows (empty value or failed match); a match without a
        constrained part contributes a constant component — matching is then
        the only requirement."""
        if not value or not result.matched:
            self.components.append(None)
        elif result.constrained_value is not None:
            self.components.append(result.constrained_value)
        else:
            self.components.append("")

    def partition(self, row_count: int) -> StrippedPartition:
        # Sorted by smallest member: insertion order equals first-row order
        # on a cold build (so this is a no-op there) but not after update
        # surgery moved rows between groups.
        classes = sorted(
            (tuple(rows) for rows in self.groups.values() if len(rows) >= 2),
            key=lambda class_rows: class_rows[0],
        )
        return StrippedPartition(
            classes, row_count, covered=tuple(self.covered), backend="python"
        )

    def partition_numpy(self, column: DictionaryColumn) -> StrippedPartition:
        """Vectorized grouping: broadcast component ids through the code
        vector, then one sort/group pass (no per-row Python work)."""
        component_of: dict[str, int] = {}
        component_ids = np.empty(len(self.components), dtype=np.int64)
        for code, component in enumerate(self.components):
            if component is None:
                component_ids[code] = -1
            else:
                component_ids[code] = component_of.setdefault(component, len(component_of))
        row_components = component_ids[column.codes_array()]
        covered = np.flatnonzero(row_components >= 0).astype(np.int64)
        rowids, offsets = _group_stripped(row_components[covered], covered)
        return StrippedPartition.from_arrays(
            rowids, offsets, column.row_count, covered=covered
        )


class PartitionManager:
    """Build, cache, and intersect stripped partitions for one relation.

    Obtained via :meth:`repro.dataset.relation.Relation.partitions`; the
    relation invalidates the affected entries on cell overwrites
    (``set_cell`` drops one attribute's partitions and every intersection
    touching it) and *extends* them on batch ingestion (``append_rows``
    routes the per-column dictionary deltas through :meth:`extend`), so a
    served partition always reflects the current rows.  Counters in
    :attr:`stats` survive invalidation — they describe the manager's whole
    lifetime.

    Partitions are built on the backend of the dictionary column they come
    from (ndarray class pairs on numpy, tuple classes on python), so one
    relation's partitions always share a representation and intersections
    never mix backends.
    """

    def __init__(self, relation: "Relation"):
        self._relation = relation
        self._attribute: dict[str, StrippedPartition] = {}
        self._pattern: dict[PartitionKey, StrippedPartition] = {}
        self._pattern_groups: dict[PartitionKey, _PatternGroups] = {}
        self._intersections: dict[frozenset[PartitionKey], StrippedPartition] = {}
        #: Intersections evicted by :meth:`extend` whose leaves were all
        #: patched: the next request refreshes them from the patched leaf
        #: classes and is counted as a refresh, not a cold build.
        self._stale_intersections: set[frozenset[PartitionKey]] = set()
        self.stats = PartitionStats()

    # -- keys ----------------------------------------------------------------

    def key(self, attribute: str, pattern: Optional[PatternLike] = None) -> PartitionKey:
        """The canonical cache key for ``attribute`` (optionally projected
        through ``pattern``; the wildcard pattern canonicalizes away)."""
        if pattern is None:
            return PartitionKey(attribute)
        compiled = pattern if isinstance(pattern, CompiledPattern) else compile_pattern(pattern)
        if compiled.pattern == _WILDCARD_PATTERN:
            return PartitionKey(attribute)
        return PartitionKey(attribute, compiled)

    # -- leaf partitions -----------------------------------------------------

    def attribute_partition(self, attribute: str) -> StrippedPartition:
        """Equivalence classes of whole attribute values (empty cells are
        uncovered, mirroring the grouping semantics of FD/PFD evaluation)."""
        cached = self._attribute.get(attribute)
        if cached is not None:
            self.stats.attribute_hits += 1
            return cached
        self.stats.attribute_misses += 1
        column = self._relation.dictionary(attribute)
        partition = self._build_attribute_partition(column)
        self._attribute[attribute] = partition
        return partition

    def _build_attribute_partition(self, column: DictionaryColumn) -> StrippedPartition:
        if column.backend == NUMPY:
            return self._build_attribute_partition_numpy(column)
        rows_by_code = column.rows_by_code()
        # Dictionary values are in first-seen order, so walking the codes in
        # order yields classes already sorted by their smallest row id —
        # unless updates moved rows between codes, in which case the classes
        # are re-sorted by smallest member below.
        classes = []
        for code, value in enumerate(column.values):
            if value and len(rows_by_code[code]) >= 2:
                classes.append(tuple(rows_by_code[code]))
        if column.has_updates:
            classes.sort(key=lambda class_rows: class_rows[0])
        empty_code = column.code_of("")
        if empty_code is None:
            covered: tuple[int, ...] = tuple(range(column.row_count))
        else:
            covered = tuple(
                row for row, code in enumerate(column.codes) if code != empty_code
            )
        return StrippedPartition(
            classes, column.row_count, covered=covered, backend=column.backend
        )

    def _build_attribute_partition_numpy(self, column: DictionaryColumn) -> StrippedPartition:
        """Vectorized attribute grouping: codes are already group keys in
        first-seen (= smallest-member) order, so one stable argsort over the
        code vector yields the classes directly.  After updates broke that
        ordering, the general sort/group pass (which orders classes by their
        smallest member explicitly) takes over."""
        codes = column.codes_array()
        empty_code = column.code_of("")
        if column.has_updates:
            if empty_code is not None:
                covered = np.flatnonzero(codes != empty_code).astype(np.int64)
            else:
                covered = np.arange(column.row_count, dtype=np.int64)
            rowids, offsets = _group_stripped(codes[covered], covered)
            return StrippedPartition.from_arrays(
                rowids, offsets, column.row_count, covered=covered
            )
        counts = column.counts_array()
        keep_code = counts >= 2
        if empty_code is not None:
            keep_code = keep_code.copy()
            keep_code[empty_code] = False
            covered = np.flatnonzero(codes != empty_code).astype(np.int64)
        else:
            covered = np.arange(column.row_count, dtype=np.int64)
        order = stable_order(codes)
        sorted_codes = codes[order]
        keep_rows = keep_code[sorted_codes]
        rowids = order[keep_rows].astype(np.int64)
        sizes = counts[keep_code]
        offsets = np.empty(len(sizes) + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(sizes, out=offsets[1:])
        return StrippedPartition.from_arrays(
            rowids, offsets, column.row_count, covered=covered
        )

    def pattern_partition(
        self,
        attribute: str,
        pattern: PatternLike,
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """Rows matching ``pattern``, grouped by extracted constrained part.

        Matching runs through the evaluator's memoized per-distinct-value
        results (seeded from any prior set-at-a-time batch), so only the
        row-id grouping itself is new work — and it happens once per
        (attribute, pattern), no matter how many tableau rows, candidates,
        or detection passes ask again.
        """
        key = self.key(attribute, pattern)
        if key.pattern is None:
            return self.attribute_partition(attribute)
        return self._pattern_partition(key, evaluator)

    def _pattern_partition(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator]
    ) -> StrippedPartition:
        cached = self._pattern.get(key)
        if cached is not None:
            self.stats.pattern_hits += 1
            return cached
        self.stats.pattern_misses += 1
        evaluator = evaluator or default_evaluator()
        column = self._relation.dictionary(key.attribute)
        match = evaluator.match_column(key.pattern, column)
        state = _PatternGroups()
        for value, result in zip(column.values, match.results):
            state.append_component(value, result)
        if column.backend == NUMPY:
            partition = state.partition_numpy(column)
        else:
            for row, code in enumerate(column.codes):
                component = state.components[code]
                if component is None:
                    continue
                state.covered.append(row)
                state.groups.setdefault(component, []).append(row)
            partition = state.partition(column.row_count)
        self._pattern[key] = partition
        self._pattern_groups[key] = state
        return partition

    def partition_for(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator] = None
    ) -> StrippedPartition:
        """The leaf partition of one canonical key."""
        if key.pattern is None:
            return self.attribute_partition(key.attribute)
        return self._pattern_partition(key, evaluator)

    # -- intersections -------------------------------------------------------

    def intersection(
        self,
        keys: Iterable[PartitionKey],
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """The product of the leaf partitions of ``keys``, memoized.

        A level-``n`` request peels one leaf off the canonically ordered key
        set and intersects it into the memoized level-``(n-1)`` prefix, so a
        lattice descent reuses every previously intersected prefix instead
        of rebuilding from the rows.
        """
        key_set = frozenset(keys)
        if not key_set:
            raise ValueError("intersection() needs at least one partition key")
        if len(key_set) == 1:
            return self.partition_for(next(iter(key_set)), evaluator)
        cached = self._intersections.get(key_set)
        if cached is not None:
            self.stats.intersection_hits += 1
            return cached
        if key_set in self._stale_intersections:
            self._stale_intersections.discard(key_set)
            self.stats.intersection_refreshes += 1
        else:
            self.stats.intersection_misses += 1
        ordered = sorted(key_set, key=_key_order)
        last = ordered[-1]
        prefix = self.intersection(ordered[:-1], evaluator)
        leaf = self.partition_for(last, evaluator)
        partition = prefix.intersect(leaf)
        self._intersections[key_set] = partition
        return partition

    def attribute_set_partition(self, attributes: Sequence[str]) -> StrippedPartition:
        """The (possibly multi-) attribute partition of plain values — the
        grouping every FD-style consumer used to rebuild per candidate."""
        keys = [PartitionKey(attribute) for attribute in attributes]
        if len(keys) == 1:
            return self.attribute_partition(keys[0].attribute)
        return self.intersection(keys)

    # -- delta maintenance ---------------------------------------------------

    def extend(self, deltas: Mapping[str, DictionaryDelta]) -> None:
        """Patch every cached partition for a batch of appended rows.

        ``deltas`` maps attribute names to the
        :class:`~repro.engine.dictionary.DictionaryDelta` their dictionary
        returned from the in-place extend (missing attributes had no cached
        dictionary — their partitions, if any, are dropped and rebuilt on
        demand).  Leaf partitions are patched in place; memoized
        intersections are marked stale and refreshed on next request by the
        partition product over the patched leaf classes, reusing the
        level-wise prefix descent.  Partition *objects* are never mutated —
        each cache slot receives a fresh snapshot, so partitions handed out
        before the append keep describing the old rows.
        """
        for attribute in list(self._attribute):
            delta = deltas.get(attribute)
            if delta is None:
                self._attribute.pop(attribute)
            else:
                self.extend_attribute(attribute, delta)
        for key in list(self._pattern):
            delta = deltas.get(key.attribute)
            state = self._pattern_groups.get(key)
            if delta is None or state is None:
                self._pattern.pop(key)
                self._pattern_groups.pop(key, None)
            else:
                self.extend_pattern(key, delta)
        # Intersections go stale, not cold: entries whose leaves were all
        # patched are refreshed lazily — the next request re-runs the
        # partition product over the patched leaf classes (the memoized
        # prefix descent refreshes stale prefixes on the way).  Appending is
        # therefore O(patched leaves), never O(cached intersections), and
        # entries a workload stopped reading cost nothing.
        candidates = set(self._intersections) | self._stale_intersections
        self._stale_intersections = {
            key_set
            for key_set in candidates
            if all(
                (key.pattern is None and key.attribute in self._attribute)
                or (key.pattern is not None and key in self._pattern)
                for key in key_set
            )
        }
        self._intersections.clear()

    def extend_attribute(self, attribute: str, delta: DictionaryDelta) -> StrippedPartition:
        """Patch the cached attribute partition with one appended batch.

        Appended row ids join the class of their code; singletons that
        gained a partner are promoted to classes (inserted in
        first-occurrence order, which keeps the class sequence identical to
        a from-scratch build); values first seen in the batch open new
        classes once they reach two rows.  On the python backend this reads
        the row lists the dictionary maintains in place — no regrouping —
        and carries the old partition's probe table forward (copy + index
        remap + changed-class reassignment) when one was built.  On the
        numpy backend the class arrays are regrouped from the extended code
        vector in one vectorized pass, which is bit-identical and runs at
        memcpy speed.
        """
        column = self._relation.dictionary(attribute)
        old = self._attribute.get(attribute)
        if old is None:
            return self.attribute_partition(attribute)
        if column.backend == NUMPY:
            partition = self._build_attribute_partition_numpy(column)
            self._attribute[attribute] = partition
            self.stats.attribute_extends += 1
            return partition
        rows_by_code = column.rows_by_code()
        added_by_code: dict[int, int] = {}
        for code in delta.appended_codes:
            added_by_code[code] = added_by_code.get(code, 0) + 1
        old_classes = old.classes
        classes = list(old_classes)
        firsts = [class_rows[0] for class_rows in classes]
        #: (first member, rows to point at the class) per changed class —
        #: feeds the incremental probe-table patch below.
        changed: list[tuple[int, tuple[int, ...]]] = []
        inserted = False
        for code, added in added_by_code.items():
            if not column.values[code]:
                continue
            rows = rows_by_code[code]
            if len(rows) < 2:
                continue
            full = tuple(rows)
            if len(rows) - added >= 2:
                # Existing class: same first member, rows appended at the end.
                index = bisect.bisect_left(firsts, full[0])
                classes[index] = full
                changed.append((full[0], full[-added:]))
            else:
                # Promoted singleton or a value first seen in this batch.
                index = bisect.bisect_left(firsts, full[0])
                classes.insert(index, full)
                firsts.insert(index, full[0])
                changed.append((full[0], full))
                inserted = True
        covered = old.covered + tuple(
            delta.start_row + offset
            for offset, code in enumerate(delta.appended_codes)
            if column.values[code]
        )
        partition = StrippedPartition(
            classes, column.row_count, covered=covered, backend=column.backend
        )
        if old._probe is not None:
            partition._probe = self._patch_probe(
                old, old_classes, firsts, changed, inserted
            )
            self.stats.probe_patches += 1
        self._attribute[attribute] = partition
        self.stats.attribute_extends += 1
        return partition

    @staticmethod
    def _patch_probe(
        old: StrippedPartition,
        old_classes: Sequence[Sequence[int]],
        new_firsts: Sequence[int],
        changed: Sequence[tuple[int, Sequence[int]]],
        inserted: bool,
    ) -> dict[int, int]:
        """Carry one probe table across an extend instead of rebuilding it.

        Classes are identified by their first member (classes are disjoint,
        so first members are unique and an extend never changes them).  When
        insertions shifted class indices the surviving entries are remapped
        in one dict comprehension; then only the changed classes' rows are
        reassigned — O(old probe) at worst, O(changed rows) typically,
        instead of the full class walk a rebuild costs.
        """
        old_probe = old._probe
        assert old_probe is not None
        if inserted:
            remap = [
                bisect.bisect_left(new_firsts, class_rows[0])
                for class_rows in old_classes
            ]
            if remap == list(range(len(remap))):
                probe = dict(old_probe)
            else:
                probe = {row: remap[index] for row, index in old_probe.items()}
        else:
            probe = dict(old_probe)
        for first, rows in changed:
            index = bisect.bisect_left(new_firsts, first)
            for row in rows:
                probe[row] = index
        return probe

    def extend_pattern(self, key: PartitionKey, delta: DictionaryDelta) -> StrippedPartition:
        """Patch one cached pattern-projected partition with a batch.

        Only the distinct values *first seen in the batch* are matched
        against the pattern (``O(new distinct)`` match calls); the appended
        rows are then routed to their component groups — through the stored
        grouping state on the python backend (probe table carried forward
        like :meth:`extend_attribute`), through one vectorized regroup of
        the extended code vector on numpy.
        """
        state = self._pattern_groups.get(key)
        old = self._pattern.get(key)
        if state is None or old is None:
            return self._pattern_partition(key, None)
        column = self._relation.dictionary(key.attribute)
        compiled = key.pattern
        assert compiled is not None  # plain-attribute keys never land here
        # Matched directly rather than through an evaluator: the manager does
        # not know which evaluator built the entry, the work is bounded by
        # the batch's new distinct values, and CompiledPattern.match is the
        # same deterministic function every evaluator path bottoms out in.
        for code in range(len(state.components), column.distinct_count):
            value = column.values[code]
            state.append_component(value, compiled.match(value) if value else None)
        if column.backend == NUMPY:
            partition = state.partition_numpy(column)
            self._pattern[key] = partition
            self.stats.pattern_extends += 1
            return partition
        #: Components whose group was below the stripped threshold before
        #: this batch (their pre-existing rows are absent from the probe).
        promoted: dict[str, None] = {}
        appended: list[tuple[int, str]] = []
        for offset, code in enumerate(delta.appended_codes):
            component = state.components[code]
            if component is None:
                continue
            row = delta.start_row + offset
            state.covered.append(row)
            group = state.groups.setdefault(component, [])
            if len(group) < 2:
                promoted[component] = None
            group.append(row)
        appended = [
            (delta.start_row + offset, state.components[code])
            for offset, code in enumerate(delta.appended_codes)
            if state.components[code] is not None
        ]
        old_classes = old.classes
        partition = state.partition(column.row_count)
        if old._probe is not None:
            new_firsts = {
                class_rows[0]: index
                for index, class_rows in enumerate(partition.classes)
            }
            remap = [new_firsts[class_rows[0]] for class_rows in old_classes]
            if remap == list(range(len(remap))):
                probe = dict(old._probe)
            else:
                probe = {row: remap[index] for row, index in old._probe.items()}
            for component in promoted:
                group = state.groups[component]
                if len(group) >= 2:
                    index = new_firsts[group[0]]
                    for row in group:
                        probe[row] = index
            for row, component in appended:
                group = state.groups[component]
                if len(group) >= 2:
                    probe[row] = new_firsts[group[0]]
            partition._probe = probe
            self.stats.probe_patches += 1
        self._pattern[key] = partition
        self.stats.pattern_extends += 1
        return partition

    def apply_update(self, updates: Mapping[str, DictionaryUpdate]) -> None:
        """Patch every cached partition for a batch of cell overwrites.

        ``updates`` maps attribute names to the
        :class:`~repro.engine.dictionary.DictionaryUpdate` their dictionary
        returned from the in-place :meth:`DictionaryColumn.update_rows` —
        the counterpart of :meth:`extend` for
        :meth:`repro.dataset.relation.Relation.apply`.  Unlike an append
        (which touches every attribute), an update touches only the listed
        attributes, so partitions of untouched attributes — and every
        memoized intersection whose leaves all avoid the updated attributes
        — stay cached as-is.  Touched leaf partitions receive a fresh
        snapshot regrouped from the updated dictionary state; intersections
        touching an updated attribute go stale and refresh lazily from the
        patched leaves, exactly like an append.
        """
        effective = {name: update for name, update in updates.items() if update}
        if not effective:
            return
        for attribute, update in effective.items():
            if attribute in self._attribute:
                self.update_attribute(attribute, update)
            for key in [key for key in self._pattern if key.attribute == attribute]:
                self.update_pattern(key, update)
        touched = set(effective)
        survivors: dict[frozenset[PartitionKey], StrippedPartition] = {}
        for key_set, partition in self._intersections.items():
            if all(key.attribute not in touched for key in key_set):
                survivors[key_set] = partition
            else:
                self._stale_intersections.add(key_set)
        self._intersections = survivors
        self._stale_intersections = {
            key_set
            for key_set in self._stale_intersections
            if key_set not in self._intersections
            and all(
                (key.pattern is None and key.attribute in self._attribute)
                or (key.pattern is not None and key in self._pattern)
                or key.attribute not in touched
                for key in key_set
            )
        }

    def update_attribute(self, attribute: str, update: DictionaryUpdate) -> StrippedPartition:
        """Patch the cached attribute partition after cell overwrites.

        The dictionary has already moved the updated rows between its
        per-code row lists (``update_rows``), so the new classes are read
        straight off that state — no regrouping of raw rows on the python
        backend, one vectorized sort/group pass on numpy.  Classes are
        ordered by smallest member (the canonical order shared with cold
        builds, which re-sort the same way once a column ``has_updates``).
        The covered rows are patched per assignment: a row leaves coverage
        when its value became empty and joins when it stopped being empty.
        """
        column = self._relation.dictionary(attribute)
        old = self._attribute.get(attribute)
        if old is None:
            return self.attribute_partition(attribute)
        if column.backend == NUMPY:
            partition = self._build_attribute_partition_numpy(column)
            self._attribute[attribute] = partition
            self.stats.attribute_updates += 1
            return partition
        rows_by_code = column.rows_by_code()
        classes = sorted(
            (
                tuple(rows_by_code[code])
                for code, value in enumerate(column.values)
                if value and len(rows_by_code[code]) >= 2
            ),
            key=lambda class_rows: class_rows[0],
        )
        covered = list(old.covered)
        for row_id, old_code, new_code in update.assignments:
            was_covered = bool(column.values[old_code])
            now_covered = bool(column.values[new_code])
            if was_covered and not now_covered:
                del covered[bisect.bisect_left(covered, row_id)]
            elif now_covered and not was_covered:
                bisect.insort(covered, row_id)
        partition = StrippedPartition(
            classes, column.row_count, covered=tuple(covered), backend=column.backend
        )
        self._attribute[attribute] = partition
        self.stats.attribute_updates += 1
        return partition

    def update_pattern(self, key: PartitionKey, update: DictionaryUpdate) -> StrippedPartition:
        """Patch one cached pattern-projected partition after cell overwrites.

        Values first seen by the update are matched against the pattern
        (``O(new distinct)`` match calls — revived tombstone codes already
        have their component cached); then each updated row moves between
        component groups: removed from its old value's group, inserted into
        its new value's (rows stay ascending via bisect), with coverage
        patched when a row's match status flipped.  The numpy backend
        regroups vectorized from the updated code vector instead.
        """
        state = self._pattern_groups.get(key)
        old = self._pattern.get(key)
        if state is None or old is None:
            self._pattern.pop(key, None)
            self._pattern_groups.pop(key, None)
            return self._pattern_partition(key, None)
        column = self._relation.dictionary(key.attribute)
        compiled = key.pattern
        assert compiled is not None  # plain-attribute keys never land here
        for code in range(len(state.components), column.distinct_count):
            value = column.values[code]
            state.append_component(value, compiled.match(value) if value else None)
        if column.backend == NUMPY:
            partition = state.partition_numpy(column)
            self._pattern[key] = partition
            self.stats.pattern_updates += 1
            return partition
        for row_id, old_code, new_code in update.assignments:
            old_component = state.components[old_code]
            new_component = state.components[new_code]
            if old_component == new_component:
                continue
            if old_component is not None:
                group = state.groups[old_component]
                del group[bisect.bisect_left(group, row_id)]
                if not group:
                    del state.groups[old_component]
            if new_component is not None:
                bisect.insort(state.groups.setdefault(new_component, []), row_id)
            if old_component is None:
                bisect.insort(state.covered, row_id)
            elif new_component is None:
                del state.covered[bisect.bisect_left(state.covered, row_id)]
        partition = state.partition(column.row_count)
        self._pattern[key] = partition
        self.stats.pattern_updates += 1
        return partition

    # -- invalidation --------------------------------------------------------

    def invalidate_attribute(self, attribute: str) -> None:
        """Drop every cached partition that reads ``attribute``."""
        self._attribute.pop(attribute, None)
        self._pattern = {
            key: partition
            for key, partition in self._pattern.items()
            if key.attribute != attribute
        }
        self._pattern_groups = {
            key: state
            for key, state in self._pattern_groups.items()
            if key.attribute != attribute
        }
        self._intersections = {
            key_set: partition
            for key_set, partition in self._intersections.items()
            if all(key.attribute != attribute for key in key_set)
        }
        self._stale_intersections = {
            key_set
            for key_set in self._stale_intersections
            if all(key.attribute != attribute for key in key_set)
        }

    def invalidate(self) -> None:
        """Drop every cached partition (counters are kept)."""
        self._attribute.clear()
        self._pattern.clear()
        self._pattern_groups.clear()
        self._intersections.clear()
        self._stale_intersections.clear()

    def cached_partition_count(self) -> int:
        return len(self._attribute) + len(self._pattern) + len(self._intersections)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionManager(cached={self.cached_partition_count()}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


def _key_order(key: PartitionKey) -> tuple[str, str]:
    """Canonical leaf order inside an intersection (attribute, then pattern
    string), so equal key sets always peel the same prefix."""
    if key.pattern is None:
        return (key.attribute, "")
    return (key.attribute, key.pattern.pattern.to_pattern_string())
