"""Stripped partitions (position list indexes) over dictionary-encoded columns.

A *partition* of a relation groups tuple ids into equivalence classes: two
rows belong to the same class when they agree on the grouping key.  TANE
(Huhtala et al.) made two observations that this module adopts wholesale:

* classes of size one can never witness a violation of a functional
  dependency, so they are **stripped** — dropped from the representation;
* the partition of a multi-attribute set ``{A, B}`` is the *product* of the
  single-attribute partitions, computable from the stripped classes alone
  with the classic probe-table algorithm — it never has to be re-grouped
  from the raw rows.

The pattern twist of this library adds a third kind of grouping key: the
*extracted constrained part* of a tableau pattern.  A pattern-projected
partition groups the rows whose value matches the pattern by that part, and
is seeded from the engine's memoized per-distinct-value matches
(:meth:`~repro.engine.evaluator.PatternEvaluator.match_column`, itself fed by
the shared-DFA :class:`~repro.engine.evaluator.ColumnMatchSet` masks), so
building one costs no pattern matching beyond what the evaluator already
cached.

Three partition sources, one cache
----------------------------------

:class:`PartitionManager` — created lazily per relation via
:meth:`repro.dataset.relation.Relation.partitions` and invalidated on
mutation exactly like the dictionary cache — memoizes:

(a) **attribute partitions**, read straight off
    :meth:`~repro.engine.dictionary.DictionaryColumn.rows_by_code` (the
    dictionary's row lists *are* the equivalence classes);
(b) **pattern-projected partitions**, keyed by ``(attribute, pattern)``;
(c) **multi-attribute/pattern intersections**, keyed by the frozen set of
    leaf keys and built by peeling one leaf off a memoized level-``(n-1)``
    prefix — the lattice-descent shape of level-wise discovery, where every
    level-``n`` candidate shares its first ``n-1`` attributes with a
    previously validated candidate.

Everything downstream — ``PFD.violations``, FD checking, the discovery
baselines, error detection and repair — asks this manager for classes
instead of re-grouping the relation row by row, which makes per-candidate
work scale with the number (and size) of surviving equivalence classes
rather than with the raw row count.

A partition object is an immutable snapshot: like a ``DictionaryColumn``, it
keeps meaning after the relation mutates, but the manager will no longer
hand it out.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..patterns.alphabet import CharClass
from ..patterns.ast import ClassAtom, ConstrainedGroup, Pattern, Repeat
from ..patterns.matcher import CompiledPattern, compile_pattern
from .evaluator import PatternEvaluator, default_evaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset -> engine)
    from ..dataset.relation import Relation

PatternLike = Union[Pattern, str, CompiledPattern]

#: The tableau wildcard's pattern ``{{\A*}}`` matches every non-empty value
#: and constrains the whole value — its projected partition is exactly the
#: attribute partition, so keys carrying it are canonicalized to plain
#: attribute keys (one shared cache entry instead of two).
_WILDCARD_PATTERN = Pattern(
    (ConstrainedGroup((Repeat(ClassAtom(CharClass.ANY), 0, None),)),)
)


class StrippedPartition:
    """Equivalence classes of size >= 2 over row ids.

    Attributes
    ----------
    classes:
        The stripped classes: tuples of row ids, each ascending, ordered by
        their smallest member (which equals first-seen order of the grouping
        keys — consumers that used to iterate insertion-ordered dicts see
        the same sequence).
    row_count:
        Total rows of the underlying relation (for error/coverage ratios).

    The *covered* rows — every row the grouping key is defined on, including
    the stripped singletons — are kept alongside because PFD semantics need
    them (tableau-row support counts rows, not classes; constant rows apply
    to single tuples).  For intersections they are derived lazily from the
    parent partitions, so candidates rejected on classes alone never pay for
    them.
    """

    __slots__ = ("classes", "row_count", "_covered", "_parents", "_probe", "_stripped")

    def __init__(
        self,
        classes: Sequence[Sequence[int]],
        row_count: int,
        covered: Optional[Sequence[int]] = None,
        parents: Optional[tuple["StrippedPartition", "StrippedPartition"]] = None,
    ):
        self.classes: tuple[tuple[int, ...], ...] = tuple(
            tuple(class_rows) for class_rows in classes
        )
        self.row_count = row_count
        self._covered: Optional[tuple[int, ...]] = (
            tuple(covered) if covered is not None else None
        )
        self._parents = parents
        self._probe: Optional[dict[int, int]] = None
        self._stripped: Optional[int] = None

    # -- size ----------------------------------------------------------------

    @property
    def class_count(self) -> int:
        """Number of stripped (size >= 2) classes."""
        return len(self.classes)

    @property
    def stripped_row_count(self) -> int:
        """Total rows inside the stripped classes (TANE's ``||π||``)."""
        if self._stripped is None:
            self._stripped = sum(len(class_rows) for class_rows in self.classes)
        return self._stripped

    @property
    def covered(self) -> tuple[int, ...]:
        """All rows the grouping key is defined on (singletons included)."""
        if self._covered is None:
            if self._parents is None:
                raise ValueError("partition was built without covered rows")
            left, right = self._parents
            right_covered = set(right.covered)
            self._covered = tuple(
                row for row in left.covered if row in right_covered
            )
        return self._covered

    @property
    def covered_count(self) -> int:
        return len(self.covered)

    @property
    def error(self) -> float:
        """TANE's partition error ``e``: the fraction of rows that must be
        removed before the grouping key identifies tuples uniquely."""
        if not self.row_count:
            return 0.0
        return (self.stripped_row_count - self.class_count) / self.row_count

    # -- algebra -------------------------------------------------------------

    def probe_table(self) -> dict[int, int]:
        """Row id -> index of its stripped class (singletons absent)."""
        if self._probe is None:
            probe: dict[int, int] = {}
            for index, class_rows in enumerate(self.classes):
                for row in class_rows:
                    probe[row] = index
            self._probe = probe
        return self._probe

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """The product partition (rows equivalent under *both* keys).

        The classic probe-table algorithm: only the stripped classes are
        visited, so the cost is ``O(||self|| + ||other||)`` — independent of
        the relation's row count.
        """
        if not self.classes or not other.classes:
            return StrippedPartition((), self.row_count, parents=(self, other))
        probe = self.probe_table()
        produced: list[tuple[int, ...]] = []
        for class_rows in other.classes:
            groups: dict[int, list[int]] = {}
            for row in class_rows:
                index = probe.get(row)
                if index is not None:
                    groups.setdefault(index, []).append(row)
            for rows in groups.values():
                if len(rows) >= 2:
                    produced.append(tuple(rows))
        produced.sort(key=lambda rows: rows[0])
        return StrippedPartition(produced, self.row_count, parents=(self, other))

    def refines(self, other: "StrippedPartition") -> bool:
        """True when every class of ``self`` sits inside one class of
        ``other`` (the TANE validity check for exact dependencies)."""
        probe = other.probe_table()
        for class_rows in self.classes:
            target = probe.get(class_rows[0])
            if target is None:
                return False
            for row in class_rows[1:]:
                if probe.get(row) != target:
                    return False
        return True

    def refines_codes(self, codes: Sequence[int]) -> bool:
        """True when every class agrees on ``codes`` (a per-row code array,
        e.g. a RHS column's dictionary codes — empty values included, which
        is exactly the textbook FD comparison semantics)."""
        for class_rows in self.classes:
            expected = codes[class_rows[0]]
            for row in class_rows[1:]:
                if codes[row] != expected:
                    return False
        return True

    def minority_rows(self, codes: Sequence[int]) -> list[int]:
        """Rows outside the majority ``codes`` bucket of their class.

        The per-class majority is the bucket with the most rows (ties broken
        toward the smaller code, matching first-seen value order); the
        returned suspects drive approximate-dependency ratios without
        materializing violation objects.
        """
        suspects: list[int] = []
        for class_rows in self.classes:
            buckets: dict[int, list[int]] = {}
            for row in class_rows:
                buckets.setdefault(codes[row], []).append(row)
            if len(buckets) < 2:
                continue
            majority = max(buckets.items(), key=lambda item: (len(item[1]), -item[0]))[0]
            for code, rows in buckets.items():
                if code != majority:
                    suspects.extend(rows)
        return suspects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StrippedPartition(classes={self.class_count}, "
            f"stripped_rows={self.stripped_row_count}, rows={self.row_count})"
        )


@dataclasses.dataclass(frozen=True)
class PartitionKey:
    """Cache key of one leaf partition: an attribute, optionally projected
    through a tableau pattern (``pattern is None`` = plain attribute)."""

    attribute: str
    pattern: Optional[CompiledPattern] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.pattern is None:
            return f"PartitionKey({self.attribute!r})"
        return f"PartitionKey({self.attribute!r}, {self.pattern.pattern.to_pattern_string()!r})"


@dataclasses.dataclass
class PartitionStats:
    """Cache-effectiveness counters of one :class:`PartitionManager`."""

    attribute_hits: int = 0
    attribute_misses: int = 0
    pattern_hits: int = 0
    pattern_misses: int = 0
    intersection_hits: int = 0
    intersection_misses: int = 0

    @property
    def hits(self) -> int:
        return self.attribute_hits + self.pattern_hits + self.intersection_hits

    @property
    def misses(self) -> int:
        return self.attribute_misses + self.pattern_misses + self.intersection_misses

    def summary(self) -> str:
        return (
            f"partition cache: {self.hits} hits / {self.misses} misses "
            f"(attribute {self.attribute_hits}/{self.attribute_misses}, "
            f"pattern {self.pattern_hits}/{self.pattern_misses}, "
            f"intersection {self.intersection_hits}/{self.intersection_misses})"
        )


class PartitionManager:
    """Build, cache, and intersect stripped partitions for one relation.

    Obtained via :meth:`repro.dataset.relation.Relation.partitions`; the
    relation invalidates the affected entries on mutation (``set_cell``
    drops one attribute's partitions and every intersection touching it,
    ``append_row`` drops everything), so a served partition always reflects
    the current rows.  Counters in :attr:`stats` survive invalidation —
    they describe the manager's whole lifetime.
    """

    def __init__(self, relation: "Relation"):
        self._relation = relation
        self._attribute: dict[str, StrippedPartition] = {}
        self._pattern: dict[PartitionKey, StrippedPartition] = {}
        self._intersections: dict[frozenset[PartitionKey], StrippedPartition] = {}
        self.stats = PartitionStats()

    # -- keys ----------------------------------------------------------------

    def key(self, attribute: str, pattern: Optional[PatternLike] = None) -> PartitionKey:
        """The canonical cache key for ``attribute`` (optionally projected
        through ``pattern``; the wildcard pattern canonicalizes away)."""
        if pattern is None:
            return PartitionKey(attribute)
        compiled = pattern if isinstance(pattern, CompiledPattern) else compile_pattern(pattern)
        if compiled.pattern == _WILDCARD_PATTERN:
            return PartitionKey(attribute)
        return PartitionKey(attribute, compiled)

    # -- leaf partitions -----------------------------------------------------

    def attribute_partition(self, attribute: str) -> StrippedPartition:
        """Equivalence classes of whole attribute values (empty cells are
        uncovered, mirroring the grouping semantics of FD/PFD evaluation)."""
        cached = self._attribute.get(attribute)
        if cached is not None:
            self.stats.attribute_hits += 1
            return cached
        self.stats.attribute_misses += 1
        column = self._relation.dictionary(attribute)
        rows_by_code = column.rows_by_code()
        # Dictionary values are in first-seen order, so walking the codes in
        # order yields classes already sorted by their smallest row id.
        classes = []
        for code, value in enumerate(column.values):
            if value and len(rows_by_code[code]) >= 2:
                classes.append(tuple(rows_by_code[code]))
        empty_code = column.code_of("")
        if empty_code is None:
            covered: tuple[int, ...] = tuple(range(column.row_count))
        else:
            covered = tuple(
                row for row, code in enumerate(column.codes) if code != empty_code
            )
        partition = StrippedPartition(classes, column.row_count, covered=covered)
        self._attribute[attribute] = partition
        return partition

    def pattern_partition(
        self,
        attribute: str,
        pattern: PatternLike,
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """Rows matching ``pattern``, grouped by extracted constrained part.

        Matching runs through the evaluator's memoized per-distinct-value
        results (seeded from any prior set-at-a-time batch), so only the
        row-id grouping itself is new work — and it happens once per
        (attribute, pattern), no matter how many tableau rows, candidates,
        or detection passes ask again.
        """
        key = self.key(attribute, pattern)
        if key.pattern is None:
            return self.attribute_partition(attribute)
        return self._pattern_partition(key, evaluator)

    def _pattern_partition(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator]
    ) -> StrippedPartition:
        cached = self._pattern.get(key)
        if cached is not None:
            self.stats.pattern_hits += 1
            return cached
        self.stats.pattern_misses += 1
        evaluator = evaluator or default_evaluator()
        column = self._relation.dictionary(key.attribute)
        match = evaluator.match_column(key.pattern, column)
        # Per-code grouping component: None excludes the rows (empty value or
        # failed match); a cell without a constrained part contributes a
        # constant component — matching is then the only requirement.
        components: list[Optional[str]] = []
        for value, result in zip(column.values, match.results):
            if not value or not result.matched:
                components.append(None)
            else:
                components.append(
                    result.constrained_value
                    if result.constrained_value is not None
                    else ""
                )
        groups: dict[str, list[int]] = {}
        covered: list[int] = []
        for row, code in enumerate(column.codes):
            component = components[code]
            if component is None:
                continue
            covered.append(row)
            groups.setdefault(component, []).append(row)
        classes = [tuple(rows) for rows in groups.values() if len(rows) >= 2]
        partition = StrippedPartition(classes, column.row_count, covered=covered)
        self._pattern[key] = partition
        return partition

    def partition_for(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator] = None
    ) -> StrippedPartition:
        """The leaf partition of one canonical key."""
        if key.pattern is None:
            return self.attribute_partition(key.attribute)
        return self._pattern_partition(key, evaluator)

    # -- intersections -------------------------------------------------------

    def intersection(
        self,
        keys: Iterable[PartitionKey],
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """The product of the leaf partitions of ``keys``, memoized.

        A level-``n`` request peels one leaf off the canonically ordered key
        set and intersects it into the memoized level-``(n-1)`` prefix, so a
        lattice descent reuses every previously intersected prefix instead
        of rebuilding from the rows.
        """
        key_set = frozenset(keys)
        if not key_set:
            raise ValueError("intersection() needs at least one partition key")
        if len(key_set) == 1:
            return self.partition_for(next(iter(key_set)), evaluator)
        cached = self._intersections.get(key_set)
        if cached is not None:
            self.stats.intersection_hits += 1
            return cached
        self.stats.intersection_misses += 1
        ordered = sorted(key_set, key=_key_order)
        last = ordered[-1]
        prefix = self.intersection(ordered[:-1], evaluator)
        leaf = self.partition_for(last, evaluator)
        partition = prefix.intersect(leaf)
        self._intersections[key_set] = partition
        return partition

    def attribute_set_partition(self, attributes: Sequence[str]) -> StrippedPartition:
        """The (possibly multi-) attribute partition of plain values — the
        grouping every FD-style consumer used to rebuild per candidate."""
        keys = [PartitionKey(attribute) for attribute in attributes]
        if len(keys) == 1:
            return self.attribute_partition(keys[0].attribute)
        return self.intersection(keys)

    # -- invalidation --------------------------------------------------------

    def invalidate_attribute(self, attribute: str) -> None:
        """Drop every cached partition that reads ``attribute``."""
        self._attribute.pop(attribute, None)
        self._pattern = {
            key: partition
            for key, partition in self._pattern.items()
            if key.attribute != attribute
        }
        self._intersections = {
            key_set: partition
            for key_set, partition in self._intersections.items()
            if all(key.attribute != attribute for key in key_set)
        }

    def invalidate(self) -> None:
        """Drop every cached partition (counters are kept)."""
        self._attribute.clear()
        self._pattern.clear()
        self._intersections.clear()

    def cached_partition_count(self) -> int:
        return len(self._attribute) + len(self._pattern) + len(self._intersections)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionManager(cached={self.cached_partition_count()}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


def _key_order(key: PartitionKey) -> tuple[str, str]:
    """Canonical leaf order inside an intersection (attribute, then pattern
    string), so equal key sets always peel the same prefix."""
    if key.pattern is None:
        return (key.attribute, "")
    return (key.attribute, key.pattern.pattern.to_pattern_string())
