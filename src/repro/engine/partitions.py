"""Stripped partitions (position list indexes) over dictionary-encoded columns.

A *partition* of a relation groups tuple ids into equivalence classes: two
rows belong to the same class when they agree on the grouping key.  TANE
(Huhtala et al.) made two observations that this module adopts wholesale:

* classes of size one can never witness a violation of a functional
  dependency, so they are **stripped** — dropped from the representation;
* the partition of a multi-attribute set ``{A, B}`` is the *product* of the
  single-attribute partitions, computable from the stripped classes alone
  with the classic probe-table algorithm — it never has to be re-grouped
  from the raw rows.

The pattern twist of this library adds a third kind of grouping key: the
*extracted constrained part* of a tableau pattern.  A pattern-projected
partition groups the rows whose value matches the pattern by that part, and
is seeded from the engine's memoized per-distinct-value matches
(:meth:`~repro.engine.evaluator.PatternEvaluator.match_column`, itself fed by
the shared-DFA :class:`~repro.engine.evaluator.ColumnMatchSet` masks), so
building one costs no pattern matching beyond what the evaluator already
cached.

Three partition sources, one cache
----------------------------------

:class:`PartitionManager` — created lazily per relation via
:meth:`repro.dataset.relation.Relation.partitions` and invalidated on
mutation exactly like the dictionary cache — memoizes:

(a) **attribute partitions**, read straight off
    :meth:`~repro.engine.dictionary.DictionaryColumn.rows_by_code` (the
    dictionary's row lists *are* the equivalence classes);
(b) **pattern-projected partitions**, keyed by ``(attribute, pattern)``;
(c) **multi-attribute/pattern intersections**, keyed by the frozen set of
    leaf keys and built by peeling one leaf off a memoized level-``(n-1)``
    prefix — the lattice-descent shape of level-wise discovery, where every
    level-``n`` candidate shares its first ``n-1`` attributes with a
    previously validated candidate.

Everything downstream — ``PFD.violations``, FD checking, the discovery
baselines, error detection and repair — asks this manager for classes
instead of re-grouping the relation row by row, which makes per-candidate
work scale with the number (and size) of surviving equivalence classes
rather than with the raw row count.

A partition object is an immutable snapshot: like a ``DictionaryColumn``, it
keeps meaning after the relation mutates, but the manager will no longer
hand it out.

Delta maintenance
-----------------

Batch ingestion (:meth:`repro.dataset.relation.Relation.append_rows`) does
not invalidate this cache — it *extends* it.  :meth:`PartitionManager.extend`
receives the per-column :class:`~repro.engine.dictionary.DictionaryDelta`
records and

* patches every cached **attribute partition** by appending the new row ids
  to their equivalence classes (promoting singletons that gained a partner,
  inserting classes of newly seen values in first-occurrence order) —
  reading the row lists the dictionary already maintains in place;
* patches every cached **pattern partition** from per-key grouping state
  kept since the build: only the distinct values first seen in the batch
  are matched against the pattern, and the new covered rows are appended to
  their component groups;
* marks every memoized **intersection** whose leaves were patched as
  *stale*: the next request refreshes it by re-running the probe-table
  product over the patched leaf classes (cost ``O(||π||)``, never a regroup
  of raw rows), so appends themselves stay O(patched leaves) and entries a
  workload stopped reading cost nothing; entries it cannot patch (no delta
  available for the column) are dropped and rebuilt cold on demand.

The patched partitions are bit-identical — classes, class order, covered
rows, and row counts — to what a from-scratch rebuild would produce, which
the incremental-append property tests pin.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import TYPE_CHECKING, Iterable, Mapping, Optional, Sequence, Union

from ..patterns.alphabet import CharClass
from ..patterns.ast import ClassAtom, ConstrainedGroup, Pattern, Repeat
from ..patterns.matcher import CompiledPattern, compile_pattern
from .dictionary import DictionaryDelta
from .evaluator import PatternEvaluator, default_evaluator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset -> engine)
    from ..dataset.relation import Relation

PatternLike = Union[Pattern, str, CompiledPattern]

#: The tableau wildcard's pattern ``{{\A*}}`` matches every non-empty value
#: and constrains the whole value — its projected partition is exactly the
#: attribute partition, so keys carrying it are canonicalized to plain
#: attribute keys (one shared cache entry instead of two).
_WILDCARD_PATTERN = Pattern(
    (ConstrainedGroup((Repeat(ClassAtom(CharClass.ANY), 0, None),)),)
)


class StrippedPartition:
    """Equivalence classes of size >= 2 over row ids.

    Attributes
    ----------
    classes:
        The stripped classes: tuples of row ids, each ascending, ordered by
        their smallest member (which equals first-seen order of the grouping
        keys — consumers that used to iterate insertion-ordered dicts see
        the same sequence).
    row_count:
        Total rows of the underlying relation (for error/coverage ratios).

    The *covered* rows — every row the grouping key is defined on, including
    the stripped singletons — are kept alongside because PFD semantics need
    them (tableau-row support counts rows, not classes; constant rows apply
    to single tuples).  For intersections they are derived lazily from the
    parent partitions, so candidates rejected on classes alone never pay for
    them.
    """

    __slots__ = ("classes", "row_count", "_covered", "_parents", "_probe", "_stripped")

    def __init__(
        self,
        classes: Sequence[Sequence[int]],
        row_count: int,
        covered: Optional[Sequence[int]] = None,
        parents: Optional[tuple["StrippedPartition", "StrippedPartition"]] = None,
    ):
        self.classes: tuple[tuple[int, ...], ...] = tuple(
            tuple(class_rows) for class_rows in classes
        )
        self.row_count = row_count
        self._covered: Optional[tuple[int, ...]] = (
            tuple(covered) if covered is not None else None
        )
        self._parents = parents
        self._probe: Optional[dict[int, int]] = None
        self._stripped: Optional[int] = None

    # -- size ----------------------------------------------------------------

    @property
    def class_count(self) -> int:
        """Number of stripped (size >= 2) classes."""
        return len(self.classes)

    @property
    def stripped_row_count(self) -> int:
        """Total rows inside the stripped classes (TANE's ``||π||``)."""
        if self._stripped is None:
            self._stripped = sum(len(class_rows) for class_rows in self.classes)
        return self._stripped

    @property
    def covered(self) -> tuple[int, ...]:
        """All rows the grouping key is defined on (singletons included)."""
        if self._covered is None:
            if self._parents is None:
                raise ValueError("partition was built without covered rows")
            left, right = self._parents
            right_covered = set(right.covered)
            self._covered = tuple(
                row for row in left.covered if row in right_covered
            )
        return self._covered

    @property
    def covered_count(self) -> int:
        return len(self.covered)

    @property
    def error(self) -> float:
        """TANE's partition error ``e``: the fraction of rows that must be
        removed before the grouping key identifies tuples uniquely."""
        if not self.row_count:
            return 0.0
        return (self.stripped_row_count - self.class_count) / self.row_count

    # -- algebra -------------------------------------------------------------

    def probe_table(self) -> dict[int, int]:
        """Row id -> index of its stripped class (singletons absent)."""
        if self._probe is None:
            probe: dict[int, int] = {}
            for index, class_rows in enumerate(self.classes):
                for row in class_rows:
                    probe[row] = index
            self._probe = probe
        return self._probe

    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """The product partition (rows equivalent under *both* keys).

        The classic probe-table algorithm: only the stripped classes are
        visited, so the cost is ``O(||self|| + ||other||)`` — independent of
        the relation's row count.
        """
        if not self.classes or not other.classes:
            return StrippedPartition((), self.row_count, parents=(self, other))
        probe = self.probe_table()
        produced: list[tuple[int, ...]] = []
        for class_rows in other.classes:
            groups: dict[int, list[int]] = {}
            for row in class_rows:
                index = probe.get(row)
                if index is not None:
                    groups.setdefault(index, []).append(row)
            for rows in groups.values():
                if len(rows) >= 2:
                    produced.append(tuple(rows))
        produced.sort(key=lambda rows: rows[0])
        return StrippedPartition(produced, self.row_count, parents=(self, other))

    def refines(self, other: "StrippedPartition") -> bool:
        """True when every class of ``self`` sits inside one class of
        ``other`` (the TANE validity check for exact dependencies)."""
        probe = other.probe_table()
        for class_rows in self.classes:
            target = probe.get(class_rows[0])
            if target is None:
                return False
            for row in class_rows[1:]:
                if probe.get(row) != target:
                    return False
        return True

    def refines_codes(self, codes: Sequence[int]) -> bool:
        """True when every class agrees on ``codes`` (a per-row code array,
        e.g. a RHS column's dictionary codes — empty values included, which
        is exactly the textbook FD comparison semantics)."""
        for class_rows in self.classes:
            expected = codes[class_rows[0]]
            for row in class_rows[1:]:
                if codes[row] != expected:
                    return False
        return True

    def minority_rows(self, codes: Sequence[int]) -> list[int]:
        """Rows outside the majority ``codes`` bucket of their class.

        The per-class majority is the bucket with the most rows (ties broken
        toward the smaller code, matching first-seen value order); the
        returned suspects drive approximate-dependency ratios without
        materializing violation objects.
        """
        suspects: list[int] = []
        for class_rows in self.classes:
            buckets: dict[int, list[int]] = {}
            for row in class_rows:
                buckets.setdefault(codes[row], []).append(row)
            if len(buckets) < 2:
                continue
            majority = max(buckets.items(), key=lambda item: (len(item[1]), -item[0]))[0]
            for code, rows in buckets.items():
                if code != majority:
                    suspects.extend(rows)
        return suspects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StrippedPartition(classes={self.class_count}, "
            f"stripped_rows={self.stripped_row_count}, rows={self.row_count})"
        )


@dataclasses.dataclass(frozen=True)
class PartitionKey:
    """Cache key of one leaf partition: an attribute, optionally projected
    through a tableau pattern (``pattern is None`` = plain attribute)."""

    attribute: str
    pattern: Optional[CompiledPattern] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.pattern is None:
            return f"PartitionKey({self.attribute!r})"
        return f"PartitionKey({self.attribute!r}, {self.pattern.pattern.to_pattern_string()!r})"


@dataclasses.dataclass
class PartitionStats:
    """Cache-effectiveness counters of one :class:`PartitionManager`."""

    attribute_hits: int = 0
    attribute_misses: int = 0
    pattern_hits: int = 0
    pattern_misses: int = 0
    intersection_hits: int = 0
    intersection_misses: int = 0
    #: Cached partitions patched in place by :meth:`PartitionManager.extend`
    #: (delta maintenance instead of a full rebuild).
    attribute_extends: int = 0
    pattern_extends: int = 0
    intersection_refreshes: int = 0

    @property
    def hits(self) -> int:
        return self.attribute_hits + self.pattern_hits + self.intersection_hits

    @property
    def misses(self) -> int:
        return self.attribute_misses + self.pattern_misses + self.intersection_misses

    @property
    def extends(self) -> int:
        return self.attribute_extends + self.pattern_extends + self.intersection_refreshes

    def summary(self) -> str:
        return (
            f"partition cache: {self.hits} hits / {self.misses} misses "
            f"(attribute {self.attribute_hits}/{self.attribute_misses}, "
            f"pattern {self.pattern_hits}/{self.pattern_misses}, "
            f"intersection {self.intersection_hits}/{self.intersection_misses}), "
            f"{self.extends} delta extends"
        )


class _PatternGroups:
    """Mutable grouping state behind one cached pattern partition.

    Kept so :meth:`PartitionManager.extend_pattern` can patch the partition
    in O(delta): ``components[code]`` is the extracted constrained part of
    the distinct value at ``code`` (``None`` = uncovered), ``groups`` maps a
    component to *all* its row ids (singletons included — the stripped
    classes are derived by filtering), ``covered`` is the ascending covered
    row list.
    """

    __slots__ = ("components", "groups", "covered")

    def __init__(self) -> None:
        self.components: list[Optional[str]] = []
        self.groups: dict[str, list[int]] = {}
        self.covered: list[int] = []

    def append_component(self, value: str, result) -> None:
        """Record the grouping component of one distinct value: ``None``
        excludes its rows (empty value or failed match); a match without a
        constrained part contributes a constant component — matching is then
        the only requirement."""
        if not value or not result.matched:
            self.components.append(None)
        elif result.constrained_value is not None:
            self.components.append(result.constrained_value)
        else:
            self.components.append("")

    def partition(self, row_count: int) -> StrippedPartition:
        classes = [tuple(rows) for rows in self.groups.values() if len(rows) >= 2]
        return StrippedPartition(classes, row_count, covered=tuple(self.covered))


class PartitionManager:
    """Build, cache, and intersect stripped partitions for one relation.

    Obtained via :meth:`repro.dataset.relation.Relation.partitions`; the
    relation invalidates the affected entries on cell overwrites
    (``set_cell`` drops one attribute's partitions and every intersection
    touching it) and *extends* them on batch ingestion (``append_rows``
    routes the per-column dictionary deltas through :meth:`extend`), so a
    served partition always reflects the current rows.  Counters in
    :attr:`stats` survive invalidation — they describe the manager's whole
    lifetime.
    """

    def __init__(self, relation: "Relation"):
        self._relation = relation
        self._attribute: dict[str, StrippedPartition] = {}
        self._pattern: dict[PartitionKey, StrippedPartition] = {}
        self._pattern_groups: dict[PartitionKey, _PatternGroups] = {}
        self._intersections: dict[frozenset[PartitionKey], StrippedPartition] = {}
        #: Intersections evicted by :meth:`extend` whose leaves were all
        #: patched: the next request refreshes them from the patched leaf
        #: classes and is counted as a refresh, not a cold build.
        self._stale_intersections: set[frozenset[PartitionKey]] = set()
        self.stats = PartitionStats()

    # -- keys ----------------------------------------------------------------

    def key(self, attribute: str, pattern: Optional[PatternLike] = None) -> PartitionKey:
        """The canonical cache key for ``attribute`` (optionally projected
        through ``pattern``; the wildcard pattern canonicalizes away)."""
        if pattern is None:
            return PartitionKey(attribute)
        compiled = pattern if isinstance(pattern, CompiledPattern) else compile_pattern(pattern)
        if compiled.pattern == _WILDCARD_PATTERN:
            return PartitionKey(attribute)
        return PartitionKey(attribute, compiled)

    # -- leaf partitions -----------------------------------------------------

    def attribute_partition(self, attribute: str) -> StrippedPartition:
        """Equivalence classes of whole attribute values (empty cells are
        uncovered, mirroring the grouping semantics of FD/PFD evaluation)."""
        cached = self._attribute.get(attribute)
        if cached is not None:
            self.stats.attribute_hits += 1
            return cached
        self.stats.attribute_misses += 1
        column = self._relation.dictionary(attribute)
        rows_by_code = column.rows_by_code()
        # Dictionary values are in first-seen order, so walking the codes in
        # order yields classes already sorted by their smallest row id.
        classes = []
        for code, value in enumerate(column.values):
            if value and len(rows_by_code[code]) >= 2:
                classes.append(tuple(rows_by_code[code]))
        empty_code = column.code_of("")
        if empty_code is None:
            covered: tuple[int, ...] = tuple(range(column.row_count))
        else:
            covered = tuple(
                row for row, code in enumerate(column.codes) if code != empty_code
            )
        partition = StrippedPartition(classes, column.row_count, covered=covered)
        self._attribute[attribute] = partition
        return partition

    def pattern_partition(
        self,
        attribute: str,
        pattern: PatternLike,
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """Rows matching ``pattern``, grouped by extracted constrained part.

        Matching runs through the evaluator's memoized per-distinct-value
        results (seeded from any prior set-at-a-time batch), so only the
        row-id grouping itself is new work — and it happens once per
        (attribute, pattern), no matter how many tableau rows, candidates,
        or detection passes ask again.
        """
        key = self.key(attribute, pattern)
        if key.pattern is None:
            return self.attribute_partition(attribute)
        return self._pattern_partition(key, evaluator)

    def _pattern_partition(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator]
    ) -> StrippedPartition:
        cached = self._pattern.get(key)
        if cached is not None:
            self.stats.pattern_hits += 1
            return cached
        self.stats.pattern_misses += 1
        evaluator = evaluator or default_evaluator()
        column = self._relation.dictionary(key.attribute)
        match = evaluator.match_column(key.pattern, column)
        state = _PatternGroups()
        for value, result in zip(column.values, match.results):
            state.append_component(value, result)
        for row, code in enumerate(column.codes):
            component = state.components[code]
            if component is None:
                continue
            state.covered.append(row)
            state.groups.setdefault(component, []).append(row)
        partition = state.partition(column.row_count)
        self._pattern[key] = partition
        self._pattern_groups[key] = state
        return partition

    def partition_for(
        self, key: PartitionKey, evaluator: Optional[PatternEvaluator] = None
    ) -> StrippedPartition:
        """The leaf partition of one canonical key."""
        if key.pattern is None:
            return self.attribute_partition(key.attribute)
        return self._pattern_partition(key, evaluator)

    # -- intersections -------------------------------------------------------

    def intersection(
        self,
        keys: Iterable[PartitionKey],
        evaluator: Optional[PatternEvaluator] = None,
    ) -> StrippedPartition:
        """The product of the leaf partitions of ``keys``, memoized.

        A level-``n`` request peels one leaf off the canonically ordered key
        set and intersects it into the memoized level-``(n-1)`` prefix, so a
        lattice descent reuses every previously intersected prefix instead
        of rebuilding from the rows.
        """
        key_set = frozenset(keys)
        if not key_set:
            raise ValueError("intersection() needs at least one partition key")
        if len(key_set) == 1:
            return self.partition_for(next(iter(key_set)), evaluator)
        cached = self._intersections.get(key_set)
        if cached is not None:
            self.stats.intersection_hits += 1
            return cached
        if key_set in self._stale_intersections:
            self._stale_intersections.discard(key_set)
            self.stats.intersection_refreshes += 1
        else:
            self.stats.intersection_misses += 1
        ordered = sorted(key_set, key=_key_order)
        last = ordered[-1]
        prefix = self.intersection(ordered[:-1], evaluator)
        leaf = self.partition_for(last, evaluator)
        partition = prefix.intersect(leaf)
        self._intersections[key_set] = partition
        return partition

    def attribute_set_partition(self, attributes: Sequence[str]) -> StrippedPartition:
        """The (possibly multi-) attribute partition of plain values — the
        grouping every FD-style consumer used to rebuild per candidate."""
        keys = [PartitionKey(attribute) for attribute in attributes]
        if len(keys) == 1:
            return self.attribute_partition(keys[0].attribute)
        return self.intersection(keys)

    # -- delta maintenance ---------------------------------------------------

    def extend(self, deltas: Mapping[str, DictionaryDelta]) -> None:
        """Patch every cached partition for a batch of appended rows.

        ``deltas`` maps attribute names to the
        :class:`~repro.engine.dictionary.DictionaryDelta` their dictionary
        returned from the in-place extend (missing attributes had no cached
        dictionary — their partitions, if any, are dropped and rebuilt on
        demand).  Leaf partitions are patched in place; memoized
        intersections are marked stale and refreshed on next request by the
        probe-table product over the patched leaf classes, reusing the
        level-wise prefix descent.  Partition *objects* are never mutated —
        each cache slot receives a fresh snapshot, so partitions handed out
        before the append keep describing the old rows.
        """
        for attribute in list(self._attribute):
            delta = deltas.get(attribute)
            if delta is None:
                self._attribute.pop(attribute)
            else:
                self.extend_attribute(attribute, delta)
        for key in list(self._pattern):
            delta = deltas.get(key.attribute)
            state = self._pattern_groups.get(key)
            if delta is None or state is None:
                self._pattern.pop(key)
                self._pattern_groups.pop(key, None)
            else:
                self.extend_pattern(key, delta)
        # Intersections go stale, not cold: entries whose leaves were all
        # patched are refreshed lazily — the next request re-runs the
        # probe-table product over the patched leaf classes (the memoized
        # prefix descent refreshes stale prefixes on the way).  Appending is
        # therefore O(patched leaves), never O(cached intersections), and
        # entries a workload stopped reading cost nothing.
        candidates = set(self._intersections) | self._stale_intersections
        self._stale_intersections = {
            key_set
            for key_set in candidates
            if all(
                (key.pattern is None and key.attribute in self._attribute)
                or (key.pattern is not None and key in self._pattern)
                for key in key_set
            )
        }
        self._intersections.clear()

    def extend_attribute(self, attribute: str, delta: DictionaryDelta) -> StrippedPartition:
        """Patch the cached attribute partition with one appended batch.

        Appended row ids join the class of their code; singletons that
        gained a partner are promoted to classes (inserted in
        first-occurrence order, which keeps the class sequence identical to
        a from-scratch build); values first seen in the batch open new
        classes once they reach two rows.  Reads the row lists the
        dictionary maintains in place — no regrouping.
        """
        column = self._relation.dictionary(attribute)
        old = self._attribute.get(attribute)
        if old is None:
            return self.attribute_partition(attribute)
        rows_by_code = column.rows_by_code()
        added_by_code: dict[int, int] = {}
        for code in delta.appended_codes:
            added_by_code[code] = added_by_code.get(code, 0) + 1
        classes = list(old.classes)
        firsts = [class_rows[0] for class_rows in classes]
        for code, added in added_by_code.items():
            if not column.values[code]:
                continue
            rows = rows_by_code[code]
            if len(rows) < 2:
                continue
            full = tuple(rows)
            if len(rows) - added >= 2:
                # Existing class: same first member, rows appended at the end.
                index = bisect.bisect_left(firsts, full[0])
                classes[index] = full
            else:
                # Promoted singleton or a value first seen in this batch.
                index = bisect.bisect_left(firsts, full[0])
                classes.insert(index, full)
                firsts.insert(index, full[0])
        covered = old.covered + tuple(
            delta.start_row + offset
            for offset, code in enumerate(delta.appended_codes)
            if column.values[code]
        )
        partition = StrippedPartition(classes, column.row_count, covered=covered)
        self._attribute[attribute] = partition
        self.stats.attribute_extends += 1
        return partition

    def extend_pattern(self, key: PartitionKey, delta: DictionaryDelta) -> StrippedPartition:
        """Patch one cached pattern-projected partition with a batch.

        Only the distinct values *first seen in the batch* are matched
        against the pattern (``O(new distinct)`` match calls); the appended
        rows are then routed to their component groups through the stored
        grouping state.
        """
        state = self._pattern_groups.get(key)
        if state is None or key not in self._pattern:
            return self._pattern_partition(key, None)
        column = self._relation.dictionary(key.attribute)
        compiled = key.pattern
        assert compiled is not None  # plain-attribute keys never land here
        # Matched directly rather than through an evaluator: the manager does
        # not know which evaluator built the entry, the work is bounded by
        # the batch's new distinct values, and CompiledPattern.match is the
        # same deterministic function every evaluator path bottoms out in.
        for code in range(len(state.components), column.distinct_count):
            value = column.values[code]
            state.append_component(value, compiled.match(value) if value else None)
        for offset, code in enumerate(delta.appended_codes):
            component = state.components[code]
            if component is None:
                continue
            row = delta.start_row + offset
            state.covered.append(row)
            state.groups.setdefault(component, []).append(row)
        partition = state.partition(column.row_count)
        self._pattern[key] = partition
        self.stats.pattern_extends += 1
        return partition

    # -- invalidation --------------------------------------------------------

    def invalidate_attribute(self, attribute: str) -> None:
        """Drop every cached partition that reads ``attribute``."""
        self._attribute.pop(attribute, None)
        self._pattern = {
            key: partition
            for key, partition in self._pattern.items()
            if key.attribute != attribute
        }
        self._pattern_groups = {
            key: state
            for key, state in self._pattern_groups.items()
            if key.attribute != attribute
        }
        self._intersections = {
            key_set: partition
            for key_set, partition in self._intersections.items()
            if all(key.attribute != attribute for key in key_set)
        }
        self._stale_intersections = {
            key_set
            for key_set in self._stale_intersections
            if all(key.attribute != attribute for key in key_set)
        }

    def invalidate(self) -> None:
        """Drop every cached partition (counters are kept)."""
        self._attribute.clear()
        self._pattern.clear()
        self._pattern_groups.clear()
        self._intersections.clear()
        self._stale_intersections.clear()

    def cached_partition_count(self) -> int:
        return len(self._attribute) + len(self._pattern) + len(self._intersections)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PartitionManager(cached={self.cached_partition_count()}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


def _key_order(key: PartitionKey) -> tuple[str, str]:
    """Canonical leaf order inside an intersection (attribute, then pattern
    string), so equal key sets always peel the same prefix."""
    if key.pattern is None:
        return (key.attribute, "")
    return (key.attribute, key.pattern.pattern.to_pattern_string())
