"""Process-parallel execution of discovery and detection.

The paper's two hot loops are embarrassingly parallel once the engine state
is shared: Figure-4 discovery validates every candidate of a lattice level
independently (the only cross-candidate coupling — superset pruning — acts
*between* levels), and error detection evaluates each PFD's violations
independently.  This module owns that parallelism:

* :func:`resolve_workers` — the ``workers=`` knob resolution: an explicit
  value wins, else the ``REPRO_WORKERS`` environment variable, else 1.
  ``workers=1`` means *no pool is ever created*; callers bypass this module
  entirely and run the exact serial code path.
* :class:`ParallelExecutor` — a lazily created
  :class:`~concurrent.futures.ProcessPoolExecutor` bound to one relation
  snapshot.  The dictionary-encoded relation (distinct values + the
  ``int32`` code vectors from :meth:`DictionaryColumn.codes_array`) is
  pickled **once per pool** through the pool initializer, not once per
  task; tasks then carry only candidate descriptions / PFD lists.  The pool
  rebinds (new broadcast) when the relation object or its
  :attr:`~repro.dataset.relation.Relation.version` changes, so appends are
  visible to workers.
* task protocols — :func:`_run_task` dispatches inside the worker:
  ``"discover"`` validates one chunk of a lattice level's LHS groups
  (tableau walk + dominant-RHS counting + generalization screen),
  ``"detect"`` evaluates one chunk of PFDs.  Both tag results with the
  candidate's enumeration position so the parent can merge in exactly the
  serial order — parallel output is pinned bit-identical to serial.

Determinism of the discovery protocol
-------------------------------------

Within one lattice level, ``mark_satisfied(lhs, rhs)`` prunes only *strict*
supersets of ``lhs`` (never another same-size LHS) and
``mark_coverage_deficient(lhs)`` prunes ``lhs`` itself and its supersets
(between equal-size sets, only the identical LHS).  Therefore the set of
candidates a level enumerates is fully determined at the level boundary,
and each LHS group — all surviving RHS of one LHS — can be validated
atomically by any worker.  A worker replicates the serial semantics inside
the group (a coverage-deficient LHS counts exactly one candidate and stops,
matching the serial generator's re-check after ``mark_coverage_deficient``);
the parent applies lattice marks and appends accepted dependencies in
enumeration order at the level barrier.  Candidate counts, per-level
counts, dependencies, and tableaux are bit-identical to the serial loop.

Fork/spawn safety
-----------------

Worker processes never rely on inherited interpreter state:

* task functions and task/result dataclasses are module top-level, so they
  pickle by reference under the ``spawn`` start method;
* the pattern-compilation memos (``compile_pattern_set``, the NFA/DFA
  caches in :mod:`repro.patterns`) are ``functools.lru_cache`` maps from
  immutable inputs to immutable values — they repopulate independently and
  identically in every worker, so both an inherited (fork) and an empty
  (spawn) cache are correct;
* the one mutable process-global that *changes results* — the engine
  backend default in :mod:`repro.engine.backend` — is explicitly seeded in
  every worker from the parent's **resolved** choice (the snapshot carries
  it), never re-read from the ``REPRO_ENGINE`` environment variable, so a
  parent that called :func:`~repro.engine.backend.set_default_backend`
  after startup still gets matching workers;
* evaluators (:class:`~repro.engine.evaluator.PatternEvaluator` holds
  ``WeakKeyDictionary`` memos and is deliberately unpicklable) are created
  fresh inside each worker and shared across that worker's tasks.

``fork`` is preferred when the platform offers it (workers start in
milliseconds and inherit the imported modules); ``spawn`` is the fallback
and is fully supported — override with ``REPRO_START_METHOD`` to force one.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence

from .backend import NUMPY, resolve_backend, set_default_backend
from .partitions import PartitionStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dataset -> engine)
    from ..dataset.relation import Relation


# -- the workers= knob --------------------------------------------------------

def resolve_workers(value: Optional[int] = None) -> int:
    """The effective worker count: explicit value > ``REPRO_WORKERS`` > 1."""
    if value is not None:
        if value < 1:
            raise ValueError(f"workers must be at least 1, got {value}")
        return value
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            parsed = int(env)
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from None
        if parsed < 1:
            raise ValueError(f"REPRO_WORKERS must be at least 1, got {parsed}")
        return parsed
    return 1


def default_start_method() -> str:
    """``REPRO_START_METHOD`` if set, else ``fork`` when available, else
    ``spawn``.  Everything in this module is spawn-safe; fork is simply the
    faster default where the platform offers it."""
    env = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    methods = multiprocessing.get_all_start_methods()
    if env:
        if env not in methods:
            raise ValueError(
                f"REPRO_START_METHOD {env!r} is not available (have {methods})"
            )
        return env
    return "fork" if "fork" in methods else "spawn"


def chunk_round_robin(items: Sequence, chunks: int) -> list[list]:
    """Deal ``items`` into at most ``chunks`` buckets, round robin.

    Neighboring items (which tend to cost alike) land on different workers;
    merge order is recovered from per-item position tags, never from bucket
    order.
    """
    count = max(1, min(chunks, len(items)))
    buckets: list[list] = [[] for _ in range(count)]
    for index, item in enumerate(items):
        buckets[index % count].append(item)
    return [bucket for bucket in buckets if bucket]


# -- observability ------------------------------------------------------------

@dataclasses.dataclass
class ParallelStats:
    """Counters of one :class:`ParallelExecutor` (surfaced by
    :meth:`repro.session.CleaningSession.stats`)."""

    #: Workers in the current/most recent pool (0 = no pool ever created).
    pool_size: int = 0
    #: Pools created (== relation snapshots broadcast).
    broadcasts: int = 0
    #: Total pickled bytes of the broadcast snapshots.
    bytes_broadcast: int = 0
    #: Task submissions across all stages.
    tasks_dispatched: int = 0
    #: Wall-clock seconds spent inside parallel sections, per stage name.
    stage_seconds: dict[str, float] = dataclasses.field(default_factory=dict)

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds


# -- the broadcast snapshot ---------------------------------------------------

@dataclasses.dataclass
class RelationSnapshot:
    """The pickle-once payload a pool initializer ships to every worker.

    ``columns`` maps each attribute to its dictionary: the distinct values
    plus the per-row code vector (an ``int32`` ndarray on the numpy backend
    — pickled as its compact buffer — or a plain list on the python
    backend).  ``backend`` is the parent's *resolved* engine backend.
    """

    schema: object
    backend: str
    columns: dict[str, tuple[tuple[str, ...], object]]


def snapshot_relation(relation: "Relation") -> RelationSnapshot:
    """Capture the dictionary-encoded relation for broadcast."""
    backend = resolve_backend(relation.backend)
    columns: dict[str, tuple[tuple[str, ...], object]] = {}
    for name in relation.attribute_names:
        dictionary = relation.dictionary(name)
        if dictionary.backend == NUMPY:
            codes: object = dictionary.codes_array()
        else:
            codes = list(dictionary.codes)
        columns[name] = (dictionary.values, codes)
    return RelationSnapshot(schema=relation.schema, backend=backend, columns=columns)


def _restore_relation(snapshot: RelationSnapshot) -> "Relation":
    """Rebuild the relation (and its dictionary caches) inside a worker."""
    from ..dataset.relation import Relation
    from .dictionary import DictionaryColumn

    columns: dict[str, list[str]] = {}
    dictionaries: dict[str, DictionaryColumn] = {}
    for name, (values, codes) in snapshot.columns.items():
        column = DictionaryColumn(values, codes, attribute=name, backend=snapshot.backend)
        dictionaries[name] = column
        code_list = codes.tolist() if hasattr(codes, "tolist") else codes
        columns[name] = [values[code] for code in code_list]
    relation = Relation(snapshot.schema, columns, backend=snapshot.backend)
    # Pre-install the shipped dictionaries: identical values/codes mean every
    # downstream structure (masks, partitions) is bit-identical to the parent.
    relation._dictionaries = dictionaries
    return relation


# -- worker-side state --------------------------------------------------------

class _WorkerState:
    """Everything one worker process holds between tasks."""

    def __init__(self, snapshot: RelationSnapshot):
        from .evaluator import PatternEvaluator

        # Seed the process default from the parent's resolved backend (the
        # snapshot value), NOT from a re-read of REPRO_ENGINE: a parent that
        # picked its backend programmatically must get matching workers.
        set_default_backend(snapshot.backend)
        self.relation = _restore_relation(snapshot)
        self.evaluator = PatternEvaluator()
        self._discovery_contexts: list[tuple[object, object, tuple]] = []

    def discovery_context(self, config, profile) -> tuple:
        """A (discoverer, index) pair per (config, profile), built lazily and
        reused by every discovery task of this worker."""
        for cached_config, cached_profile, context in self._discovery_contexts:
            if cached_config == config and cached_profile == profile:
                return context
        from ..dataset.index import PatternIndex
        from ..discovery.pfd_discovery import PFDDiscoverer

        discoverer = PFDDiscoverer(config, evaluator=self.evaluator)
        index = PatternIndex(
            self.relation,
            profile=profile,
            prune_substrings=config.prune_substrings,
            prefixes_only=config.prefixes_only,
            evaluator=self.evaluator,
        )
        context = (discoverer, index)
        self._discovery_contexts.append((config, profile, context))
        return context


_STATE: Optional[_WorkerState] = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the broadcast exactly once per worker."""
    global _STATE
    _STATE = _WorkerState(pickle.loads(payload))


# -- task protocols -----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class _DiscoveryTask:
    """One chunk of a lattice level: whole LHS groups, validated atomically."""

    config: object
    profile: object
    coverage_floor: int
    #: ``(position, lhs, rhs_tuple)`` triples; position is the group's index
    #: in the level's serial enumeration order.
    groups: tuple[tuple[int, tuple[str, ...], tuple[str, ...]], ...]


@dataclasses.dataclass(frozen=True)
class _GroupOutcome:
    """What validating one LHS group produced."""

    position: int
    lhs: tuple[str, ...]
    #: Candidates the serial loop would have counted for this group.
    candidates: int
    #: The LHS partition missed the coverage floor (prunes the superset cone).
    deficient: bool
    #: Accepted dependencies, in RHS enumeration order.
    accepted: tuple


@dataclasses.dataclass(frozen=True)
class _DetectionTask:
    """One chunk of PFDs to evaluate; positions restore the serial order."""

    positions: tuple[int, ...]
    pfds: tuple
    since_row: int
    #: Explicit CRUD-delta scope (normalized sorted row ids); None = since_row.
    changed_rows: Optional[tuple[int, ...]] = None


def _stats_delta(before: PartitionStats, after: PartitionStats) -> PartitionStats:
    fields = dataclasses.fields(PartitionStats)
    return PartitionStats(
        **{f.name: getattr(after, f.name) - getattr(before, f.name) for f in fields}
    )


def merge_partition_stats(target: PartitionStats, delta: PartitionStats) -> PartitionStats:
    """Field-wise sum (the level-barrier merge of worker counters)."""
    fields = dataclasses.fields(PartitionStats)
    return PartitionStats(
        **{f.name: getattr(target, f.name) + getattr(delta, f.name) for f in fields}
    )


def _discovery_task(task: _DiscoveryTask) -> tuple[int, list, PartitionStats]:
    """Validate one chunk of LHS groups; returns (index entries, outcomes,
    partition-counter delta)."""
    state = _STATE
    assert state is not None
    discoverer, index = state.discovery_context(task.config, task.profile)
    relation = state.relation
    manager = relation.partitions()
    before = dataclasses.replace(manager.stats)
    outcomes: list[_GroupOutcome] = []
    for position, lhs, rhs_list in task.groups:
        partition = manager.attribute_set_partition(lhs)
        if partition.covered_count < task.coverage_floor:
            # Serial counts exactly one candidate for a deficient LHS (the
            # level generator re-checks pruning before yielding the rest).
            outcomes.append(
                _GroupOutcome(position, lhs, candidates=1, deficient=True, accepted=())
            )
            continue
        accepted = []
        for rhs in rhs_list:
            dependency = discoverer._evaluate_candidate(relation, index, lhs, rhs)
            if dependency is not None:
                accepted.append(dependency)
        outcomes.append(
            _GroupOutcome(
                position,
                lhs,
                candidates=len(rhs_list),
                deficient=False,
                accepted=tuple(accepted),
            )
        )
    delta = _stats_delta(before, dataclasses.replace(manager.stats))
    return index.total_entries(), outcomes, delta


def _detection_task(task: _DetectionTask) -> list[tuple[int, list]]:
    """Evaluate one chunk of PFDs; returns ``(position, violations)`` pairs."""
    state = _STATE
    assert state is not None
    from ..core.pfd import prime_for_pfds, prime_partitions_for_pfds

    relation = state.relation
    prime_for_pfds(relation, task.pfds, state.evaluator)
    prime_partitions_for_pfds(relation, task.pfds, state.evaluator)
    results: list[tuple[int, list]] = []
    for position, pfd in zip(task.positions, task.pfds):
        violations = list(
            pfd.violations(
                relation,
                evaluator=state.evaluator,
                since_row=task.since_row,
                changed_rows=task.changed_rows,
            )
        )
        results.append((position, violations))
    return results


def _run_task(kind: str, task):
    """The single worker entry point (top-level, so it pickles by reference)."""
    if _STATE is None:
        raise RuntimeError("parallel worker used before its initializer ran")
    if kind == "discover":
        return _discovery_task(task)
    if kind == "detect":
        return _detection_task(task)
    raise ValueError(f"unknown parallel task kind {kind!r}")


# -- the executor -------------------------------------------------------------

class ParallelExecutor:
    """A lazily created process pool bound to one relation broadcast.

    The pool is created on the first :meth:`run_tasks` call and rebound
    (state re-broadcast) when the target relation object or its mutation
    version changes.  ``workers=1`` callers must not construct one — the
    serial code paths bypass this class entirely.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        self.workers = workers
        self.start_method = start_method or default_start_method()
        self.stats = ParallelStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._bound: Optional[tuple[weakref.ref, int]] = None
        #: Guards pool teardown so concurrent/double close() calls never
        #: race into ProcessPoolExecutor.shutdown twice.
        self._close_lock = threading.Lock()

    # -- pool lifecycle ------------------------------------------------------

    def _pool_for(self, relation: "Relation") -> ProcessPoolExecutor:
        if self._pool is not None and self._bound is not None:
            bound_relation, bound_version = self._bound
            if bound_relation() is relation and bound_version == relation.version:
                return self._pool
        self.close()
        payload = pickle.dumps(
            snapshot_relation(relation), protocol=pickle.HIGHEST_PROTOCOL
        )
        context = multiprocessing.get_context(self.start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(payload,),
        )
        self._bound = (weakref.ref(relation), relation.version)
        self.stats.pool_size = self.workers
        self.stats.broadcasts += 1
        self.stats.bytes_broadcast += len(payload)
        return self._pool

    def run_tasks(self, relation: "Relation", kind: str, tasks: Sequence, stage: str) -> list:
        """Submit ``tasks`` against ``relation``'s broadcast; returns results
        in task order (callers merge by per-item position tags)."""
        pool = self._pool_for(relation)
        started = time.perf_counter()
        futures = [pool.submit(_run_task, kind, task) for task in tasks]
        results = [future.result() for future in futures]
        self.stats.tasks_dispatched += len(futures)
        self.stats.record_stage(stage, time.perf_counter() - started)
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent, thread-safe); the next run
        re-broadcasts.  The pool handle is detached under a lock first, so
        two racing closers cannot both enter ``shutdown``."""
        with self._close_lock:
            pool, self._pool = self._pool, None
            self._bound = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "idle" if self._pool is None else "pooled"
        return f"ParallelExecutor(workers={self.workers}, {self.start_method}, {state})"
