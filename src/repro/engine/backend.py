"""Engine backend selection: the NumPy columnar core vs the pure-Python path.

The engine's hot state — dictionary code vectors, match masks, stripped
partition classes — has two interchangeable representations:

``numpy``
    Contiguous ndarrays: ``int32`` code vectors, boolean row masks, and
    ``(sorted_rowids, class_offsets)`` partition pairs, with broadcasts,
    intersections, and reductions vectorized.  The default whenever NumPy is
    importable.
``python``
    The original lists/dicts/sets implementation.  Kept as a first-class
    fallback so environments without NumPy keep working and so property
    tests can pin the two backends bit-identical against each other.
``sql``
    The out-of-core SQLite-pushdown store (:mod:`repro.storage`): rows live
    dictionary-encoded in a temp database and the group-heavy primitives run
    as SQL aggregates, so peak memory stays bounded by the chunk size rather
    than the table.  Engaged per relation via ``Relation(backend="sql")`` or
    ``read_csv(..., backend="sql")``; in-memory relations merely *pinned*
    ``"sql"`` fall back to the pure-Python code paths.

Selection is layered (most specific wins):

1. per relation — ``Relation(backend=...)`` / ``Relation.set_backend``,
   which :class:`repro.session.CleaningSession` and the CLI
   ``--engine {numpy,python,sql}`` flag route through;
2. process default — :func:`set_default_backend`, or the ``REPRO_ENGINE``
   environment variable read at first resolution;
3. built-in default — ``numpy`` when importable, else ``python``.

Both representations produce bit-identical results (same classes, same
orders, same violation lists); the hypothesis backend pins in
``tests/test_engine_backend.py`` enforce this.
"""

from __future__ import annotations

import os
from typing import Optional

NUMPY = "numpy"
PYTHON = "python"
SQL = "sql"
BACKENDS = (NUMPY, PYTHON, SQL)

try:  # pragma: no cover - exercised implicitly by every engine test
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - CI images always carry numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: Process-wide default backend; ``None`` = resolve from the environment.
_default: Optional[str] = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}: expected one of {BACKENDS}"
        )
    if name == NUMPY and not HAS_NUMPY:
        raise RuntimeError(
            "the numpy engine backend was requested but numpy is not importable"
        )
    return name


def available_backends() -> tuple[str, ...]:
    """The backends usable in this process.

    ``sql`` rides the standard library's :mod:`sqlite3`, so it is always
    available; ``numpy`` only when importable.
    """
    return BACKENDS if HAS_NUMPY else (PYTHON, SQL)


def default_backend() -> str:
    """The process default: an explicit :func:`set_default_backend` value,
    else ``REPRO_ENGINE`` from the environment, else numpy-if-available."""
    if _default is not None:
        return _default
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env:
        return _validate(env)
    return NUMPY if HAS_NUMPY else PYTHON


def set_default_backend(name: Optional[str]) -> None:
    """Override the process default (``None`` restores env resolution).

    Only affects engine objects built afterwards; relations that already
    cached dictionaries or partitions keep their representation.
    """
    global _default
    _default = None if name is None else _validate(name)


def resolve_backend(name: Optional[str] = None) -> str:
    """The effective backend for ``name`` (``None``/"" = process default)."""
    if not name:
        return default_backend()
    return _validate(name)


def stable_order(sort_keys):
    """Stable argsort tuned for the engine's ordinal keys (numpy only).

    numpy's ``stable`` kind is a radix sort for <= 16-bit integers but a
    comparison sort for wider ones — an order of magnitude apart on the
    class/component/code ordinals the engine sorts, which are usually tiny
    relative to their dtype.  Downcast when the key domain fits.
    """
    if len(sort_keys) and int(sort_keys.max()) < 32768:
        sort_keys = sort_keys.astype(np.int16)
    return np.argsort(sort_keys, kind="stable")
