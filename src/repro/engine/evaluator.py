"""Memoized batch pattern matching over dictionary-encoded columns.

:meth:`PatternEvaluator.match_column` matches one pattern against every
*distinct* value of a :class:`~repro.engine.dictionary.DictionaryColumn` and
memoizes the resulting :class:`ColumnMatch`.  Consumers broadcast the
per-distinct results to rows through the column's codes, so a (pattern,
column) pair costs at most one :meth:`CompiledPattern.match` call per
distinct value, ever — no matter how many tableau rows, candidate
dependencies, or detection passes re-evaluate it.

:meth:`PatternEvaluator.match_column_many` goes one step further for the
many-patterns-one-column shape (K-row tableaux, K sibling candidates): the
whole pattern set is compiled into one shared DFA
(:func:`repro.patterns.multi.compile_pattern_set`) and each distinct value is
scanned **once**, yielding the bitmask of all matching patterns — a
:class:`ColumnMatchSet`.  The set is memoized weakly per column and grows
incrementally as new patterns join; a subsequent per-pattern
:meth:`match_column` call is seeded from the masks, so constrained-part
extraction (the only thing the DFA cannot answer) runs the per-pattern regex
on the *matching* distinct values only.  When the shared DFA cannot be built
within its state budget — or for single-pattern sets — the evaluator falls
back to the per-pattern path transparently.

The caches are keyed weakly by the ``DictionaryColumn`` object: relations
drop (and re-create) their cached dictionaries on cell overwrites, so a
stale entry can never be observed, and dictionaries of dead relations are
evicted automatically.

Batch ingestion (:meth:`repro.dataset.relation.Relation.append_rows`)
*extends* dictionaries in place instead of dropping them, so a cached
``ColumnMatch`` / ``ColumnMatchSet`` can be shorter than its column.  Both
entry points self-heal: before serving a cached entry they compare lengths
against ``column.distinct_count`` and match only the *newly introduced*
distinct values — through the shared DFA for the mask sets (the set
compilation is memoized globally, so repeated extends reuse it) and through
the per-pattern matcher for constrained-part results.  Because any evaluator
may hold masks for a column the relation just extended, healing happens at
read time per evaluator; no notification protocol is needed, and a stale
length can never be observed by consumers that go through the evaluator.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Optional, Union

from ..patterns.ast import Pattern
from ..patterns.matcher import CompiledPattern, MatchResult, compile_pattern
from ..patterns.multi import DEFAULT_STATE_BUDGET, compile_pattern_set, is_dfa_friendly
from .backend import NUMPY, np
from .dictionary import DictionaryColumn

PatternLike = Union[Pattern, str, CompiledPattern]

_FAILED = MatchResult(False)


class ColumnMatch:
    """Per-distinct-value match results of one pattern on one column.

    ``results[code]`` is the :class:`MatchResult` of the pattern on
    ``column.values[code]``.  The column is referenced weakly so that a
    cached ``ColumnMatch`` never pins its (possibly discarded) column — the
    evaluator's weak-keyed memo can evict entries of dead relations.
    """

    __slots__ = ("_column_ref", "compiled", "results", "_mask_array")

    def __init__(
        self,
        column: DictionaryColumn,
        compiled: CompiledPattern,
        results: tuple[MatchResult, ...],
    ):
        self._column_ref = weakref.ref(column)
        self.compiled = compiled
        self.results = results
        #: Cached boolean ndarray of ``matched_mask`` (numpy-backend columns);
        #: dropped whenever ``results`` grows.
        self._mask_array: Optional["np.ndarray"] = None

    @property
    def column(self) -> DictionaryColumn:
        column = self._column_ref()
        if column is None:
            raise ReferenceError(
                "the DictionaryColumn of this ColumnMatch has been discarded"
            )
        return column

    @property
    def pattern_string(self) -> str:
        return self.compiled.pattern.to_pattern_string()

    def _extend(self, new_results: tuple[MatchResult, ...]) -> None:
        """Grow the per-code results in place (codes only ever append)."""
        self.results = self.results + new_results
        self._mask_array = None

    def result_for_row(self, row_id: int) -> MatchResult:
        return self.results[self.column.codes[row_id]]

    def matched_mask(self) -> list[bool]:
        """Per-code mask: does the distinct value match the pattern?"""
        return [result.matched for result in self.results]

    def matched_array(self) -> "np.ndarray":
        """The per-code mask as a cached boolean ndarray (needs numpy)."""
        if self._mask_array is None:
            self._mask_array = np.fromiter(
                (result.matched for result in self.results),
                dtype=bool,
                count=len(self.results),
            )
        return self._mask_array

    def matched_codes(self) -> list[int]:
        return [code for code, result in enumerate(self.results) if result.matched]

    def matching_rows(self) -> list[int]:
        """Row ids whose value matches, in ascending order (broadcast).

        On numpy-backend columns the per-code mask is broadcast to rows with
        one fancy-indexing operation (``mask[codes]``)."""
        column = self.column
        if column.backend == NUMPY:
            return np.flatnonzero(
                self.matched_array()[column.codes_array()]
            ).tolist()
        return column.broadcast_codes(self.matched_mask())

    def match_count(self) -> int:
        """Number of *rows* (not distinct values) that match."""
        column = self.column
        if column.backend == NUMPY:
            return int(column.counts_array()[self.matched_array()].sum())
        counts = column.counts()
        return sum(counts[code] for code, result in enumerate(self.results) if result.matched)


class ColumnMatchSet:
    """Per-distinct-value match *bitmasks* of a set of patterns on one column.

    ``bits[code]`` has bit ``i`` set iff member pattern ``i`` generates
    ``column.values[code]``.  Members are registered in insertion order and
    the set grows incrementally: when new patterns join (another tableau, a
    new batch of sibling candidates), only the missing patterns are matched —
    set-at-a-time through one shared DFA when possible — and OR-ed into the
    existing masks.

    Like :class:`ColumnMatch`, the column is referenced weakly so a memoized
    set never pins a discarded column.  Unlike :class:`ColumnMatch` it holds
    booleans only; constrained-part extraction stays with the per-pattern
    :class:`CompiledPattern` (see :meth:`PatternEvaluator.match_column`,
    which seeds itself from these masks).
    """

    __slots__ = ("_column_ref", "_members", "_bit_of", "bits", "_mask_arrays")

    def __init__(self, column: DictionaryColumn):
        self._column_ref = weakref.ref(column)
        self._members: list[CompiledPattern] = []
        self._bit_of: dict[CompiledPattern, int] = {}
        self.bits: list[int] = [0] * column.distinct_count
        #: Per-member cached boolean ndarrays of ``matched_mask``, keyed by
        #: bit and tagged with the bits length they were derived from (so a
        #: grown ``bits`` vector invalidates them lazily).
        self._mask_arrays: dict[int, tuple[int, "np.ndarray"]] = {}

    @property
    def column(self) -> DictionaryColumn:
        column = self._column_ref()
        if column is None:
            raise ReferenceError(
                "the DictionaryColumn of this ColumnMatchSet has been discarded"
            )
        return column

    # -- membership --------------------------------------------------------

    @property
    def patterns(self) -> tuple[CompiledPattern, ...]:
        """The member patterns, in registration (bit) order."""
        return tuple(self._members)

    @property
    def pattern_count(self) -> int:
        return len(self._members)

    def __contains__(self, pattern: object) -> bool:
        if isinstance(pattern, (CompiledPattern, Pattern, str)):
            return _compiled(pattern) in self._bit_of
        return False

    def has_pattern(self, pattern: PatternLike) -> bool:
        return _compiled(pattern) in self._bit_of

    def _register(self, compiled: CompiledPattern) -> int:
        bit = self._bit_of.get(compiled)
        if bit is None:
            bit = len(self._members)
            self._bit_of[compiled] = bit
            self._members.append(compiled)
        return bit

    # -- queries -----------------------------------------------------------

    def matched(self, pattern: PatternLike, code: int) -> bool:
        """Does member ``pattern`` generate the distinct value at ``code``?"""
        return bool((self.bits[code] >> self._bit_of[_compiled(pattern)]) & 1)

    def matched_mask(self, pattern: PatternLike) -> list[bool]:
        """Per-code mask of one member pattern (cf. ``ColumnMatch``)."""
        bit = self._bit_of[_compiled(pattern)]
        return [bool((mask >> bit) & 1) for mask in self.bits]

    def matched_array(self, pattern: PatternLike) -> "np.ndarray":
        """The per-code mask of one member as a cached boolean ndarray
        (needs numpy; re-derived lazily after the bits vector grows)."""
        bit = self._bit_of[_compiled(pattern)]
        cached = self._mask_arrays.get(bit)
        if cached is not None and cached[0] == len(self.bits):
            return cached[1]
        mask = np.fromiter(
            ((bits >> bit) & 1 for bits in self.bits),
            dtype=bool,
            count=len(self.bits),
        )
        self._mask_arrays[bit] = (len(self.bits), mask)
        return mask

    def matched_codes(self, pattern: PatternLike) -> list[int]:
        bit = self._bit_of[_compiled(pattern)]
        return [code for code, mask in enumerate(self.bits) if (mask >> bit) & 1]

    def matching_patterns(self, code: int) -> tuple[CompiledPattern, ...]:
        """All member patterns generating the distinct value at ``code``."""
        mask = self.bits[code]
        return tuple(
            compiled for bit, compiled in enumerate(self._members) if (mask >> bit) & 1
        )

    def match_count(self, pattern: PatternLike) -> int:
        """Number of *rows* (not distinct values) matching one member."""
        column = self.column
        if column.backend == NUMPY:
            return int(column.counts_array()[self.matched_array(pattern)].sum())
        bit = self._bit_of[_compiled(pattern)]
        counts = column.counts()
        return sum(
            counts[code] for code, mask in enumerate(self.bits) if (mask >> bit) & 1
        )

    def matching_rows(self, pattern: PatternLike) -> list[int]:
        """Row ids whose value matches one member, ascending (broadcast).

        On numpy-backend columns the per-code mask is broadcast to rows with
        one fancy-indexing operation (``mask[codes]``)."""
        column = self.column
        if column.backend == NUMPY:
            return np.flatnonzero(
                self.matched_array(pattern)[column.codes_array()]
            ).tolist()
        return column.broadcast_codes(self.matched_mask(pattern))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnMatchSet(patterns={len(self._members)}, "
            f"codes={len(self.bits)})"
        )


def _compiled(pattern: PatternLike) -> CompiledPattern:
    if isinstance(pattern, CompiledPattern):
        return pattern
    return compile_pattern(pattern)


class PatternEvaluator:
    """A shared, memoized pattern-on-column matcher.

    One evaluator can (and should) be threaded through discovery, validation,
    and detection so that the same (pattern, column) pair is only ever
    evaluated once.  A module-level default instance is used when callers do
    not supply one; its cache is keyed weakly by column, so it never pins
    relations in memory.

    The per-column memo is deliberately uncapped (eviction happens per
    column, when the column's relation dies or is mutated): typical
    workloads evaluate a bounded set of tableau patterns per column.
    Callers driving very many throwaway candidate patterns against a
    long-lived relation should use a scoped ``PatternEvaluator`` (or call
    :meth:`clear`) rather than the process-wide default.

    Attributes
    ----------
    match_calls:
        Total per-distinct-value ``CompiledPattern.match`` invocations issued.
    cache_hits:
        Number of ``match_column`` calls answered from the memo.
    multi_scans:
        Total shared-DFA scans issued (one per distinct value per
        ``match_column_many`` batch, regardless of the pattern-set size).
    multi_fallbacks:
        Patterns evaluated through the per-pattern fallback inside
        ``match_column_many`` (single-pattern batches or a blown state
        budget).
    pattern_set_compilations:
        Shared-DFA builds requested by this evaluator (one per
        ``match_column_many`` batch with >= 2 new DFA-friendly patterns).
        The builds themselves are memoized globally per frozen pattern set,
        so this counts how often *this* evaluator had to ask — the number a
        :class:`~repro.session.CleaningSession` drives to zero by reusing
        one evaluator across pipeline stages.
    """

    #: Absolute state budget handed to :func:`compile_pattern_set` (the
    #: effective ceiling is also capped relative to the union-NFA size, see
    #: :func:`repro.patterns.multi.build_multi_automaton`); sets exceeding it
    #: fall back to per-pattern matching.
    state_budget = DEFAULT_STATE_BUDGET

    def __init__(self) -> None:
        self._cache: "weakref.WeakKeyDictionary[DictionaryColumn, dict[CompiledPattern, ColumnMatch]]" = (
            weakref.WeakKeyDictionary()
        )
        self._multi: "weakref.WeakKeyDictionary[DictionaryColumn, ColumnMatchSet]" = (
            weakref.WeakKeyDictionary()
        )
        self.match_calls = 0
        self.cache_hits = 0
        self.multi_scans = 0
        self.multi_fallbacks = 0
        self.pattern_set_compilations = 0

    def match_column(self, pattern: PatternLike, column: DictionaryColumn) -> ColumnMatch:
        """Match ``pattern`` against every distinct value of ``column``.

        Results are memoized per (pattern, column); repeated calls are O(1).
        The memo is keyed by the :class:`CompiledPattern` (value-equal by
        AST, hash precomputed), so a cache hit costs a dict lookup, not an
        AST re-serialization.

        When the pattern's boolean mask is already known to the column's
        :class:`ColumnMatchSet` (a prior ``match_column_many`` batch), the
        per-pattern regex runs only on the *matching* distinct values for
        constrained-part extraction; non-matching values are filled with the
        failed result directly.
        """
        compiled = _compiled(pattern)
        per_column = self._cache.get(column)
        if per_column is None:
            per_column = {}
            self._cache[column] = per_column
        cached = per_column.get(compiled)
        if cached is not None:
            if len(cached.results) < column.distinct_count:
                self._heal_column_match(cached, column, compiled)
            self.cache_hits += 1
            return cached
        match = compiled.match
        match_set = self._multi.get(column)
        if match_set is not None and compiled in match_set._bit_of:
            self._sync_match_set(match_set, column)
            # Seeded from the set-at-a-time masks: extract only where matched.
            mask = match_set.matched_mask(compiled)
            results = tuple(
                match(value) if hit else _FAILED
                for hit, value in zip(mask, column.values)
            )
            self.match_calls += sum(mask)
        else:
            results = tuple(match(value) for value in column.values)
            self.match_calls += len(column.values)
        outcome = ColumnMatch(column=column, compiled=compiled, results=results)
        per_column[compiled] = outcome
        return outcome

    def match_column_many(
        self,
        patterns: Iterable[PatternLike],
        column: DictionaryColumn,
    ) -> ColumnMatchSet:
        """Match a whole pattern set against ``column``, set-at-a-time.

        All patterns missing from the column's memoized
        :class:`ColumnMatchSet` are compiled into one shared DFA and every
        distinct value is scanned **once**, no matter how many patterns
        joined; the resulting bitmasks are merged into the set.  Single
        missing patterns — and sets whose subset construction exceeds
        :attr:`state_budget` — fall back to the per-pattern path (whose
        results are shared with :meth:`match_column` either way).
        """
        requested: list[CompiledPattern] = []
        seen: set[CompiledPattern] = set()
        for pattern in patterns:
            compiled = _compiled(pattern)
            if compiled not in seen:
                seen.add(compiled)
                requested.append(compiled)
        match_set = self._multi.get(column)
        if match_set is None:
            match_set = ColumnMatchSet(column)
            self._multi[column] = match_set
        else:
            self._sync_match_set(match_set, column)
        missing = [c for c in requested if c not in match_set._bit_of]
        if missing:
            self._extend_match_set(match_set, column, missing)
        return match_set

    def _heal_column_match(
        self,
        cached: ColumnMatch,
        column: DictionaryColumn,
        compiled: CompiledPattern,
    ) -> None:
        """Grow a memoized :class:`ColumnMatch` to cover codes the column
        gained since it was built (an in-place dictionary extend)."""
        match_set = self._multi.get(column)
        seeded = match_set is not None and compiled in match_set._bit_of
        if seeded:
            # May heal this very entry through its own tail loop; re-check.
            self._sync_match_set(match_set, column)
            if len(cached.results) >= column.distinct_count:
                return
        start = len(cached.results)
        new_values = column.values[start:]
        match = compiled.match
        if seeded:
            bit = match_set._bit_of[compiled]
            bits = match_set.bits
            hits = [(bits[start + offset] >> bit) & 1 for offset in range(len(new_values))]
            new_results = tuple(
                match(value) if hit else _FAILED
                for hit, value in zip(hits, new_values)
            )
            self.match_calls += sum(hits)
        else:
            new_results = tuple(match(value) for value in new_values)
            self.match_calls += len(new_values)
        cached._extend(new_results)

    def _sync_match_set(self, match_set: ColumnMatchSet, column: DictionaryColumn) -> None:
        """Grow a memoized :class:`ColumnMatchSet` to cover codes the column
        gained since the last scan (an in-place dictionary extend).

        Only the *new* distinct values are matched: the DFA-friendly members
        are rescanned set-at-a-time through :func:`compile_pattern_set`
        (memoized globally per frozen pattern set, so consecutive extends
        reuse one compiled automaton) and the rest fall back to per-pattern
        matching of the delta values.
        """
        start = len(match_set.bits)
        if start >= column.distinct_count:
            return
        new_values = column.values[start:]
        match_set.bits.extend(0 for _ in new_values)
        members = match_set.patterns
        if not members:
            return
        friendly = [c for c in members if is_dfa_friendly(c.pattern)]
        remaining = [c for c in members if not is_dfa_friendly(c.pattern)]
        automaton = None
        if len(friendly) >= 2:
            self.pattern_set_compilations += 1
            automaton = compile_pattern_set(
                [compiled.pattern for compiled in friendly],
                state_budget=self.state_budget,
            )
        if automaton is None:
            remaining = list(members)
        else:
            # Remap the automaton's canonical member order onto the set's
            # registration bits (they differ when members accumulated over
            # several batches).
            by_pattern = {compiled.pattern: compiled for compiled in friendly}
            target_bit = [
                match_set._bit_of[by_pattern[member]] for member in automaton.patterns
            ]
            scanned = automaton.match_bits_many(new_values)
            bits = match_set.bits
            for offset, value_bits in enumerate(scanned):
                if not value_bits:
                    continue
                mapped = 0
                source = 0
                while value_bits:
                    if value_bits & 1:
                        mapped |= 1 << target_bit[source]
                    value_bits >>= 1
                    source += 1
                bits[start + offset] |= mapped
            self.multi_scans += len(new_values)
        bits = match_set.bits
        for compiled in remaining:
            bit = match_set._bit_of[compiled]
            match = compiled.match
            for offset, value in enumerate(new_values):
                if match(value).matched:
                    bits[start + offset] |= 1 << bit
            self.match_calls += len(new_values)

    def _extend_match_set(
        self,
        match_set: ColumnMatchSet,
        column: DictionaryColumn,
        missing: list[CompiledPattern],
    ) -> None:
        # Free-start ("contains w") patterns make subset construction
        # exponential by construction; they take the per-pattern fallback
        # while the anchored rest shares one DFA.
        friendly = [c for c in missing if is_dfa_friendly(c.pattern)]
        unfriendly = [c for c in missing if not is_dfa_friendly(c.pattern)]
        automaton = None
        if len(friendly) >= 2:
            self.pattern_set_compilations += 1
            automaton = compile_pattern_set(
                [compiled.pattern for compiled in friendly],
                state_budget=self.state_budget,
            )
        if automaton is None:
            unfriendly = missing
        if automaton is not None:
            # Register members in the automaton's canonical order so its raw
            # bitmask maps onto the registry with a single shift — no per-
            # pattern remapping in the scan loop.
            base = match_set.pattern_count
            by_pattern = {compiled.pattern: compiled for compiled in friendly}
            for member in automaton.patterns:
                match_set._register(by_pattern[member])
            scanned = automaton.match_bits_many(column.values)
            if base == 0:
                # Fresh set: the scan output is the mask vector itself.
                match_set.bits = scanned
            else:
                bits = match_set.bits
                for code, value_bits in enumerate(scanned):
                    if value_bits:
                        bits[code] |= value_bits << base
            self.multi_scans += len(column.values)
        # Fallback: per-pattern matching (PR 1 path) for free-start patterns
        # and for sets whose subset construction blew the state budget.  The
        # ColumnMatch results double as the mask source, so nothing is
        # computed twice.
        for compiled in unfriendly:
            outcome = self.match_column(compiled, column)
            bit = match_set._register(compiled)
            bits = match_set.bits
            for code, result in enumerate(outcome.results):
                if result.matched:
                    bits[code] |= 1 << bit
            self.multi_fallbacks += 1

    def clear(self) -> None:
        """Drop every memoized result (counters are kept)."""
        self._cache = weakref.WeakKeyDictionary()
        self._multi = weakref.WeakKeyDictionary()

    def cached_column_count(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatternEvaluator(columns={self.cached_column_count()}, "
            f"match_calls={self.match_calls}, cache_hits={self.cache_hits})"
        )


_DEFAULT_EVALUATOR = PatternEvaluator()


def default_evaluator() -> PatternEvaluator:
    """The process-wide shared evaluator (used when none is supplied)."""
    return _DEFAULT_EVALUATOR
