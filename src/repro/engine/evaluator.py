"""Memoized batch pattern matching over dictionary-encoded columns.

:meth:`PatternEvaluator.match_column` matches one pattern against every
*distinct* value of a :class:`~repro.engine.dictionary.DictionaryColumn` and
memoizes the resulting :class:`ColumnMatch`.  Consumers broadcast the
per-distinct results to rows through the column's codes, so a (pattern,
column) pair costs at most one :meth:`CompiledPattern.match` call per
distinct value, ever — no matter how many tableau rows, candidate
dependencies, or detection passes re-evaluate it.

The cache is keyed weakly by the ``DictionaryColumn`` object: relations drop
(and re-create) their cached dictionaries on mutation, so a stale entry can
never be observed, and dictionaries of dead relations are evicted
automatically.
"""

from __future__ import annotations

import weakref
from typing import Union

from ..patterns.ast import Pattern
from ..patterns.matcher import CompiledPattern, MatchResult, compile_pattern
from .dictionary import DictionaryColumn

PatternLike = Union[Pattern, str, CompiledPattern]


class ColumnMatch:
    """Per-distinct-value match results of one pattern on one column.

    ``results[code]`` is the :class:`MatchResult` of the pattern on
    ``column.values[code]``.  The column is referenced weakly so that a
    cached ``ColumnMatch`` never pins its (possibly discarded) column — the
    evaluator's weak-keyed memo can evict entries of dead relations.
    """

    __slots__ = ("_column_ref", "compiled", "results")

    def __init__(
        self,
        column: DictionaryColumn,
        compiled: CompiledPattern,
        results: tuple[MatchResult, ...],
    ):
        self._column_ref = weakref.ref(column)
        self.compiled = compiled
        self.results = results

    @property
    def column(self) -> DictionaryColumn:
        column = self._column_ref()
        if column is None:
            raise ReferenceError(
                "the DictionaryColumn of this ColumnMatch has been discarded"
            )
        return column

    @property
    def pattern_string(self) -> str:
        return self.compiled.pattern.to_pattern_string()

    def result_for_row(self, row_id: int) -> MatchResult:
        return self.results[self.column.codes[row_id]]

    def matched_mask(self) -> list[bool]:
        """Per-code mask: does the distinct value match the pattern?"""
        return [result.matched for result in self.results]

    def matched_codes(self) -> list[int]:
        return [code for code, result in enumerate(self.results) if result.matched]

    def matching_rows(self) -> list[int]:
        """Row ids whose value matches, in ascending order (broadcast)."""
        return self.column.broadcast_codes(self.matched_mask())

    def match_count(self) -> int:
        """Number of *rows* (not distinct values) that match."""
        counts = self.column.counts()
        return sum(counts[code] for code, result in enumerate(self.results) if result.matched)


class PatternEvaluator:
    """A shared, memoized pattern-on-column matcher.

    One evaluator can (and should) be threaded through discovery, validation,
    and detection so that the same (pattern, column) pair is only ever
    evaluated once.  A module-level default instance is used when callers do
    not supply one; its cache is keyed weakly by column, so it never pins
    relations in memory.

    The per-column memo is deliberately uncapped (eviction happens per
    column, when the column's relation dies or is mutated): typical
    workloads evaluate a bounded set of tableau patterns per column.
    Callers driving very many throwaway candidate patterns against a
    long-lived relation should use a scoped ``PatternEvaluator`` (or call
    :meth:`clear`) rather than the process-wide default.

    Attributes
    ----------
    match_calls:
        Total per-distinct-value ``CompiledPattern.match`` invocations issued.
    cache_hits:
        Number of ``match_column`` calls answered from the memo.
    """

    def __init__(self) -> None:
        self._cache: "weakref.WeakKeyDictionary[DictionaryColumn, dict[CompiledPattern, ColumnMatch]]" = (
            weakref.WeakKeyDictionary()
        )
        self.match_calls = 0
        self.cache_hits = 0

    def match_column(self, pattern: PatternLike, column: DictionaryColumn) -> ColumnMatch:
        """Match ``pattern`` against every distinct value of ``column``.

        Results are memoized per (pattern, column); repeated calls are O(1).
        The memo is keyed by the :class:`CompiledPattern` (value-equal by
        AST, hash precomputed), so a cache hit costs a dict lookup, not an
        AST re-serialization.
        """
        if isinstance(pattern, CompiledPattern):
            compiled = pattern
        else:
            compiled = compile_pattern(pattern)
        per_column = self._cache.get(column)
        if per_column is None:
            per_column = {}
            self._cache[column] = per_column
        cached = per_column.get(compiled)
        if cached is not None:
            self.cache_hits += 1
            return cached
        match = compiled.match
        results = tuple(match(value) for value in column.values)
        self.match_calls += len(column.values)
        outcome = ColumnMatch(column=column, compiled=compiled, results=results)
        per_column[compiled] = outcome
        return outcome

    def clear(self) -> None:
        """Drop every memoized result (counters are kept)."""
        self._cache = weakref.WeakKeyDictionary()

    def cached_column_count(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatternEvaluator(columns={self.cached_column_count()}, "
            f"match_calls={self.match_calls}, cache_hits={self.cache_hits})"
        )


_DEFAULT_EVALUATOR = PatternEvaluator()


def default_evaluator() -> PatternEvaluator:
    """The process-wide shared evaluator (used when none is supplied)."""
    return _DEFAULT_EVALUATOR
