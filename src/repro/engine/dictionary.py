"""Dictionary encoding of string columns.

A :class:`DictionaryColumn` stores a column once as its distinct values (the
*dictionary*) plus one integer code per row.  Anything that is a function of
the cell value alone — pattern matching, part extraction, equality against a
constant — can then be computed per distinct value and broadcast to rows
through the codes, which is the whole point of the engine: per-row work
becomes per-*distinct*-value work.

The per-row code vector has two representations, selected through
:mod:`repro.engine.backend`: the ``numpy`` backend stores an ``int32``
ndarray (grown geometrically so appends stay amortized O(delta)) and
broadcasts per-code masks to rows with one fancy-indexing operation; the
``python`` backend keeps the original plain list.  Both expose the same
``codes`` sequence — indexable, iterable, ``len()``-able — and produce
identical codes, row lists, and counts.

The class is deliberately standalone (it knows nothing about relations,
schemas, or patterns) so that the dataset and core layers can depend on it
without cycles.  Relations build and cache one instance per column via
:meth:`repro.dataset.relation.Relation.dictionary`.  Cell overwrites
(``set_cell``) invalidate the cache, but batch ingestion *extends* it:
:meth:`DictionaryColumn.extend` appends new rows in place — unseen values
get fresh codes at the end of the dictionary, ``rows_by_code``/``counts``
are patched rather than rebuilt — and returns a :class:`DictionaryDelta`
describing exactly what changed, which the partition layer and the pattern
evaluator use to delta-maintain their own caches.  Existing codes, values,
and row lists are never reordered by an extend, so every result computed
per distinct value stays valid; downstream caches only have to *grow*.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Iterable, Optional, Sequence, Union

from .backend import NUMPY, np, resolve_backend, stable_order


@dataclasses.dataclass(frozen=True)
class DictionaryDelta:
    """What one :meth:`DictionaryColumn.extend` call appended.

    Attributes
    ----------
    attribute:
        The column name (mirrors :attr:`DictionaryColumn.attribute`).
    start_row:
        Row id of the first appended row (== row count before the extend).
    appended_codes:
        One code per appended row, in append order (``start_row + i`` has
        code ``appended_codes[i]``).
    old_distinct_count:
        Dictionary size before the extend; codes ``>= old_distinct_count``
        belong to values first seen in this batch.
    """

    attribute: str
    start_row: int
    appended_codes: tuple[int, ...]
    old_distinct_count: int

    @property
    def row_count(self) -> int:
        return len(self.appended_codes)

    def new_rows(self) -> range:
        """The appended row ids."""
        return range(self.start_row, self.start_row + len(self.appended_codes))


@dataclasses.dataclass(frozen=True)
class DictionaryUpdate:
    """What one :meth:`DictionaryColumn.update_rows` call changed in place.

    Attributes
    ----------
    attribute:
        The column name (mirrors :attr:`DictionaryColumn.attribute`).
    assignments:
        One ``(row_id, old_code, new_code)`` triple per *effective* cell
        overwrite (no-op assignments — the cell already held the value — are
        dropped), in ascending row order.
    old_distinct_count:
        Dictionary size before the update; codes ``>= old_distinct_count``
        belong to values first seen (or revived) by this update.
    """

    attribute: str
    assignments: tuple[tuple[int, int, int], ...]
    old_distinct_count: int

    @property
    def rows(self) -> tuple[int, ...]:
        """The updated row ids, ascending."""
        return tuple(assignment[0] for assignment in self.assignments)

    def __bool__(self) -> bool:
        return bool(self.assignments)


class DictionaryColumn:
    """Distinct values of a column plus a per-row integer code.

    Attributes
    ----------
    attribute:
        The column name (informational only).
    values:
        The distinct cell values in first-seen order; ``values[codes[i]]`` is
        the cell value of row ``i``.
    codes:
        One code per row, indexing into ``values`` — an ``int32`` ndarray
        view on the numpy backend, a plain list on the python backend.
    backend:
        ``"numpy"`` or ``"python"`` (resolved at construction).
    has_updates:
        True once :meth:`update_rows` has run.  Until then, codes are in
        first-seen row order (so walking codes in order visits groups by
        their smallest row id); afterwards consumers that relied on that
        ordering must sort groups explicitly.  Updates may also leave
        *tombstoned* codes behind — values whose count dropped to zero stay
        in ``values``/``code_of`` with an empty row list so every handed-out
        code (and everything memoized per code) keeps its meaning; a later
        write of the same value revives the code instead of minting a new
        one.
    """

    __slots__ = (
        "attribute",
        "values",
        "backend",
        "has_updates",
        "_codes",
        "_length",
        "_code_of",
        "_rows_by_code",
        "_counts",
        "_counts_array",
        "__weakref__",
    )

    def __init__(
        self,
        values: Sequence[str],
        codes: Sequence[int],
        attribute: str = "",
        backend: Optional[str] = None,
    ):
        self.attribute = attribute
        self.values: tuple[str, ...] = tuple(values)
        self.backend = resolve_backend(backend)
        if self.backend == NUMPY:
            array = np.array(codes, dtype=np.int32)
            self._codes: Union[list[int], "np.ndarray"] = array
            self._length = len(array)
        else:
            self._codes = list(codes)
            self._length = len(self._codes)
        self.has_updates = False
        self._code_of: Optional[dict[str, int]] = None
        self._rows_by_code: Optional[list[list[int]]] = None
        self._counts: Optional[list[int]] = None
        self._counts_array: Optional["np.ndarray"] = None

    @classmethod
    def from_values(
        cls,
        cells: Iterable[str],
        attribute: str = "",
        backend: Optional[str] = None,
    ) -> "DictionaryColumn":
        """Encode a raw column (one string per row)."""
        code_of: dict[str, int] = {}
        codes: list[int] = []
        for cell in cells:
            code = code_of.get(cell)
            if code is None:
                code = len(code_of)
                code_of[cell] = code
            codes.append(code)
        column = cls(tuple(code_of), codes, attribute=attribute, backend=backend)
        column._code_of = code_of
        return column

    # -- code storage ---------------------------------------------------------

    @property
    def codes(self) -> Union[list[int], "np.ndarray"]:
        """The per-row code vector (a view; do not mutate)."""
        if self.backend == NUMPY:
            return self._codes[: self._length]
        return self._codes

    def codes_array(self) -> "np.ndarray":
        """The code vector as an ``int32`` ndarray (numpy backend only)."""
        if self.backend != NUMPY:
            raise RuntimeError("codes_array() requires the numpy backend")
        return self._codes[: self._length]

    def _append_codes(self, appended: Sequence[int]) -> None:
        if self.backend == NUMPY:
            needed = self._length + len(appended)
            capacity = len(self._codes)
            if needed > capacity:
                grown = np.empty(max(needed, capacity * 2, 16), dtype=np.int32)
                grown[: self._length] = self._codes[: self._length]
                self._codes = grown
            self._codes[self._length : needed] = appended
            self._length = needed
        else:
            self._codes.extend(appended)
            self._length = len(self._codes)

    # -- mutation -------------------------------------------------------------

    def extend(self, cells: Iterable[str]) -> DictionaryDelta:
        """Append rows in place; returns the delta description.

        Unseen values receive fresh codes *after* every existing one, so all
        previously handed-out codes (and anything memoized per code) remain
        valid; the lazily built ``rows_by_code`` / ``counts`` structures are
        patched rather than invalidated.  On the numpy backend the code
        buffer grows geometrically, so the amortized append cost stays
        O(delta).  This is the primitive behind
        :meth:`repro.dataset.relation.Relation.append_rows`.
        """
        if self._code_of is None:
            self._code_of = {v: code for code, v in enumerate(self.values)}
        code_of = self._code_of
        start_row = self._length
        old_distinct = len(self.values)
        appended: list[int] = []
        new_values: list[str] = []
        for cell in cells:
            code = code_of.get(cell)
            if code is None:
                code = len(code_of)
                code_of[cell] = code
                new_values.append(cell)
            appended.append(code)
        if new_values:
            self.values = self.values + tuple(new_values)
        self._append_codes(appended)
        if self._rows_by_code is not None:
            self._rows_by_code.extend([] for _ in range(len(self.values) - old_distinct))
            for offset, code in enumerate(appended):
                self._rows_by_code[code].append(start_row + offset)
        if self._counts is not None:
            self._counts.extend(0 for _ in range(len(self.values) - old_distinct))
            for code in appended:
                self._counts[code] += 1
        self._counts_array = None
        return DictionaryDelta(
            attribute=self.attribute,
            start_row=start_row,
            appended_codes=tuple(appended),
            old_distinct_count=old_distinct,
        )

    def update_rows(self, assignments: Sequence[tuple[int, str]]) -> DictionaryUpdate:
        """Overwrite cells in place; returns the update description.

        ``assignments`` is ``(row_id, new_value)`` pairs, at most one per
        row.  The dictionary stays append-only: an unseen value receives a
        fresh code after every existing one, a value whose rows all moved
        away keeps its code as a zero-count tombstone (revived if the value
        returns), and existing codes never renumber — so per-code memoized
        state (match masks, component tables) stays valid and only has to
        grow.  The lazily built ``rows_by_code`` / ``counts`` structures are
        patched, not rebuilt.  Assignments whose cell already holds the new
        value are dropped from the returned delta.
        """
        if self._code_of is None:
            self._code_of = {v: code for code, v in enumerate(self.values)}
        code_of = self._code_of
        old_distinct = len(self.values)
        effective: list[tuple[int, int, int]] = []
        new_values: list[str] = []
        codes = self._codes
        for row_id, value in sorted(assignments):
            old_code = int(codes[row_id])
            if self.values[old_code] == value and code_of.get(value) == old_code:
                continue
            new_code = code_of.get(value)
            if new_code is None:
                new_code = len(code_of)
                code_of[value] = new_code
                new_values.append(value)
            if new_code == old_code:
                continue
            effective.append((row_id, old_code, new_code))
        if new_values:
            self.values = self.values + tuple(new_values)
            if self._rows_by_code is not None:
                self._rows_by_code.extend([] for _ in new_values)
            if self._counts is not None:
                self._counts.extend(0 for _ in new_values)
        for row_id, old_code, new_code in effective:
            codes[row_id] = new_code
            if self._rows_by_code is not None:
                old_rows = self._rows_by_code[old_code]
                del old_rows[bisect.bisect_left(old_rows, row_id)]
                bisect.insort(self._rows_by_code[new_code], row_id)
            if self._counts is not None:
                self._counts[old_code] -= 1
                self._counts[new_code] += 1
        if effective:
            self.has_updates = True
            self._counts_array = None
        return DictionaryUpdate(
            attribute=self.attribute,
            assignments=tuple(effective),
            old_distinct_count=old_distinct,
        )

    # -- size ----------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self._length

    @property
    def distinct_count(self) -> int:
        return len(self.values)

    def __len__(self) -> int:
        return self.row_count

    # -- lookup --------------------------------------------------------------

    def value_of_row(self, row_id: int) -> str:
        """The cell value of row ``row_id`` (decoded through the dictionary)."""
        return self.values[self.codes[row_id]]

    def code_of(self, value: str) -> Optional[int]:
        """The code of ``value``, or ``None`` if the value does not occur."""
        if self._code_of is None:
            self._code_of = {v: code for code, v in enumerate(self.values)}
        return self._code_of.get(value)

    def rows_by_code(self) -> list[list[int]]:
        """Row ids per code, each list in ascending order (built lazily)."""
        if self._rows_by_code is None:
            rows: list[list[int]] = [[] for _ in self.values]
            if self.backend == NUMPY:
                # Stable argsort groups rows by code with ascending row ids.
                codes = self.codes_array()
                order = stable_order(codes)
                sorted_codes = codes[order]
                boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
                row_lists = order.tolist()
                start = 0
                for end in (*boundaries.tolist(), len(row_lists)):
                    if end > start:
                        rows[sorted_codes[start]] = row_lists[start:end]
                        start = end
            else:
                for row_id, code in enumerate(self._codes):
                    rows[code].append(row_id)
            self._rows_by_code = rows
        return self._rows_by_code

    def counts(self) -> list[int]:
        """Number of rows per code (built lazily)."""
        if self._counts is None:
            if self.backend == NUMPY:
                self._counts = self.counts_array().tolist()
            else:
                counts = [0] * len(self.values)
                for code in self._codes:
                    counts[code] += 1
                self._counts = counts
        return self._counts

    def counts_array(self) -> "np.ndarray":
        """Rows per code as an int64 ndarray (numpy backend only)."""
        if self.backend != NUMPY:
            raise RuntimeError("counts_array() requires the numpy backend")
        if self._counts_array is None:
            if self._counts is not None:
                self._counts_array = np.asarray(self._counts, dtype=np.int64)
            else:
                self._counts_array = np.bincount(
                    self.codes_array(), minlength=self.distinct_count
                ).astype(np.int64)
        return self._counts_array

    def broadcast_codes(self, accepted: Sequence[bool]) -> list[int]:
        """Row ids whose code is accepted, in ascending order.

        ``accepted`` is a per-code mask (``accepted[code]`` truthy keeps the
        rows carrying that code).  On the numpy backend this is one
        fancy-indexing broadcast instead of a per-row Python loop.
        """
        if self.backend == NUMPY:
            mask = np.asarray(accepted, dtype=bool)
            return np.flatnonzero(mask[self.codes_array()]).tolist()
        return [row_id for row_id, code in enumerate(self._codes) if accepted[code]]

    @property
    def duplication_factor(self) -> float:
        """Average number of rows per distinct value (1.0 = all unique)."""
        if not self.values:
            return 1.0
        return self.row_count / len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DictionaryColumn({self.attribute!r}, rows={self.row_count}, "
            f"distinct={self.distinct_count})"
        )
