"""Dictionary encoding of string columns.

A :class:`DictionaryColumn` stores a column once as its distinct values (the
*dictionary*) plus one integer code per row.  Anything that is a function of
the cell value alone — pattern matching, part extraction, equality against a
constant — can then be computed per distinct value and broadcast to rows
through the codes, which is the whole point of the engine: per-row work
becomes per-*distinct*-value work.

The class is deliberately standalone (it knows nothing about relations,
schemas, or patterns) so that the dataset and core layers can depend on it
without cycles.  Relations build and cache one instance per column via
:meth:`repro.dataset.relation.Relation.dictionary`.  Cell overwrites
(``set_cell``) invalidate the cache, but batch ingestion *extends* it:
:meth:`DictionaryColumn.extend` appends new rows in place — unseen values
get fresh codes at the end of the dictionary, ``rows_by_code``/``counts``
are patched rather than rebuilt — and returns a :class:`DictionaryDelta`
describing exactly what changed, which the partition layer and the pattern
evaluator use to delta-maintain their own caches.  Existing codes, values,
and row lists are never reordered by an extend, so every result computed
per distinct value stays valid; downstream caches only have to *grow*.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class DictionaryDelta:
    """What one :meth:`DictionaryColumn.extend` call appended.

    Attributes
    ----------
    attribute:
        The column name (mirrors :attr:`DictionaryColumn.attribute`).
    start_row:
        Row id of the first appended row (== row count before the extend).
    appended_codes:
        One code per appended row, in append order (``start_row + i`` has
        code ``appended_codes[i]``).
    old_distinct_count:
        Dictionary size before the extend; codes ``>= old_distinct_count``
        belong to values first seen in this batch.
    """

    attribute: str
    start_row: int
    appended_codes: tuple[int, ...]
    old_distinct_count: int

    @property
    def row_count(self) -> int:
        return len(self.appended_codes)

    def new_rows(self) -> range:
        """The appended row ids."""
        return range(self.start_row, self.start_row + len(self.appended_codes))


class DictionaryColumn:
    """Distinct values of a column plus a per-row integer code.

    Attributes
    ----------
    attribute:
        The column name (informational only).
    values:
        The distinct cell values in first-seen order; ``values[codes[i]]`` is
        the cell value of row ``i``.
    codes:
        One code per row, indexing into ``values``.
    """

    __slots__ = (
        "attribute",
        "values",
        "codes",
        "_code_of",
        "_rows_by_code",
        "_counts",
        "__weakref__",
    )

    def __init__(self, values: Sequence[str], codes: Sequence[int], attribute: str = ""):
        self.attribute = attribute
        self.values: tuple[str, ...] = tuple(values)
        self.codes: list[int] = list(codes)
        self._code_of: Optional[dict[str, int]] = None
        self._rows_by_code: Optional[list[list[int]]] = None
        self._counts: Optional[list[int]] = None

    @classmethod
    def from_values(cls, cells: Iterable[str], attribute: str = "") -> "DictionaryColumn":
        """Encode a raw column (one string per row)."""
        code_of: dict[str, int] = {}
        codes: list[int] = []
        for cell in cells:
            code = code_of.get(cell)
            if code is None:
                code = len(code_of)
                code_of[cell] = code
            codes.append(code)
        column = cls(tuple(code_of), codes, attribute=attribute)
        column._code_of = code_of
        return column

    # -- mutation -------------------------------------------------------------

    def extend(self, cells: Iterable[str]) -> DictionaryDelta:
        """Append rows in place; returns the delta description.

        Unseen values receive fresh codes *after* every existing one, so all
        previously handed-out codes (and anything memoized per code) remain
        valid; the lazily built ``rows_by_code`` / ``counts`` structures are
        patched rather than invalidated.  This is the primitive behind
        :meth:`repro.dataset.relation.Relation.append_rows`.
        """
        if self._code_of is None:
            self._code_of = {v: code for code, v in enumerate(self.values)}
        code_of = self._code_of
        start_row = len(self.codes)
        old_distinct = len(self.values)
        appended: list[int] = []
        new_values: list[str] = []
        for cell in cells:
            code = code_of.get(cell)
            if code is None:
                code = len(code_of)
                code_of[cell] = code
                new_values.append(cell)
            appended.append(code)
        if new_values:
            self.values = self.values + tuple(new_values)
        self.codes.extend(appended)
        if self._rows_by_code is not None:
            self._rows_by_code.extend([] for _ in range(len(self.values) - old_distinct))
            for offset, code in enumerate(appended):
                self._rows_by_code[code].append(start_row + offset)
        if self._counts is not None:
            self._counts.extend(0 for _ in range(len(self.values) - old_distinct))
            for code in appended:
                self._counts[code] += 1
        return DictionaryDelta(
            attribute=self.attribute,
            start_row=start_row,
            appended_codes=tuple(appended),
            old_distinct_count=old_distinct,
        )

    # -- size ----------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.codes)

    @property
    def distinct_count(self) -> int:
        return len(self.values)

    def __len__(self) -> int:
        return self.row_count

    # -- lookup --------------------------------------------------------------

    def value_of_row(self, row_id: int) -> str:
        """The cell value of row ``row_id`` (decoded through the dictionary)."""
        return self.values[self.codes[row_id]]

    def code_of(self, value: str) -> Optional[int]:
        """The code of ``value``, or ``None`` if the value does not occur."""
        if self._code_of is None:
            self._code_of = {v: code for code, v in enumerate(self.values)}
        return self._code_of.get(value)

    def rows_by_code(self) -> list[list[int]]:
        """Row ids per code, each list in ascending order (built lazily)."""
        if self._rows_by_code is None:
            rows: list[list[int]] = [[] for _ in self.values]
            for row_id, code in enumerate(self.codes):
                rows[code].append(row_id)
            self._rows_by_code = rows
        return self._rows_by_code

    def counts(self) -> list[int]:
        """Number of rows per code (built lazily)."""
        if self._counts is None:
            counts = [0] * len(self.values)
            for code in self.codes:
                counts[code] += 1
            self._counts = counts
        return self._counts

    def broadcast_codes(self, accepted: Sequence[bool]) -> list[int]:
        """Row ids whose code is accepted, in ascending order.

        ``accepted`` is a per-code mask (``accepted[code]`` truthy keeps the
        rows carrying that code).
        """
        return [row_id for row_id, code in enumerate(self.codes) if accepted[code]]

    @property
    def duplication_factor(self) -> float:
        """Average number of rows per distinct value (1.0 = all unique)."""
        if not self.values:
            return 1.0
        return len(self.codes) / len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DictionaryColumn({self.attribute!r}, rows={self.row_count}, "
            f"distinct={self.distinct_count})"
        )
