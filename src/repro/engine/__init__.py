"""The vectorized evaluation core.

Pattern evaluation in this library is dominated by one operation: matching a
compiled pattern against every cell of a column.  Real tables are dominated
by *repeated* cell values, so the engine evaluates patterns per **distinct**
value and broadcasts the results back to row ids through a dictionary
encoding — the standard analytical-engine layout (dictionary-encoded columns
+ scans over codes) applied to the paper's workloads:

* :class:`~repro.engine.dictionary.DictionaryColumn` — a column's distinct
  values plus a compact integer code per row (built lazily and cached on
  :class:`~repro.dataset.relation.Relation`);
* :class:`~repro.engine.evaluator.PatternEvaluator` — a memoized batch
  matcher whose :meth:`~repro.engine.evaluator.PatternEvaluator.match_column`
  issues at most one :meth:`~repro.patterns.matcher.CompiledPattern.match`
  call per (pattern, distinct value) pair and shares the results between
  discovery, validation, and error detection;
* :class:`~repro.engine.evaluator.ColumnMatchSet` — the set-at-a-time tier:
  :meth:`~repro.engine.evaluator.PatternEvaluator.match_column_many` compiles
  a whole pattern set into one shared DFA
  (:func:`repro.patterns.multi.compile_pattern_set`) and scans each distinct
  value once, yielding per-value bitmasks of *all* matching patterns that
  later per-pattern calls are seeded from;
* :class:`~repro.engine.partitions.StrippedPartition` /
  :class:`~repro.engine.partitions.PartitionManager` — the equivalence-class
  tier: TANE-style stripped partitions per attribute (read off
  ``rows_by_code``) or per (attribute, tableau pattern), with memoized
  probe-table intersections for multi-attribute candidates, cached per
  relation and invalidated on mutation.

Batch ingestion keeps all three tiers warm instead of rebuilding them:
:meth:`~repro.dataset.relation.Relation.append_rows` extends dictionaries in
place (:class:`~repro.engine.dictionary.DictionaryDelta` describes each
batch), the evaluator's memoized masks self-heal by matching only the newly
introduced distinct values, and the partition manager patches equivalence
classes and refreshes memoized intersections from the patched leaves.

The user-facing handle on all of this shared state is the
:class:`~repro.session.CleaningSession` facade: one evaluator plus one
relation (and therefore one dictionary + partition cache) threaded through
profile → discover → detect → repair → validate, with every counter above
surfaced as a structured :class:`~repro.session.SessionStats` snapshot.
"""

from .dictionary import DictionaryColumn, DictionaryDelta
from .evaluator import ColumnMatch, ColumnMatchSet, PatternEvaluator, default_evaluator
from .parallel import ParallelExecutor, ParallelStats, resolve_workers
from .partitions import PartitionKey, PartitionManager, PartitionStats, StrippedPartition

__all__ = [
    "DictionaryColumn",
    "DictionaryDelta",
    "ColumnMatch",
    "ColumnMatchSet",
    "PatternEvaluator",
    "default_evaluator",
    "ParallelExecutor",
    "ParallelStats",
    "resolve_workers",
    "PartitionKey",
    "PartitionManager",
    "PartitionStats",
    "StrippedPartition",
]
