"""The :class:`CleaningSession` facade — one stateful object over the whole
profile → discover → detect → repair → validate pipeline.

The paper's workflow is inherently staged: induce patterns, discover PFDs,
then detect and repair errors *against the same table*.  The engine layers
built underneath (dictionary-encoded columns, the memoized
:class:`~repro.engine.evaluator.PatternEvaluator`, shared-DFA pattern sets,
and the stripped-partition cache) all amortize work across stages — but only
if the stages actually share them.  Free functions over a bare
:class:`~repro.dataset.relation.Relation` make that sharing the caller's
problem: our own CLI used to re-load the data, re-prime the evaluator, and
rebuild partition caches between invocations.

A ``CleaningSession`` owns the relation *plus* all engine state and exposes
the pipeline as chainable, memoized stages::

    session = CleaningSession.from_csv("zips.csv")
    result = session.discover()          # primes dictionaries + partitions
    report = session.detect()            # zero new pattern-set compilations
    repaired = session.repair()          # reuses the memoized detection
    print(session.stats().summary())     # one structured counter object

Each stage

* returns the existing result dataclass (``DiscoveryResult``,
  ``DetectionReport``, ``RepairResult``, plus the new
  :class:`ValidationReport`),
* primes the shared caches exactly once (one evaluator, one partition
  manager, for the session's whole lifetime), and
* is memoized per argument set — and invalidated when the relation mutates,
  by watching :attr:`Relation.version` (which is bumped by the same
  ``set_cell``/``append_row`` hooks that invalidate the dictionary and
  partition caches).

The historical free functions (:func:`repro.discover_pfds`,
:func:`repro.detect_errors`, :func:`repro.repair_errors`) remain as thin
convenience wrappers that construct a throwaway session.

Ingestion rides the same object: :meth:`CleaningSession.append` feeds a
batch through :meth:`Relation.append_rows` (which delta-maintains the
dictionary / mask / partition caches instead of invalidating them) while
keeping the memoized discovery, and :meth:`CleaningSession.detect_new`
re-validates just the appended delta — only PFDs whose partitions gained
rows, only equivalence classes containing new rows.
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from typing import Optional, Sequence, Union

from .cleaning.detector import DetectionReport, ErrorDetector
from .cleaning.repair import Repairer, RepairResult
from .core.pfd import PFD, prime_for_pfds, prime_partitions_for_pfds
from .dataset.csvio import estimate_csv_rows, read_csv
from .dataset.mutations import MutationBatch, MutationResult
from .dataset.profiler import TableProfile, profile_relation
from .dataset.relation import Relation
from .dataset.schema import Schema
from .discovery.config import DiscoveryConfig
from .discovery.pfd_discovery import DiscoveryResult, PFDDiscoverer
from .engine.backend import resolve_backend
from .engine.evaluator import PatternEvaluator
from .engine.parallel import ParallelExecutor, resolve_workers
from .engine.partitions import PartitionStats
from .exceptions import ReproError


@dataclasses.dataclass(frozen=True)
class SessionStats:
    """A structured snapshot of one session's shared-cache counters.

    Unifies what ``pfd-discover --stats`` used to print ad hoc: the
    evaluator's match/scan counters, the relation's partition-cache
    counters, and the cache sizes, plus which pipeline stages have run.
    Snapshots are immutable; take one before and one after a stage and
    compare fields to see what the stage actually cost.
    """

    relation_name: str
    row_count: int
    column_count: int
    #: Engine backend the session's relation resolves to (see
    #: :mod:`repro.engine.backend`).
    backend: str
    #: Stage names that have completed on this session, in first-run order.
    stages: tuple[str, ...]
    #: Per-distinct-value ``CompiledPattern.match`` calls issued.
    match_calls: int
    #: ``match_column`` calls answered from the evaluator's memo.
    match_cache_hits: int
    #: Shared-DFA scans (one per distinct value per new-pattern batch).
    multi_scans: int
    #: Patterns that took the per-pattern fallback inside a batch.
    multi_fallbacks: int
    #: Shared-DFA builds requested (a stage reusing the session's evaluator
    #: on an already-primed pattern set requests zero).
    pattern_set_compilations: int
    #: Partition-cache hit/miss counters (lifetime of the relation's manager).
    partitions: PartitionStats
    #: Partitions currently cached on the relation.
    cached_partitions: int
    #: Columns with memoized per-pattern match results.
    cached_match_columns: int
    #: Effective ``workers=`` of the session (1 = serial, no pool).
    workers: int = 1
    #: Workers in the session's current/most recent pool (0 = none created).
    pool_size: int = 0
    #: Parallel task submissions across all stages.
    tasks_dispatched: int = 0
    #: Pickled bytes of relation snapshots broadcast to worker pools.
    bytes_broadcast: int = 0
    #: Wall-clock seconds spent inside parallel sections, per stage name.
    parallel_stage_seconds: tuple[tuple[str, float], ...] = ()

    @property
    def partition_hits(self) -> int:
        return self.partitions.hits

    @property
    def partition_misses(self) -> int:
        """Partition builds: every miss built a partition from scratch."""
        return self.partitions.misses

    def summary(self) -> str:
        lines = [
            f"session stats for {self.relation_name!r} "
            f"({self.row_count} rows, {self.column_count} columns, "
            f"{self.backend} backend)",
            f"  stages run: {', '.join(self.stages) if self.stages else '(none)'}",
            f"  pattern matching: {self.match_calls} match calls, "
            f"{self.match_cache_hits} cache hits, "
            f"{self.multi_scans} shared-DFA scans, "
            f"{self.multi_fallbacks} fallbacks, "
            f"{self.pattern_set_compilations} pattern-set compilations",
            f"  {self.partitions.summary()}",
            f"  cached partitions: {self.cached_partitions}",
            f"  cached match columns: {self.cached_match_columns}",
        ]
        if self.workers > 1 or self.pool_size:
            stage_times = ", ".join(
                f"{stage} {seconds:.2f}s" for stage, seconds in self.parallel_stage_seconds
            )
            lines.append(
                f"  parallel: {self.workers} worker(s), pool size {self.pool_size}, "
                f"{self.tasks_dispatched} task(s) dispatched, "
                f"{self.bytes_broadcast} byte(s) broadcast"
                + (f", {stage_times}" if stage_times else "")
            )
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-serializable form (used by ``pfd-discover clean --report``)."""
        return {
            "relation": self.relation_name,
            "rows": self.row_count,
            "columns": self.column_count,
            "backend": self.backend,
            "stages": list(self.stages),
            "match_calls": self.match_calls,
            "match_cache_hits": self.match_cache_hits,
            "multi_scans": self.multi_scans,
            "multi_fallbacks": self.multi_fallbacks,
            "pattern_set_compilations": self.pattern_set_compilations,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
            "cached_partitions": self.cached_partitions,
            "cached_match_columns": self.cached_match_columns,
            "workers": self.workers,
            "pool_size": self.pool_size,
            "tasks_dispatched": self.tasks_dispatched,
            "bytes_broadcast": self.bytes_broadcast,
            "parallel_stage_seconds": {
                stage: seconds for stage, seconds in self.parallel_stage_seconds
            },
        }


@dataclasses.dataclass(frozen=True)
class PFDValidation:
    """Coverage / violation outcome of one PFD on the session's relation."""

    pfd: PFD
    coverage: float
    violation_count: int

    @property
    def holds(self) -> bool:
        return self.violation_count == 0


@dataclasses.dataclass
class ValidationReport:
    """Per-PFD coverage and violation counts on one relation."""

    relation_name: str
    entries: list[PFDValidation]

    @property
    def total_violations(self) -> int:
        return sum(entry.violation_count for entry in self.entries)

    @property
    def holding_count(self) -> int:
        return sum(1 for entry in self.entries if entry.holds)

    @property
    def all_hold(self) -> bool:
        return self.holding_count == len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def summary(self) -> str:
        lines = []
        for entry in self.entries:
            lines.append(
                f"  {entry.pfd}: coverage={entry.coverage:.2%}, "
                f"violations={entry.violation_count}"
            )
        lines.append(
            f"{self.holding_count}/{len(self.entries)} PFD(s) hold on "
            f"{self.relation_name!r} ({self.total_violations} violation(s) in total)"
        )
        return "\n".join(lines)


#: Sentinel for "the session's own discovered PFDs" in stage memo keys.
_DISCOVERED = object()


class CleaningSession:
    """One relation, one engine state, the whole cleaning pipeline.

    Parameters
    ----------
    relation:
        The table to clean.  The session observes (but never copies) it;
        mutations through ``set_cell``/``append_row`` invalidate every
        memoized stage result automatically.
    config:
        Default :class:`DiscoveryConfig` for :meth:`discover` (and for the
        implicit discovery that :meth:`detect` runs when no PFDs are given).
    evaluator:
        Optional shared :class:`PatternEvaluator`.  Defaults to a fresh,
        session-scoped one — the usual choice, keeping the many throwaway
        candidate patterns of discovery out of the process-wide cache.
    backend:
        Optional engine backend pin (``"numpy"``/``"python"``/``"sql"``),
        applied to the relation via :meth:`Relation.set_backend`.  All
        backends produce bit-identical results; ``None`` keeps the
        relation's pin (or the process default — ``REPRO_ENGINE``, else
        numpy when importable).  Note that ``"sql"`` cannot convert an
        already-loaded in-memory relation — build out-of-core relations at
        ingestion time (:meth:`from_csv` with ``backend="sql"`` or
        ``max_memory_rows``, or ``Relation(..., backend="sql")``).
    workers:
        Process-parallel workers for discovery and detection (see
        :mod:`repro.engine.parallel`).  ``None`` defers to a per-call
        config's ``workers``, then the ``REPRO_WORKERS`` environment
        variable, else 1.  With an effective count above 1 the session owns
        one shared :class:`ParallelExecutor`, so every stage reuses a
        single broadcast pool; results are bit-identical to ``workers=1``,
        which runs fully serial and never creates a pool.  Call
        :meth:`close` (or use the session as a context manager) to shut
        the pool down promptly.
    """

    def __init__(
        self,
        relation: Relation,
        config: Optional[DiscoveryConfig] = None,
        evaluator: Optional[PatternEvaluator] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        self.relation = relation
        if backend is not None:
            relation.set_backend(backend)
        self.config = config
        self.evaluator = evaluator or PatternEvaluator()
        if workers is not None and workers < 1:
            raise ReproError("workers must be at least 1")
        self.workers = workers
        self._executor: Optional[ParallelExecutor] = None
        #: Serializes stage computation + memo updates so one session can be
        #: shared by concurrent threads (the cleaning service does): stage
        #: results stay bit-identical to single-threaded use, and a stage
        #: never observes a half-applied append.  Reentrant because stages
        #: compose (``repair`` -> ``detect`` -> ``discover``).
        self._state_lock = threading.RLock()
        #: Guards only the executor handle, so :meth:`close` is idempotent
        #: and safe to call concurrently without waiting on a running stage.
        self._close_lock = threading.Lock()
        self._observed_version = relation.version
        self._stages_run: dict[str, None] = {}
        self._profile: Optional[TableProfile] = None
        self._discovery: Optional[tuple[DiscoveryConfig, DiscoveryResult]] = None
        self._detection: Optional[tuple[tuple, DetectionReport]] = None
        self._repair: Optional[tuple[tuple, RepairResult]] = None
        self._validation: Optional[tuple[tuple, ValidationReport]] = None
        #: First row id of the batches appended via :meth:`append` that
        #: :meth:`detect_new` has not yet examined (None = no pending delta).
        self._delta_start: Optional[int] = None
        #: Row ids touched by :meth:`apply` / :meth:`update` / :meth:`delete`
        #: (and appends) that :meth:`detect_changed` has not yet examined
        #: (None = no pending CRUD delta).
        self._changed_pending: Optional[set[int]] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_csv(
        cls,
        source: Union[str, Path],
        config: Optional[DiscoveryConfig] = None,
        evaluator: Optional[PatternEvaluator] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        max_memory_rows: Optional[int] = None,
        **read_csv_kwargs,
    ) -> "CleaningSession":
        """Open a session on a CSV file (one load for the whole pipeline).

        ``backend`` is routed into :func:`~repro.dataset.csvio.read_csv`:
        ``backend="sql"`` (or ``REPRO_ENGINE=sql``) streams the file into an
        out-of-core SQLite-backed relation in bounded chunks instead of
        materializing the decoded table first.

        ``max_memory_rows`` auto-selects that out-of-core path for *path*
        sources whose (cheaply estimated) data-row count exceeds the budget;
        an explicit ``backend`` always wins.
        """
        if (
            backend is None
            and max_memory_rows is not None
            and isinstance(source, (str, Path))
            and estimate_csv_rows(
                source, has_header=read_csv_kwargs.get("has_header", True)
            )
            > max_memory_rows
        ):
            backend = "sql"
        return cls(
            read_csv(source, backend=backend, **read_csv_kwargs),
            config=config,
            evaluator=evaluator,
            backend=backend,
            workers=workers,
        )

    @classmethod
    def from_rows(
        cls,
        schema: Union[Schema, Sequence[str]],
        rows,
        name: str = "R",
        config: Optional[DiscoveryConfig] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> "CleaningSession":
        """Open a session on rows built in memory (mirrors
        :meth:`Relation.from_rows`)."""
        return cls(
            Relation.from_rows(schema, rows, name=name, backend=backend),
            config=config,
            workers=workers,
        )

    # -- parallel plumbing ---------------------------------------------------

    def _workers_for(self, config: Optional[DiscoveryConfig] = None) -> int:
        """Effective worker count for one stage call: the stage config's
        ``workers``, else the session's, else the session default config's,
        else ``REPRO_WORKERS``, else 1."""
        if config is not None and config.workers is not None:
            return resolve_workers(config.workers)
        if self.workers is not None:
            return resolve_workers(self.workers)
        if self.config is not None and self.config.workers is not None:
            return resolve_workers(self.config.workers)
        return resolve_workers(None)

    def _executor_for(self, workers: int) -> Optional[ParallelExecutor]:
        """The session's shared executor (created lazily; None when serial)."""
        if workers <= 1:
            return None
        if self._executor is None or self._executor.workers != workers:
            if self._executor is not None:
                self._executor.close()
            self._executor = ParallelExecutor(workers)
        return self._executor

    def close(self) -> None:
        """Shut down the session's worker pool, if one was created.

        Idempotent and safe to call concurrently: the executor handle is
        detached under a dedicated lock, so a double (or racing) ``close``
        sees ``None`` and returns instead of re-entering pool shutdown.
        The session stays usable afterwards — the next parallel stage call
        recreates the pool (and re-broadcasts the relation).  Serial
        sessions have nothing to close.
        """
        with self._close_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "CleaningSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache plumbing ------------------------------------------------------

    def _sync(self) -> None:
        """Drop every memoized stage result if the relation has mutated.

        Piggybacks on the same mutation hooks that invalidate the
        dictionary and partition caches: ``set_cell``/``append_row`` bump
        :attr:`Relation.version`, and the next stage call lands here.
        """
        if self.relation.version != self._observed_version:
            self.invalidate()

    def invalidate(self) -> None:
        """Forget all memoized stage results (engine caches stay shared)."""
        with self._state_lock:
            self._observed_version = self.relation.version
            self._profile = None
            self._discovery = None
            self._detection = None
            self._repair = None
            self._validation = None
            self._delta_start = None
            self._changed_pending = None

    def _mark(self, stage: str) -> None:
        self._stages_run[stage] = None

    # -- ingestion -----------------------------------------------------------

    def apply(self, batch: MutationBatch) -> MutationResult:
        """Apply a mutation batch, keeping the discovered PFDs.

        The unified CRUD entry point: routes through
        :meth:`Relation.apply`, so the engine caches — dictionaries,
        pattern-match masks, stripped partitions — are delta-maintained
        rather than rebuilt.  The memoized *discovery* survives (the whole
        point of ingestion is validating new data against the constraints
        already learned); detection / repair / validation memos are dropped,
        since their reports describe the pre-mutation table.  Consecutive
        batches accumulate into one pending CRUD delta for
        :meth:`detect_changed` (appends additionally feed the append-only
        delta :meth:`detect_new` consumes).  A batch with no effective
        change (every assignment matched the stored value, nothing appended
        or deleted) leaves every memo — including a pending delta — intact.
        """
        with self._state_lock:
            self._sync()
            discovery = self._discovery
            pending_start = self._delta_start
            pending_changed = self._changed_pending
            result = self.relation.apply(batch)
            if not result:
                return result
            self.invalidate()
            self._discovery = discovery
            if len(result.appended):
                self._delta_start = (
                    pending_start if pending_start is not None else result.appended.start
                )
            else:
                self._delta_start = pending_start
            changed = set(pending_changed or ())
            changed.update(result.changed_rows)
            self._changed_pending = changed
            self._mark("apply")
            return result

    def append(self, rows) -> range:
        """Append a batch of tuples: a one-op :meth:`apply`.

        Returns the appended row-id range; consecutive appends accumulate
        into one pending delta for :meth:`detect_new` (and, like every
        mutation, into the CRUD delta for :meth:`detect_changed`).
        """
        with self._state_lock:
            result = self.apply(MutationBatch.appends(rows))
            if result:
                self._mark("append")
            return result.appended

    def update(self, cells) -> MutationResult:
        """Overwrite ``(row_id, attribute, value)`` cells: a thin
        :meth:`apply` over :meth:`MutationBatch.update_cells`.

        Returns the :class:`~repro.dataset.mutations.MutationResult`;
        assignments matching the stored value are dropped, so
        ``result.updated_rows`` lists only genuinely changed rows.
        """
        return self.apply(MutationBatch.update_cells(cells))

    def delete(self, row_ids) -> MutationResult:
        """Tombstone rows (cells blank, ids stay stable): a thin
        :meth:`apply` over :meth:`MutationBatch.deletes`."""
        return self.apply(MutationBatch.deletes(row_ids))

    def detect_changed(
        self,
        pfds: Optional[Sequence[PFD]] = None,
        min_evidence: int = 1,
    ) -> DetectionReport:
        """Detect suspect cells around the pending CRUD delta.

        The counterpart of :meth:`detect_new` for arbitrary mutations:
        scopes the violation search (see
        :meth:`~repro.cleaning.detector.ErrorDetector.detect` with
        ``changed_rows``) to the rows touched since the last consumption —
        updated, deleted, or appended — and the equivalence classes
        currently containing them, O(delta) on a primed session.  Defaults
        to the session's discovered PFDs (which :meth:`apply` deliberately
        preserves).  The pending delta (both the CRUD set and the append
        watermark) is consumed; a second call without a new mutation
        raises.  Suspect cells may reference untouched rows when a mutation
        turns them into the minority of their class.
        """
        with self._state_lock:
            self._sync()
            if self._changed_pending is None:
                raise ReproError(
                    "detect_changed() has no pending mutations: call apply(), "
                    "update(), delete(), or append() first"
                )
            _, resolved = self._resolve_pfds(pfds)
            workers = self._workers_for()
            report = ErrorDetector(
                resolved,
                min_evidence=min_evidence,
                evaluator=self.evaluator,
                workers=workers,
                executor=self._executor_for(workers),
            ).detect(self.relation, changed_rows=sorted(self._changed_pending))
            self._changed_pending = None
            self._delta_start = None
            self._mark("detect_changed")
            return report

    def detect_new(
        self,
        pfds: Optional[Sequence[PFD]] = None,
        min_evidence: int = 1,
    ) -> DetectionReport:
        """Detect suspect cells introduced by the pending appended batches.

        Scopes the violation search to the delta (see
        :meth:`~repro.cleaning.detector.ErrorDetector.detect` with
        ``since_row``): only PFDs whose tableau-row partitions gained
        covered rows are re-validated, and only equivalence classes
        containing appended rows are walked — O(delta), not O(table), on a
        primed session.  Defaults to the session's discovered PFDs (which
        :meth:`append` deliberately preserves).  The pending delta is
        consumed: a second call without a new :meth:`append` raises.
        Suspect cells may reference pre-append rows when an appended tuple
        turns them into the minority of their class.
        """
        with self._state_lock:
            self._sync()
            if self._delta_start is None:
                raise ReproError(
                    "detect_new() has no pending appended rows: call append() first"
                )
            _, resolved = self._resolve_pfds(pfds)
            workers = self._workers_for()
            report = ErrorDetector(
                resolved,
                min_evidence=min_evidence,
                evaluator=self.evaluator,
                workers=workers,
                executor=self._executor_for(workers),
            ).detect(self.relation, since_row=self._delta_start)
            self._delta_start = None
            self._mark("detect_new")
            return report

    # -- stages --------------------------------------------------------------

    def profile(self) -> TableProfile:
        """Profile the relation's columns (memoized; feeds :meth:`discover`)."""
        with self._state_lock:
            self._sync()
            if self._profile is None:
                self._profile = profile_relation(self.relation)
                self._mark("profile")
            return self._profile

    def discover(self, config: Optional[DiscoveryConfig] = None) -> DiscoveryResult:
        """Discover PFDs (memoized per config; primes all shared caches).

        Uses ``config``, else the session's default, else
        ``DiscoveryConfig()``.  A no-argument call returns the last
        discovery, whatever config produced it; a repeated call with an
        equal config returns the cached :class:`DiscoveryResult`; a
        *different* explicit config (or a relation mutation) recomputes and
        drops the downstream detect / repair memos, whose default PFD set
        would otherwise be stale.
        """
        with self._state_lock:
            self._sync()
            if config is None and self._discovery is not None:
                return self._discovery[1]
            effective = config or self.config or DiscoveryConfig()
            if self._discovery is not None and self._discovery[0] == effective:
                return self._discovery[1]
            workers = self._workers_for(effective)
            discoverer = PFDDiscoverer(
                effective,
                evaluator=self.evaluator,
                workers=workers,
                executor=self._executor_for(workers),
            )
            # Reuse the profile only when the profile stage already ran: a
            # fresh discovery profiles inside its own timed region, so its
            # reported runtime_seconds stays comparable with the seed (and
            # with the FDep/CFDFinder baselines in the experiment tables).
            result = discoverer.discover(self.relation, profile=self._profile)
            self._discovery = (effective, result)
            self._detection = None
            self._repair = None
            self._validation = None
            self._mark("discover")
            return result

    @property
    def pfds(self) -> list[PFD]:
        """The session's discovered PFDs (runs :meth:`discover` if needed)."""
        return self.discover().pfds

    @property
    def discovery(self) -> Optional[DiscoveryResult]:
        """The memoized discovery result, or None if :meth:`discover` has
        not run (or was invalidated by a mutation)."""
        with self._state_lock:
            self._sync()
            return self._discovery[1] if self._discovery is not None else None

    def _resolve_pfds(self, pfds: Optional[Sequence[PFD]]) -> tuple[object, list[PFD]]:
        """Explicit PFDs, or the session's discovered set (with a stable
        memo-key marker so "the discovered set" survives re-discovery)."""
        if pfds is None:
            return _DISCOVERED, self.discover().pfds
        resolved = list(pfds)
        return tuple(resolved), resolved

    def detect(
        self,
        pfds: Optional[Sequence[PFD]] = None,
        min_evidence: int = 1,
    ) -> DetectionReport:
        """Detect suspect cells (memoized; defaults to the discovered PFDs).

        Runs on the session's evaluator and partition manager, so after
        :meth:`discover` has primed them this performs zero additional
        pattern-set compilations and reuses the cached partition leaves.
        """
        with self._state_lock:
            self._sync()
            marker, resolved = self._resolve_pfds(pfds)
            key = (marker, min_evidence)
            if self._detection is not None and self._detection[0] == key:
                return self._detection[1]
            workers = self._workers_for()
            report = ErrorDetector(
                resolved,
                min_evidence=min_evidence,
                evaluator=self.evaluator,
                workers=workers,
                executor=self._executor_for(workers),
            ).detect(self.relation)
            self._detection = (key, report)
            self._mark("detect")
            return report

    def repair(
        self,
        pfds: Optional[Sequence[PFD]] = None,
        min_evidence: int = 1,
        verify: bool = True,
        dry_run: bool = False,
    ) -> RepairResult:
        """Apply the detector's suggestions (memoized; verification on).

        Feeds the memoized :meth:`detect` report straight into the
        :class:`Repairer`, so repairing never re-detects on the session's
        relation.  Repairs are applied to a *copy* (unless ``dry_run``), so
        the session's own caches stay valid; with ``verify=True`` the copy
        is re-detected and still-flagged cells land in
        :attr:`RepairResult.remaining_error_cells`.
        """
        with self._state_lock:
            self._sync()
            marker, resolved = self._resolve_pfds(pfds)
            key = (marker, min_evidence, verify, dry_run)
            if self._repair is not None and self._repair[0] == key:
                return self._repair[1]
            report = self.detect(pfds, min_evidence=min_evidence)
            result = Repairer(
                resolved,
                min_evidence=min_evidence,
                dry_run=dry_run,
                evaluator=self.evaluator,
                verify=verify,
                workers=self._workers_for(),
            ).repair(self.relation, report=report)
            self._repair = (key, result)
            self._mark("repair")
            return result

    def validate(self, pfds: Optional[Sequence[PFD]] = None) -> ValidationReport:
        """Per-PFD coverage and violation counts (memoized).

        Primes the evaluator set-at-a-time and the partition leaves once for
        the whole PFD set, so sibling PFDs on the same column share one
        shared-DFA scan per distinct value and one grouping pass per leaf.
        """
        with self._state_lock:
            self._sync()
            marker, resolved = self._resolve_pfds(pfds)
            key = (marker,)
            if self._validation is not None and self._validation[0] == key:
                return self._validation[1]
            prime_for_pfds(self.relation, resolved, self.evaluator)
            prime_partitions_for_pfds(self.relation, resolved, self.evaluator)
            entries = [
                PFDValidation(
                    pfd=pfd,
                    coverage=pfd.coverage(self.relation, evaluator=self.evaluator),
                    violation_count=len(
                        pfd.violations(self.relation, evaluator=self.evaluator)
                    ),
                )
                for pfd in resolved
            ]
            report = ValidationReport(relation_name=self.relation.name, entries=entries)
            self._validation = (key, report)
            self._mark("validate")
            return report

    # -- observability -------------------------------------------------------

    def stats(self) -> SessionStats:
        """An immutable snapshot of the session's shared-cache counters."""
        with self._state_lock:
            return self._stats_locked()

    def _stats_locked(self) -> SessionStats:
        manager = self.relation.partitions()
        executor = self._executor
        parallel = executor.stats if executor is not None else None
        return SessionStats(
            relation_name=self.relation.name,
            row_count=self.relation.row_count,
            column_count=len(self.relation.attribute_names),
            backend=resolve_backend(self.relation.backend),
            stages=tuple(self._stages_run),
            match_calls=self.evaluator.match_calls,
            match_cache_hits=self.evaluator.cache_hits,
            multi_scans=self.evaluator.multi_scans,
            multi_fallbacks=self.evaluator.multi_fallbacks,
            pattern_set_compilations=self.evaluator.pattern_set_compilations,
            partitions=dataclasses.replace(manager.stats),
            cached_partitions=manager.cached_partition_count(),
            cached_match_columns=self.evaluator.cached_column_count(),
            workers=self._workers_for(),
            pool_size=parallel.pool_size if parallel is not None else 0,
            tasks_dispatched=parallel.tasks_dispatched if parallel is not None else 0,
            bytes_broadcast=parallel.bytes_broadcast if parallel is not None else 0,
            parallel_stage_seconds=(
                tuple(sorted(parallel.stage_seconds.items())) if parallel is not None else ()
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CleaningSession({self.relation.name!r}, rows={self.relation.row_count}, "
            f"stages={list(self._stages_run)})"
        )


def validate_pfds(
    relation: Relation,
    pfds: Sequence[PFD],
    evaluator: Optional[PatternEvaluator] = None,
) -> ValidationReport:
    """Convenience wrapper: validate ``pfds`` through a throwaway session."""
    if not pfds:
        raise ReproError("validate_pfds needs at least one PFD")
    return CleaningSession(relation, evaluator=evaluator).validate(pfds)
