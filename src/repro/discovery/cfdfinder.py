"""CFD discovery baseline (CFDFinder / CTANE-style constant CFD mining).

The paper's second baseline discovers conditional functional dependencies
with the Metanome CFDFinder at confidence 0.995.  This module re-implements
the constant-CFD mining strategy: for every candidate embedded dependency
``X -> B`` and every frequent LHS value combination, the dominant RHS value
is accepted when its confidence reaches the threshold, and the dependency is
reported when the accepted tableau covers enough of the table.  Variable
(wildcard) CFDs are reported when the embedded FD itself holds approximately.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections import defaultdict
from typing import Optional, Sequence

from ..constraints.base import embedded_dependency_key
from ..constraints.cfd import CFD, CFDTuple, WILDCARD
from ..constraints.fd import FD
from ..dataset.relation import Relation


@dataclasses.dataclass
class CFDFinderResult:
    """Output of the CFDFinder baseline."""

    relation_name: str
    cfds: list[CFD]
    runtime_seconds: float

    @property
    def dependency_keys(self) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        return {embedded_dependency_key(cfd.lhs, cfd.rhs) for cfd in self.cfds}

    def summary(self) -> str:
        lines = [
            f"CFDFinder on {self.relation_name!r}: {len(self.cfds)} CFDs "
            f"in {self.runtime_seconds:.2f}s"
        ]
        lines.extend(f"  {cfd}" for cfd in self.cfds)
        return "\n".join(lines)


class CFDFinder:
    """Discover constant and variable CFDs over full attribute values.

    Parameters
    ----------
    confidence:
        Minimum fraction of a frequent LHS group that must share the dominant
        RHS value (the paper uses 0.995 so that dirty data still yields
        dependencies).
    min_support:
        Minimum size of an LHS value group before a constant CFD row is
        emitted.
    min_coverage:
        Minimum fraction of the table the accepted tableau must cover before
        the dependency is reported.
    max_lhs_size:
        Largest LHS attribute set considered.
    """

    def __init__(
        self,
        confidence: float = 0.995,
        min_support: int = 5,
        min_coverage: float = 0.10,
        max_lhs_size: int = 1,
    ):
        self.confidence = confidence
        self.min_support = min_support
        self.min_coverage = min_coverage
        self.max_lhs_size = max_lhs_size

    def discover(self, relation: Relation) -> CFDFinderResult:
        start = time.perf_counter()
        attributes = list(relation.attribute_names)
        cfds: list[CFD] = []
        for size in range(1, self.max_lhs_size + 1):
            for lhs in itertools.combinations(attributes, size):
                for rhs in attributes:
                    if rhs in lhs:
                        continue
                    cfd = self._evaluate_candidate(relation, lhs, rhs)
                    if cfd is not None:
                        cfds.append(cfd)
        runtime = time.perf_counter() - start
        return CFDFinderResult(
            relation_name=relation.name, cfds=cfds, runtime_seconds=runtime
        )

    # -- candidate evaluation -------------------------------------------------

    def _evaluate_candidate(
        self, relation: Relation, lhs: Sequence[str], rhs: str
    ) -> Optional[CFD]:
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for row_id in range(relation.row_count):
            key = tuple(relation.cell(row_id, attr) for attr in lhs)
            if any(not part for part in key):
                continue
            groups[key].append(row_id)

        tableau_rows: list[CFDTuple] = []
        covered = 0
        for key, row_ids in groups.items():
            if len(row_ids) < self.min_support:
                continue
            counts: dict[str, int] = defaultdict(int)
            for row_id in row_ids:
                counts[relation.cell(row_id, rhs)] += 1
            top_value, top_count = max(counts.items(), key=lambda item: (item[1], item[0]))
            if not top_value:
                continue
            if top_count / len(row_ids) < self.confidence:
                continue
            cells = {attr: value for attr, value in zip(lhs, key)}
            cells[rhs] = top_value
            tableau_rows.append(CFDTuple.from_mapping(cells))
            covered += len(row_ids)

        if relation.row_count and covered / relation.row_count >= self.min_coverage and tableau_rows:
            # If the constants cover (nearly) the whole relation and the
            # embedded FD holds approximately, report the variable CFD
            # instead — it is strictly more informative.
            fd = FD(lhs, (rhs,), relation.name)
            if covered / relation.row_count >= 0.9 and self._fd_confidence(relation, fd) >= self.confidence:
                wildcard_row = CFDTuple.from_mapping(
                    {**{attr: WILDCARD for attr in lhs}, rhs: WILDCARD}
                )
                return CFD(lhs, (rhs,), [wildcard_row], relation.name)
            return CFD(lhs, (rhs,), tableau_rows, relation.name)
        return None

    def _fd_confidence(self, relation: Relation, fd: FD) -> float:
        violating: set[int] = set()
        for violation in fd.violations(relation):
            violating.update(cell.row_id for cell in violation.suspect_cells)
        if relation.row_count == 0:
            return 1.0
        return 1.0 - len(violating) / relation.row_count


def discover_cfds(
    relation: Relation,
    confidence: float = 0.995,
    min_support: int = 5,
    min_coverage: float = 0.10,
    max_lhs_size: int = 1,
) -> CFDFinderResult:
    """Convenience wrapper around :class:`CFDFinder`."""
    finder = CFDFinder(
        confidence=confidence,
        min_support=min_support,
        min_coverage=min_coverage,
        max_lhs_size=max_lhs_size,
    )
    return finder.discover(relation)
