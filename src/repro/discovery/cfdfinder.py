"""CFD discovery baseline (CFDFinder / CTANE-style constant CFD mining).

The paper's second baseline discovers conditional functional dependencies
with the Metanome CFDFinder at confidence 0.995.  This module re-implements
the constant-CFD mining strategy: for every candidate embedded dependency
``X -> B`` and every frequent LHS value combination, the dominant RHS value
is accepted when its confidence reaches the threshold, and the dependency is
reported when the accepted tableau covers enough of the table.  Variable
(wildcard) CFDs are reported when the embedded FD itself holds approximately.

Frequent LHS value groups are the stripped classes of the relation's cached
partition layer (:meth:`~repro.dataset.relation.Relation.partitions`):
multi-attribute LHS sets intersect the cached single-attribute partitions
instead of re-hashing every row per candidate, and RHS confidence is counted
over dictionary codes.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Optional, Sequence

from ..constraints.base import embedded_dependency_key
from ..constraints.cfd import CFD, CFDTuple, WILDCARD
from ..constraints.fd import FD
from ..dataset.relation import Relation


@dataclasses.dataclass
class CFDFinderResult:
    """Output of the CFDFinder baseline."""

    relation_name: str
    cfds: list[CFD]
    runtime_seconds: float

    @property
    def dependency_keys(self) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        return {embedded_dependency_key(cfd.lhs, cfd.rhs) for cfd in self.cfds}

    def summary(self) -> str:
        lines = [
            f"CFDFinder on {self.relation_name!r}: {len(self.cfds)} CFDs "
            f"in {self.runtime_seconds:.2f}s"
        ]
        lines.extend(f"  {cfd}" for cfd in self.cfds)
        return "\n".join(lines)


class CFDFinder:
    """Discover constant and variable CFDs over full attribute values.

    Parameters
    ----------
    confidence:
        Minimum fraction of a frequent LHS group that must share the dominant
        RHS value (the paper uses 0.995 so that dirty data still yields
        dependencies).
    min_support:
        Minimum size of an LHS value group before a constant CFD row is
        emitted.
    min_coverage:
        Minimum fraction of the table the accepted tableau must cover before
        the dependency is reported.
    max_lhs_size:
        Largest LHS attribute set considered.
    """

    def __init__(
        self,
        confidence: float = 0.995,
        min_support: int = 5,
        min_coverage: float = 0.10,
        max_lhs_size: int = 1,
    ):
        self.confidence = confidence
        self.min_support = min_support
        self.min_coverage = min_coverage
        self.max_lhs_size = max_lhs_size

    def discover(self, relation: Relation) -> CFDFinderResult:
        start = time.perf_counter()
        attributes = list(relation.attribute_names)
        cfds: list[CFD] = []
        for size in range(1, self.max_lhs_size + 1):
            for lhs in itertools.combinations(attributes, size):
                for rhs in attributes:
                    if rhs in lhs:
                        continue
                    cfd = self._evaluate_candidate(relation, lhs, rhs)
                    if cfd is not None:
                        cfds.append(cfd)
        runtime = time.perf_counter() - start
        return CFDFinderResult(
            relation_name=relation.name, cfds=cfds, runtime_seconds=runtime
        )

    # -- candidate evaluation -------------------------------------------------

    def _evaluate_candidate(
        self, relation: Relation, lhs: Sequence[str], rhs: str
    ) -> Optional[CFD]:
        partition = relation.partitions().attribute_set_partition(lhs)
        groups: Sequence[Sequence[int]] = partition.classes
        if self.min_support <= 1:
            # Stripped partitions drop singleton groups; resurrect them only
            # when the support threshold actually admits them, merged back in
            # first-row order.
            in_class = partition.probe_table()
            singles = [(row,) for row in partition.covered if row not in in_class]
            groups = sorted([*groups, *singles], key=lambda rows: rows[0])

        rhs_column = relation.dictionary(rhs)
        rhs_codes = rhs_column.codes
        tableau_rows: list[CFDTuple] = []
        covered = 0
        for row_ids in groups:
            if len(row_ids) < self.min_support:
                continue
            counts: dict[int, int] = {}
            for row_id in row_ids:
                code = rhs_codes[row_id]
                counts[code] = counts.get(code, 0) + 1
            top_code, top_count = max(
                counts.items(), key=lambda item: (item[1], rhs_column.values[item[0]])
            )
            top_value = rhs_column.values[top_code]
            if not top_value:
                continue
            if top_count / len(row_ids) < self.confidence:
                continue
            cells = {attr: relation.cell(row_ids[0], attr) for attr in lhs}
            cells[rhs] = top_value
            tableau_rows.append(CFDTuple.from_mapping(cells))
            covered += len(row_ids)

        if relation.row_count and covered / relation.row_count >= self.min_coverage and tableau_rows:
            # If the constants cover (nearly) the whole relation and the
            # embedded FD holds approximately, report the variable CFD
            # instead — it is strictly more informative.
            fd = FD(lhs, (rhs,), relation.name)
            if covered / relation.row_count >= 0.9 and self._fd_confidence(relation, fd) >= self.confidence:
                wildcard_row = CFDTuple.from_mapping(
                    {**{attr: WILDCARD for attr in lhs}, rhs: WILDCARD}
                )
                return CFD(lhs, (rhs,), [wildcard_row], relation.name)
            return CFD(lhs, (rhs,), tableau_rows, relation.name)
        return None

    def _fd_confidence(self, relation: Relation, fd: FD) -> float:
        if relation.row_count == 0:
            return 1.0
        # Suspect rows straight from the shared LHS partition (the same one
        # the constant mining above grouped by) — no Violation objects.
        partition = relation.partitions().attribute_set_partition(fd.lhs)
        violating: set[int] = set()
        for rhs_attr in fd.rhs:
            violating.update(partition.minority_rows(relation.dictionary(rhs_attr).codes))
        return 1.0 - len(violating) / relation.row_count


def discover_cfds(
    relation: Relation,
    confidence: float = 0.995,
    min_support: int = 5,
    min_coverage: float = 0.10,
    max_lhs_size: int = 1,
) -> CFDFinderResult:
    """Convenience wrapper around :class:`CFDFinder`."""
    finder = CFDFinder(
        confidence=confidence,
        min_support=min_support,
        min_coverage=min_coverage,
        max_lhs_size=max_lhs_size,
    )
    return finder.discover(relation)
