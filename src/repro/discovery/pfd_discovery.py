"""The efficient PFD discovery algorithm (Figure 4 of the paper).

Pipeline, mirroring the pseudo-code:

1. **Profile** the table; drop quantitative columns, decide tokenize vs
   n-grams per attribute (lines 1–3).
2. **Index**: build the hash-based inverted list from ``(part, position)``
   to tuple ids for every usable attribute (lines 5–12).
3. **Candidates**: enumerate candidate dependencies ``X -> B`` level by level
   over the attribute-set lattice (restriction (iv)).  Before any tableau
   work, each LHS set is screened against the relation's cached stripped
   partitions: the candidate's covered rows (the intersection of the
   level-1 partitions, memoized on lattice descent) bound the achievable
   support and coverage, and a deficient LHS prunes its whole superset cone.
4. For each candidate, walk the frequent patterns of the LHS driver
   attribute; for each pattern with support ≥ K find the dominant RHS
   pattern among the same tuples and accept the pair when the agreement is
   at least ``support - δ·support`` (the decision function ``f``,
   restriction (iii)); accepted pairs become constant tableau rows
   (lines 13–21).
5. When the accumulated tableau covers at least γ of the table, try to
   **generalize** the constants into a single variable PFD and report either
   the generalized PFD or the constant one (lines 22–28); reported
   dependencies prune their lattice supersets.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections import defaultdict
from typing import Iterable, Optional, Sequence

from ..core.pfd import PFD
from ..core.tableau import PatternTableau, PatternTuple
from ..dataset.index import PatternIndex
from ..dataset.profiler import TableProfile, profile_relation
from ..dataset.relation import Relation
from ..engine.backend import NUMPY as BACKEND_NUMPY, np
from ..engine.evaluator import PatternEvaluator
from ..engine.parallel import (
    ParallelExecutor,
    _DiscoveryTask,
    chunk_round_robin,
    merge_partition_stats,
    resolve_workers,
)
from ..engine.partitions import PartitionStats
from ..patterns.ast import (
    ClassAtom,
    ConstrainedGroup,
    Literal,
    Pattern,
    Repeat,
)
from ..patterns.alphabet import CharClass
from ..patterns.induction import induce_pattern
from ..storage.discovery import CodeAttributeIndex, CodePatternIndex
from .config import DiscoveryConfig
from .generalization import generalize_tableau
from .lattice import CandidateLattice


@dataclasses.dataclass(frozen=True)
class DiscoveredDependency:
    """One reported dependency: the embedded FD plus its PFD tableau."""

    lhs: tuple[str, ...]
    rhs: str
    pfd: PFD
    coverage: float
    support: int
    is_variable: bool

    @property
    def key(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        return (tuple(sorted(self.lhs)), (self.rhs,))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "variable" if self.is_variable else "constant"
        lhs = ", ".join(self.lhs)
        return f"[{lhs}] -> [{self.rhs}] ({kind}, coverage={self.coverage:.2f})"


@dataclasses.dataclass
class DiscoveryResult:
    """Everything the discoverer found, plus bookkeeping."""

    relation_name: str
    config: DiscoveryConfig
    dependencies: list[DiscoveredDependency]
    runtime_seconds: float
    candidate_count: int
    index_entries: int
    #: Candidates enumerated per lattice level (after pruning).
    candidates_per_level: dict[int, int] = dataclasses.field(default_factory=dict)
    #: Snapshot of the relation's partition-cache counters after discovery.
    partition_stats: Optional[PartitionStats] = None

    @property
    def pfds(self) -> list[PFD]:
        return [dependency.pfd for dependency in self.dependencies]

    @property
    def dependency_keys(self) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        return {dependency.key for dependency in self.dependencies}

    @property
    def variable_count(self) -> int:
        return sum(1 for dependency in self.dependencies if dependency.is_variable)

    def dependency_for(self, lhs: Sequence[str], rhs: str) -> Optional[DiscoveredDependency]:
        key = (tuple(sorted(lhs)), (rhs,))
        for dependency in self.dependencies:
            if dependency.key == key:
                return dependency
        return None

    def summary(self) -> str:
        lines = [
            f"PFD discovery on {self.relation_name!r}: "
            f"{len(self.dependencies)} dependencies "
            f"({self.variable_count} variable) in {self.runtime_seconds:.2f}s"
        ]
        for dependency in self.dependencies:
            lines.append(f"  {dependency}")
        return "\n".join(lines)


class PFDDiscoverer:
    """Discover PFDs from (possibly dirty) data.

    Example
    -------
    >>> from repro.discovery import PFDDiscoverer, DiscoveryConfig
    >>> result = PFDDiscoverer(DiscoveryConfig(min_support=2)).discover(relation)
    >>> for dependency in result.dependencies:
    ...     print(dependency.pfd.describe())
    """

    def __init__(
        self,
        config: Optional[DiscoveryConfig] = None,
        evaluator: Optional[PatternEvaluator] = None,
        workers: Optional[int] = None,
        executor: Optional[ParallelExecutor] = None,
    ):
        self.config = config or DiscoveryConfig()
        # One shared evaluator: candidate validation (generalization) and any
        # downstream detection on the same relation reuse one match cache.
        # Scoped to this discoverer (not the process-wide default) so the many
        # throwaway candidate patterns of discovery don't accumulate globally.
        self.evaluator = evaluator or PatternEvaluator()
        #: Overrides ``config.workers`` when given (the session threads its
        #: own ``workers=`` through here); ``None`` defers to the config.
        self.workers = workers
        #: Optional shared :class:`ParallelExecutor` (the session owns one so
        #: discovery and detection reuse a single broadcast pool).  When
        #: absent, a parallel discover() scopes a throwaway executor.
        self.executor = executor

    # -- public API ----------------------------------------------------------

    def discover(
        self,
        relation: Relation,
        profile: Optional[TableProfile] = None,
    ) -> DiscoveryResult:
        """Run the full discovery pipeline on ``relation``.

        With an effective worker count above 1 (``workers=`` on this
        discoverer, else ``config.workers``, else ``REPRO_WORKERS``), each
        lattice level's candidate validations are sharded across a process
        pool and merged at the level barrier — bit-identical to the serial
        loop (see :mod:`repro.engine.parallel`).  ``workers=1`` runs the
        serial path below and never touches a pool.
        """
        start = time.perf_counter()
        config = self.config
        profile = profile or profile_relation(relation)
        workers = resolve_workers(
            self.workers if self.workers is not None else config.workers
        )
        if workers > 1 and not getattr(relation, "is_sql_backed", False):
            # Out-of-core relations stay serial: their state is a live SQLite
            # connection that cannot be shipped to pool workers.
            return self._discover_parallel(relation, profile, workers, start)
        # The index fronts the shared evaluator, so any candidate-pattern
        # batches it evaluates are memoized alongside generalization's
        # validation matches and any downstream detection on this relation.
        # On a sql relation with single-attribute LHSes the index is kept at
        # dictionary-code granularity (O(distinct), not O(rows)); the
        # row-level index is the general fallback.
        index_class = PatternIndex
        if getattr(relation, "is_sql_backed", False) and config.max_lhs_size == 1:
            index_class = CodePatternIndex
        index = index_class(
            relation,
            profile=profile,
            prune_substrings=config.prune_substrings,
            prefixes_only=config.prefixes_only,
            evaluator=self.evaluator,
        )
        attributes = self._eligible_attributes(profile)
        lattice = CandidateLattice(attributes, max_level=config.max_lhs_size)

        dependencies: list[DiscoveredDependency] = []
        candidate_count = 0
        candidates_per_level: dict[int, int] = {}
        manager = relation.partitions()
        # A tableau needs at least one group of min_support rows and must
        # cover min_coverage of the table; both are bounded by the covered
        # rows of the LHS partition, known before any pattern work.
        coverage_floor = max(
            config.min_support, math.ceil(config.min_coverage * relation.row_count)
        )
        for level in range(1, config.max_lhs_size + 1):
            for lhs, rhs in lattice.level(level):
                candidate_count += 1
                candidates_per_level[level] = candidates_per_level.get(level, 0) + 1
                partition = manager.attribute_set_partition(lhs)
                if partition.covered_count < coverage_floor:
                    # Intersections only shrink the covered set: prune the
                    # whole superset cone, for every RHS.
                    lattice.mark_coverage_deficient(lhs)
                    continue
                dependency = self._evaluate_candidate(relation, index, lhs, rhs)
                if dependency is None:
                    continue
                dependencies.append(dependency)
                lattice.mark_satisfied(lhs, rhs)
        runtime = time.perf_counter() - start
        return DiscoveryResult(
            relation_name=relation.name,
            config=config,
            dependencies=dependencies,
            runtime_seconds=runtime,
            candidate_count=candidate_count,
            index_entries=index.total_entries(),
            candidates_per_level=candidates_per_level,
            partition_stats=dataclasses.replace(manager.stats),
        )

    # -- parallel discovery ------------------------------------------------------

    def _discover_parallel(
        self,
        relation: Relation,
        profile: TableProfile,
        workers: int,
        start: float,
    ) -> DiscoveryResult:
        """Shard each lattice level's LHS groups across the process pool.

        Within one level, satisfied-superset pruning only affects *larger*
        LHS sets and coverage deficiency only the identical LHS, so the
        level's candidate set is fixed at the level boundary: whole LHS
        groups are validated atomically by workers and the results merged
        here in enumeration order — dependencies, candidate counts, and
        pruning decisions come out bit-identical to the serial loop.
        """
        config = self.config
        attributes = self._eligible_attributes(profile)
        lattice = CandidateLattice(attributes, max_level=config.max_lhs_size)
        executor = self.executor
        owned = executor is None
        if owned:
            executor = ParallelExecutor(workers)

        dependencies: list[DiscoveredDependency] = []
        candidate_count = 0
        candidates_per_level: dict[int, int] = {}
        coverage_floor = max(
            config.min_support, math.ceil(config.min_coverage * relation.row_count)
        )
        index_entries: Optional[int] = None
        merged_stats = PartitionStats()
        try:
            for level in range(1, config.max_lhs_size + 1):
                # Snapshot the level's surviving candidates as LHS groups
                # (the generator yields LHS-major, in deterministic order).
                groups: list[tuple[int, tuple[str, ...], tuple[str, ...]]] = []
                current_lhs: Optional[tuple[str, ...]] = None
                rhs_acc: list[str] = []
                for lhs, rhs in lattice.level(level):
                    if lhs != current_lhs:
                        if current_lhs is not None:
                            groups.append((len(groups), current_lhs, tuple(rhs_acc)))
                        current_lhs = lhs
                        rhs_acc = []
                    rhs_acc.append(rhs)
                if current_lhs is not None:
                    groups.append((len(groups), current_lhs, tuple(rhs_acc)))
                if not groups:
                    continue
                tasks = [
                    _DiscoveryTask(
                        config=config,
                        profile=profile,
                        coverage_floor=coverage_floor,
                        groups=tuple(chunk),
                    )
                    for chunk in chunk_round_robin(groups, workers * 4)
                ]
                outcomes = []
                for entries, task_outcomes, stats_delta in executor.run_tasks(
                    relation, "discover", tasks, stage="discover"
                ):
                    if index_entries is None:
                        index_entries = entries
                    merged_stats = merge_partition_stats(merged_stats, stats_delta)
                    outcomes.extend(task_outcomes)
                # The level barrier: apply lattice marks and collect accepted
                # dependencies in exactly the serial enumeration order.
                outcomes.sort(key=lambda outcome: outcome.position)
                for outcome in outcomes:
                    candidate_count += outcome.candidates
                    candidates_per_level[level] = (
                        candidates_per_level.get(level, 0) + outcome.candidates
                    )
                    if outcome.deficient:
                        lattice.mark_coverage_deficient(outcome.lhs)
                        continue
                    for dependency in outcome.accepted:
                        dependencies.append(dependency)
                        lattice.mark_satisfied(dependency.lhs, dependency.rhs)
        finally:
            if owned:
                executor.close()
        if index_entries is None:
            # Degenerate table (no candidates at any level): report the same
            # index statistics the serial path would have.
            index = PatternIndex(
                relation,
                profile=profile,
                prune_substrings=config.prune_substrings,
                prefixes_only=config.prefixes_only,
                evaluator=self.evaluator,
            )
            index_entries = index.total_entries()
        runtime = time.perf_counter() - start
        return DiscoveryResult(
            relation_name=relation.name,
            config=config,
            dependencies=dependencies,
            runtime_seconds=runtime,
            candidate_count=candidate_count,
            index_entries=index_entries,
            candidates_per_level=candidates_per_level,
            # Workers hold their own partition caches; the merged counters
            # describe the union of per-worker cache activity for the run.
            partition_stats=merged_stats,
        )

    # -- candidate evaluation ---------------------------------------------------

    def _eligible_attributes(self, profile: TableProfile) -> list[str]:
        config = self.config
        names = list(profile.usable_columns)
        if config.include_attributes is not None:
            allowed = set(config.include_attributes)
            names = [name for name in names if name in allowed]
        names = [name for name in names if name not in set(config.exclude_attributes)]
        return names

    def _evaluate_candidate(
        self,
        relation: Relation,
        index: PatternIndex,
        lhs: tuple[str, ...],
        rhs: str,
    ) -> Optional[DiscoveredDependency]:
        """Lines 13–28 of Figure 4 for one candidate dependency ``X -> B``."""
        config = self.config
        if isinstance(index, CodePatternIndex):
            rows, support = self._collect_constant_rows_codes(relation, index, lhs, rhs)
        else:
            rows, covered = self._collect_constant_rows(relation, index, lhs, rhs)
            support = len(covered)
        if not rows:
            return None
        coverage = support / relation.row_count if relation.row_count else 0.0
        if coverage < config.min_coverage:
            return None
        tableau = PatternTableau(rows)

        if config.generalize:
            outcome = generalize_tableau(
                relation,
                lhs,
                (rhs,),
                tableau,
                config,
                relation_name=relation.name,
                evaluator=self.evaluator,
            )
            if outcome.succeeded and outcome.pfd is not None:
                return DiscoveredDependency(
                    lhs=lhs,
                    rhs=rhs,
                    pfd=outcome.pfd,
                    coverage=outcome.support / relation.row_count if relation.row_count else 0.0,
                    support=outcome.support,
                    is_variable=True,
                )

        pfd = PFD(lhs, (rhs,), tableau, relation.name)
        return DiscoveredDependency(
            lhs=lhs,
            rhs=rhs,
            pfd=pfd,
            coverage=coverage,
            support=support,
            is_variable=False,
        )

    def _collect_constant_rows(
        self,
        relation: Relation,
        index: PatternIndex,
        lhs: tuple[str, ...],
        rhs: str,
    ) -> tuple[list[PatternTuple], set[int]]:
        """Walk the frequent LHS patterns and build constant tableau rows."""
        config = self.config
        driver = self._driver_attribute(index, lhs)
        driver_index = index.attribute_index(driver)
        other_lhs = [attribute for attribute in lhs if attribute != driver]
        collected: list[tuple[PatternTuple, list[int], int]] = []
        frequent = driver_index.frequent_keys(config.min_support)
        frequent = frequent[: config.max_patterns_per_attribute]
        claimed: set[int] = set()
        for key in frequent:
            if len(collected) >= config.max_tableau_rows:
                break
            ids = driver_index.ids(key)
            fresh_ids = [row_id for row_id in ids if row_id not in claimed]
            if len(fresh_ids) < config.min_support:
                continue
            for lhs_assignment, group_ids in self._expand_lhs(
                relation, index, driver, key, other_lhs, fresh_ids
            ):
                if len(group_ids) < config.min_support:
                    continue
                rhs_cell = self._dominant_rhs_cell(relation, index, rhs, group_ids)
                if rhs_cell is None:
                    continue
                cells = dict(lhs_assignment)
                cells[rhs] = rhs_cell
                collected.append((PatternTuple.from_mapping(cells), list(group_ids), key[1]))
                claimed.update(group_ids)
                if len(collected) >= config.max_tableau_rows:
                    break
        if config.positional_grouping and collected:
            collected = self._select_dominant_position(collected, driver)
        rows = [row for row, _ids, _pos in collected]
        covered: set[int] = set()
        for _row, group_ids, _pos in collected:
            covered.update(group_ids)
        return rows, covered

    def _collect_constant_rows_codes(
        self,
        relation: Relation,
        index: CodePatternIndex,
        lhs: tuple[str, ...],
        rhs: str,
    ) -> tuple[list[PatternTuple], int]:
        """:meth:`_collect_constant_rows` at dictionary-code granularity.

        Single-attribute LHS only (the code index is only selected then).
        Because every row-level step — claiming, support thresholds, pattern
        induction, dominance counting, positional grouping — acts uniformly
        on all rows of a code, the walk can claim whole codes and weigh them
        by their occurrence counts; the only per-row quantity, the RHS code
        histogram of a group, is one ``GROUP BY`` in SQLite.  Returns the
        tableau rows plus the covered *row count* (the groups are disjoint
        by construction, so it is the sum of the kept groups' weights).
        """
        config = self.config
        driver = self._driver_attribute(index, lhs)
        driver_index = index.attribute_index(driver)
        driver_values = relation.dictionary(driver).values
        counts = relation.dictionary(driver).counts()
        collected: list[tuple[PatternTuple, int, int]] = []
        frequent = driver_index.frequent_keys(config.min_support)
        frequent = frequent[: config.max_patterns_per_attribute]
        claimed: set[int] = set()
        for key in frequent:
            if len(collected) >= config.max_tableau_rows:
                break
            codes = driver_index.codes(key)
            fresh = [code for code in codes if code not in claimed]
            weight = sum(counts[code] for code in fresh)
            if weight < config.min_support:
                continue
            driver_cell = self._lhs_cell(
                index, driver, key, (driver_values[code] for code in fresh)
            )
            if driver_cell is None:
                continue
            rhs_cell = self._dominant_rhs_cell_codes(
                relation, index, rhs, driver, fresh, weight
            )
            if rhs_cell is None:
                continue
            cells = {driver: driver_cell, rhs: rhs_cell}
            collected.append((PatternTuple.from_mapping(cells), weight, key[1]))
            claimed.update(fresh)
        if config.positional_grouping and collected:
            coverage_by_position: dict[int, int] = defaultdict(int)
            for _row, weight, position in collected:
                coverage_by_position[position] += weight
            best_position = max(
                coverage_by_position.items(), key=lambda item: (item[1], -item[0])
            )[0]
            collected = [entry for entry in collected if entry[2] == best_position]
        rows = [row for row, _weight, _pos in collected]
        return rows, sum(weight for _row, weight, _pos in collected)

    def _dominant_rhs_cell_codes(
        self,
        relation: Relation,
        index: CodePatternIndex,
        rhs: str,
        driver: str,
        driver_codes: Sequence[int],
        support: int,
    ) -> Optional[Pattern]:
        """:meth:`_dominant_rhs_cell` for a group given as driver codes.

        The group's RHS code histogram — the only per-row information the
        decision function consumes — is computed by SQLite as a grouped
        co-occurrence count; dominance and the part fallback then run the
        row-level logic on it unchanged.
        """
        config = self.config
        required = config.required_rhs_agreement(support)
        store = relation.store
        code_counts = store.cooccurrence_counts(
            store.column_index(driver), driver_codes, store.column_index(rhs)
        )
        column = relation.dictionary(rhs)
        counts = {
            column.values[code]: count
            for code, count in code_counts.items()
            if count and column.values[code]
        }
        if counts:
            top_value, top_count = max(counts.items(), key=lambda item: (item[1], item[0]))
            if top_count >= required:
                return Pattern(tuple(Literal(char) for char in top_value))

        if rhs not in index.attributes:
            return None
        rhs_index = index.attribute_index(rhs)
        histogram = rhs_index.keys_for_code_counts(code_counts)
        if not histogram:
            return None
        row_count = relation.row_count or 1
        informative = {
            key: count
            for key, count in histogram.items()
            if rhs_index.weight(key) / row_count < 0.8
        }
        if not informative:
            return None
        (text, position), count = max(
            informative.items(), key=lambda item: (item[1], len(item[0][0]), item[0])
        )
        if count < required or not text:
            return None
        group = ConstrainedGroup(tuple(Literal(char) for char in text))
        any_star = Repeat(ClassAtom(CharClass.ANY), 0, None)
        if position > 0:
            return Pattern((any_star, ClassAtom(CharClass.SYMBOL), group, any_star))
        return Pattern((group, any_star))

    @staticmethod
    def _select_dominant_position(
        collected: list[tuple[PatternTuple, list[int], int]],
        driver: str,
    ) -> list[tuple[PatternTuple, list[int], int]]:
        """Single-semantics positional grouping (Section 4.4).

        When the driver attribute contributed patterns from several token
        positions (first-name tokens at position 1 *and* a few lucky
        last-name tokens at position 0), only one semantic explanation can be
        right; the rows whose position covers the most records are kept.
        """
        coverage_by_position: dict[int, int] = defaultdict(int)
        for _row, group_ids, position in collected:
            coverage_by_position[position] += len(group_ids)
        best_position = max(
            coverage_by_position.items(), key=lambda item: (item[1], -item[0])
        )[0]
        return [entry for entry in collected if entry[2] == best_position]

    def _driver_attribute(self, index: PatternIndex, lhs: tuple[str, ...]) -> str:
        """The LHS attribute with the most frequent patterns (Figure 4, line 15)."""
        config = self.config

        def frequent_count(attribute: str) -> int:
            return len(index.attribute_index(attribute).frequent_keys(config.min_support))

        return max(lhs, key=lambda attribute: (frequent_count(attribute), attribute))

    def _expand_lhs(
        self,
        relation: Relation,
        index: PatternIndex,
        driver: str,
        driver_key: tuple[str, int],
        other_lhs: Sequence[str],
        ids: Sequence[int],
    ) -> Iterable[tuple[dict[str, Pattern], list[int]]]:
        """Combine the driver pattern with frequent patterns of the remaining
        LHS attributes (the sub-table walk of Example 8)."""
        config = self.config
        driver_cell = self._lhs_cell(
            index, driver, driver_key, (relation.cell(row_id, driver) for row_id in ids)
        )
        if driver_cell is None:
            return
        if not other_lhs:
            yield {driver: driver_cell}, list(ids)
            return
        attribute = other_lhs[0]
        remaining = other_lhs[1:]
        attr_index = index.attribute_index(attribute)
        histogram = attr_index.keys_for_rows(ids)
        candidates = [
            (key, count)
            for key, count in histogram.items()
            if count >= config.min_support
        ]
        candidates.sort(key=lambda item: (-item[1], -len(item[0][0]), item[0]))
        id_set = set(ids)
        for key, _count in candidates[:50]:
            subgroup = [row_id for row_id in attr_index.ids(key) if row_id in id_set]
            if len(subgroup) < config.min_support:
                continue
            cell = self._lhs_cell(
                index,
                attribute,
                key,
                (relation.cell(row_id, attribute) for row_id in subgroup),
            )
            if cell is None:
                continue
            for assignment, group_ids in self._expand_lhs(
                relation, index, driver, driver_key, remaining, subgroup
            ):
                combined = dict(assignment)
                combined[attribute] = cell
                yield combined, group_ids

    # -- pattern construction ------------------------------------------------------

    def _lhs_cell(
        self,
        index: PatternIndex,
        attribute: str,
        key: tuple[str, int],
        values: Iterable[str],
    ) -> Optional[Pattern]:
        """Build the constrained LHS pattern for a frequent part key.

        ``values`` are the covered cell values — per row on the row-level
        index, per distinct code on the code-level one.  The outcome is the
        same either way: the suffix induction below is order- and
        multiplicity-insensitive.
        """
        text, position = key
        strategy = index.strategy(attribute)
        if strategy == "value":
            return Pattern((ConstrainedGroup(tuple(Literal(char) for char in text)),))
        if strategy == "tokenize" and position > 0:
            # Non-leading token, e.g. the first name inside "Holloway, Donald E.":
            # anchor it behind a separator character so the constant cannot match
            # in the middle of another token (the paper writes \A*,\ Donald\A*).
            stripped = text.rstrip(" ,.;:-_/")
            if not stripped:
                return None
            group = ConstrainedGroup(tuple(Literal(char) for char in stripped))
            any_star = Repeat(ClassAtom(CharClass.ANY), 0, None)
            separator = ClassAtom(CharClass.SYMBOL)
            return Pattern((any_star, separator, group, any_star))
        group = ConstrainedGroup(tuple(Literal(char) for char in text))
        # Prefix part (token at position 0, or an n-gram prefix): describe the
        # suffix by inducing its shape from the covered values so the pattern
        # stays as specific as the data allows (e.g. {{900}}\D{2}).
        suffixes = []
        for value in values:
            if not value.startswith(text):
                suffixes = None
                break
            suffixes.append(value[len(text):])
        remainder: tuple
        if suffixes is None:
            remainder = (Repeat(ClassAtom(CharClass.ANY), 0, None),)
        elif all(suffix == "" for suffix in suffixes):
            remainder = ()
        else:
            induced = induce_pattern(
                [suffix for suffix in suffixes if suffix], keep_literals=False
            )
            if induced is not None and all(suffix for suffix in suffixes):
                remainder = tuple(induced.elements)
            else:
                remainder = (Repeat(ClassAtom(CharClass.ANY), 0, None),)
        return Pattern((group,) + remainder)

    def _dominant_rhs_cell(
        self,
        relation: Relation,
        index: PatternIndex,
        rhs: str,
        ids: Sequence[int],
    ) -> Optional[Pattern]:
        """The decision function ``f``: find the dominant RHS pattern.

        First the full values are tried (the common case: the RHS of a
        constant PFD is a whole value such as a city or a gender); when no
        full value is dominant enough, the most frequent RHS *part* is tried,
        yielding a prefix/infix pattern on the RHS.
        """
        config = self.config
        support = len(ids)
        required = config.required_rhs_agreement(support)

        # Dominance counting over dictionary codes: integer bincount instead
        # of hashing one string per row of the group.
        column = relation.dictionary(rhs)
        if column.backend == BACKEND_NUMPY:
            group_codes = column.codes_array()[np.asarray(ids, dtype=np.int64)]
            code_counts = dict(enumerate(np.bincount(group_codes).tolist()))
        else:
            codes = column.codes
            code_counts = {}
            for row_id in ids:
                code = codes[row_id]
                code_counts[code] = code_counts.get(code, 0) + 1
        counts = {
            column.values[code]: count
            for code, count in code_counts.items()
            if count and column.values[code]
        }
        if counts:
            top_value, top_count = max(counts.items(), key=lambda item: (item[1], item[0]))
            if top_count >= required:
                return Pattern(tuple(Literal(char) for char in top_value))

        if rhs not in index.attributes:
            return None
        rhs_index = index.attribute_index(rhs)
        histogram = rhs_index.keys_for_rows(ids)
        if not histogram:
            return None
        # Drop "ubiquitous" parts: a part carried by (almost) every row of the
        # whole column (the "St" of a street column, a shared unit suffix)
        # says nothing about the dependency and would otherwise make every
        # LHS pattern appear to determine the RHS.
        row_count = relation.row_count or 1
        informative = {
            key: count
            for key, count in histogram.items()
            if len(rhs_index.ids(key)) / row_count < 0.8
        }
        if not informative:
            return None
        (text, position), count = max(
            informative.items(), key=lambda item: (item[1], len(item[0][0]), item[0])
        )
        if count < required or not text:
            return None
        group = ConstrainedGroup(tuple(Literal(char) for char in text))
        any_star = Repeat(ClassAtom(CharClass.ANY), 0, None)
        if position > 0:
            return Pattern((any_star, ClassAtom(CharClass.SYMBOL), group, any_star))
        return Pattern((group, any_star))


def discover_pfds(
    relation: Relation,
    config: Optional[DiscoveryConfig] = None,
    evaluator: Optional[PatternEvaluator] = None,
    workers: Optional[int] = None,
) -> DiscoveryResult:
    """Convenience wrapper: discovery through a throwaway
    :class:`~repro.session.CleaningSession`.

    Callers running more than one pipeline stage on the same relation
    should hold a session instead, so detection and repair reuse the
    evaluator and partition state primed here (and, with ``workers > 1``,
    one broadcast worker pool instead of a throwaway pool per call).
    """
    from ..session import CleaningSession  # local import: session sits above

    session = CleaningSession(
        relation, config=config, evaluator=evaluator, workers=workers
    )
    try:
        return session.discover()
    finally:
        session.close()
