"""Discovery of PFDs from dirty data (Section 4) plus the FDep and CFDFinder
baselines used by the evaluation (Section 5)."""

from .brute_force import (
    BruteForceResult,
    SubstringGroup,
    brute_force_discover,
    default_decision_function,
    enumerate_substring_groups,
)
from .cfdfinder import CFDFinder, CFDFinderResult, discover_cfds
from .config import PAPER_DEFAULTS, DiscoveryConfig
from .fdep import FDepDiscoverer, FDepResult, discover_fds
from .generalization import (
    GeneralizationOutcome,
    generalize_lhs_cells,
    generalize_tableau,
)
from .lattice import CandidateLattice
from .pfd_discovery import (
    DiscoveredDependency,
    DiscoveryResult,
    PFDDiscoverer,
    discover_pfds,
)
from .selection import (
    DependencyScore,
    ValidationReport,
    oracle_from_mapping,
    rank_dependencies,
    score_dependency,
    validate_against_oracle,
)

__all__ = [
    "BruteForceResult",
    "SubstringGroup",
    "brute_force_discover",
    "default_decision_function",
    "enumerate_substring_groups",
    "CFDFinder",
    "CFDFinderResult",
    "discover_cfds",
    "PAPER_DEFAULTS",
    "DiscoveryConfig",
    "FDepDiscoverer",
    "FDepResult",
    "discover_fds",
    "GeneralizationOutcome",
    "generalize_lhs_cells",
    "generalize_tableau",
    "CandidateLattice",
    "DiscoveredDependency",
    "DiscoveryResult",
    "PFDDiscoverer",
    "discover_pfds",
    "DependencyScore",
    "ValidationReport",
    "oracle_from_mapping",
    "rank_dependencies",
    "score_dependency",
    "validate_against_oracle",
]
