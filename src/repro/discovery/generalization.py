"""Generalizing constant PFDs into variable PFDs (Section 4.3, ``Generalize``).

After the discoverer has collected a tableau of constant PFD rows for an
embedded dependency (``Tayseer  -> F``, ``Noor  -> M``, ...), it attempts to
find a single *variable* PFD that represents all of them: the constrained
constants of each LHS attribute are generalized to a common pattern via
:func:`repro.patterns.induction.induce_pattern`, the RHS becomes the wildcard
``⊥`` (or stays constant when all rows agree), and the resulting PFD is
validated against the whole relation.  Only when the validation passes — the
violation ratio stays below the configured threshold — does the variable PFD
replace the constants (the paper's λ₄/λ₅ and the λ of Example 8).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.pfd import PFD
from ..core.tableau import PatternTableau, PatternTuple, WILDCARD, Wildcard
from ..dataset.relation import Relation
from ..engine.evaluator import PatternEvaluator
from ..patterns.ast import ClassAtom, ConstrainedGroup, Pattern, Repeat
from ..patterns.alphabet import CharClass
from ..patterns.induction import induce_pattern
from .config import DiscoveryConfig


@dataclasses.dataclass(frozen=True)
class GeneralizationOutcome:
    """Result of a generalization attempt."""

    pfd: Optional[PFD]
    violation_ratio: float = 0.0
    support: int = 0

    @property
    def succeeded(self) -> bool:
        return self.pfd is not None


def _constrained_constant(cell) -> Optional[str]:
    """The constant constrained part of a tableau cell, if it has one."""
    if isinstance(cell, Wildcard):
        return None
    group = cell.constrained_subpattern()
    if group is None or not group.is_constant():
        return None
    return group.constant_value()


def _remainder_elements(cell: Pattern) -> tuple:
    """The elements following the constrained group of a pattern cell."""
    index = cell.constrained_group_index
    if index is None:
        return tuple(cell.elements)
    return tuple(cell.elements[index + 1 :])


def _prefix_elements(cell: Pattern) -> tuple:
    """The elements preceding the constrained group of a pattern cell."""
    index = cell.constrained_group_index
    if index is None:
        return ()
    return tuple(cell.elements[:index])


def _is_uninformative(pattern: Pattern) -> bool:
    """A generalized pattern that accepts essentially anything carries no
    information and must not replace the constants (Section 2.2's warning
    that generalization is a double-edged sword)."""
    for element in pattern.elements:
        if isinstance(element, Repeat):
            if isinstance(element.atom, ClassAtom) and element.atom.cls is CharClass.ANY:
                continue
            return False
        return False
    return True


def generalize_lhs_cells(
    constants: Sequence[str],
    remainder: tuple,
    prefix: tuple = (),
) -> Optional[Pattern]:
    """Induce a variable constrained pattern covering all LHS constants.

    ``prefix`` and ``remainder`` are the element tuples that surrounded the
    constrained group in the constant rows (typically ``\\A*\\S`` and
    ``\\A*``); they are re-attached unchanged.  When the constants do not
    share a run shape, a second attempt is made with trailing separator
    characters stripped (``"Donald "`` vs ``"David"`` both reduce to a
    letters-only token).  Returns ``None`` when no informative common pattern
    exists.
    """
    if len(set(constants)) < 2:
        return None
    induced = induce_pattern(list(constants), keep_literals=False)
    effective_remainder = tuple(remainder)
    if induced is None:
        stripped = [constant.rstrip(" ,.;:-_/") for constant in constants]
        if any(not constant for constant in stripped):
            return None
        induced = induce_pattern(stripped, keep_literals=False)
        if induced is not None:
            # The stripped separator has to be re-absorbed by the remainder.
            any_star = Repeat(ClassAtom(CharClass.ANY), 0, None)
            effective_remainder = (any_star,)
    if induced is None or _is_uninformative(induced):
        return None
    group = ConstrainedGroup(tuple(induced.elements))
    return Pattern(tuple(prefix) + (group,) + effective_remainder)


def generalize_tableau(
    relation: Relation,
    lhs: Sequence[str],
    rhs: Sequence[str],
    tableau: PatternTableau,
    config: DiscoveryConfig,
    relation_name: Optional[str] = None,
    evaluator: Optional[PatternEvaluator] = None,
) -> GeneralizationOutcome:
    """Attempt to replace a constant tableau with a single variable row.

    Returns an outcome whose ``pfd`` is ``None`` when generalization is not
    possible (fewer than two distinct constants, no common shape, or too many
    violations on the full relation).
    """
    if len(tableau) < 2:
        return GeneralizationOutcome(None)
    relation_name = relation_name or relation.name

    # Rows may mix structurally different LHS patterns (prefix-anchored vs
    # separator-anchored constants, e.g. a few lucky last-name rows next to
    # the first-name rows).  Generalization works on the largest structurally
    # homogeneous subgroup; the variable PFD it produces is then validated on
    # the *whole* relation, so the discarded rows still count as evidence or
    # violations there.
    def structure_signature(row: PatternTuple) -> tuple:
        signature = []
        for attribute in lhs:
            cell = row.cell(attribute)
            if isinstance(cell, Wildcard):
                signature.append(("wildcard",))
            else:
                signature.append((_prefix_elements(cell), _remainder_elements(cell)))
        return tuple(signature)

    by_structure: dict[tuple, list[PatternTuple]] = {}
    for row in tableau:
        by_structure.setdefault(structure_signature(row), []).append(row)
    rows = max(by_structure.values(), key=len)
    if len(rows) < 2:
        return GeneralizationOutcome(None)

    cells: dict[str, object] = {}
    for attribute in lhs:
        constants: list[str] = []
        remainder: tuple = ()
        prefix: tuple = ()
        for row in rows:
            cell = row.cell(attribute)
            constant = _constrained_constant(cell)
            if constant is None:
                return GeneralizationOutcome(None)
            constants.append(constant)
            if not isinstance(cell, Wildcard):
                remainder = _remainder_elements(cell)
                prefix = _prefix_elements(cell)
        if len(set(constants)) == 1:
            # All rows agree on this attribute: keep the constant cell.
            cells[attribute] = rows[0].cell(attribute)
            continue
        generalized = generalize_lhs_cells(constants, remainder, prefix)
        if generalized is None:
            return GeneralizationOutcome(None)
        cells[attribute] = generalized

    for attribute in rhs:
        rhs_constants = []
        for row in rows:
            cell = row.cell(attribute)
            if isinstance(cell, Wildcard):
                rhs_constants.append(None)
            elif cell.is_constant():
                rhs_constants.append(cell.constant_value())
            else:
                rhs_constants.append(None)
        if None not in rhs_constants and len(set(rhs_constants)) == 1:
            cells[attribute] = rows[0].cell(attribute)
        else:
            cells[attribute] = WILDCARD

    candidate = PFD(
        tuple(lhs),
        tuple(rhs),
        PatternTableau([PatternTuple.from_mapping(cells)]),
        relation_name,
    )
    # Partition-based early pruning: the candidate row's support is bounded
    # by the rows covered by the plain LHS attribute partitions (pattern
    # matching only shrinks that set), so a deficient bound rejects the
    # candidate before any pattern is matched or extracted.
    bound = relation.partitions().attribute_set_partition(tuple(lhs)).covered_count
    if bound < config.min_support:
        return GeneralizationOutcome(None, support=0)
    # Validate in one evaluation pass: support once, violations once (the
    # violation_ratio convenience would recompute the support internally).
    # The shared evaluator memoizes the candidate's per-column matches, so a
    # later full validation of the accepted PFD reuses them — and the row's
    # pattern-projected partition, built here, is reused by any later
    # violations/statistics call on the same relation.
    support = candidate.support(relation, evaluator=evaluator)
    if support < config.min_support:
        return GeneralizationOutcome(None, support=support)
    suspects: set[int] = set()
    for violation in candidate.violations(relation, evaluator=evaluator):
        suspects.update(cell.row_id for cell in violation.suspect_cells)
    ratio = len(suspects) / support if support else 0.0
    if ratio > config.effective_generalization_noise:
        return GeneralizationOutcome(None, violation_ratio=ratio, support=support)
    return GeneralizationOutcome(candidate, violation_ratio=ratio, support=support)
