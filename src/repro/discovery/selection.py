"""Selecting and ranking discovered PFDs (Section 4.5).

Discovery is syntactic: it produces true positives and false positives alike,
and the paper argues the practical workflow is *discover, rank, then let a
human validate*.  This module provides the ranking and filtering machinery
that sits between the discoverer and the (simulated) human validator:

* :func:`score_dependency` — an interpretable score combining coverage,
  support, tableau compactness, and the violation ratio;
* :func:`rank_dependencies` — discovered dependencies ordered by that score;
* :func:`validate_against_oracle` — the automated stand-in for the paper's
  manual validation against external services (gender-api, uszipcode, ...):
  a ground-truth oracle mapping is consulted for each constant PFD row, and
  precision / coverage are reported exactly as in Table 8.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Optional, Sequence

from ..core.pfd import PFD, prime_for_pfds
from ..core.tableau import Wildcard
from ..dataset.relation import Relation
from ..engine.evaluator import PatternEvaluator, default_evaluator
from .pfd_discovery import DiscoveredDependency


@dataclasses.dataclass(frozen=True)
class DependencyScore:
    """Score breakdown for one discovered dependency."""

    dependency: DiscoveredDependency
    coverage: float
    support: int
    tableau_size: int
    violation_ratio: float
    score: float


def score_dependency(
    dependency: DiscoveredDependency,
    relation: Relation,
    coverage_weight: float = 0.5,
    compactness_weight: float = 0.2,
    cleanliness_weight: float = 0.3,
    evaluator: Optional[PatternEvaluator] = None,
) -> DependencyScore:
    """Interpretable quality score in ``[0, 1]``.

    Higher coverage, smaller tableaux (a variable PFD with one row beats 400
    constants), and fewer violations all increase the score.
    """
    coverage = dependency.coverage
    tableau_size = len(dependency.pfd.tableau)
    compactness = 1.0 / tableau_size
    violation_ratio = dependency.pfd.violation_ratio(relation, evaluator=evaluator)
    cleanliness = 1.0 - violation_ratio
    score = (
        coverage_weight * coverage
        + compactness_weight * compactness
        + cleanliness_weight * cleanliness
    )
    return DependencyScore(
        dependency=dependency,
        coverage=coverage,
        support=dependency.support,
        tableau_size=tableau_size,
        violation_ratio=violation_ratio,
        score=score,
    )


def rank_dependencies(
    dependencies: Sequence[DiscoveredDependency],
    relation: Relation,
    evaluator: Optional[PatternEvaluator] = None,
) -> list[DependencyScore]:
    """Dependencies ordered from most to least trustworthy.

    Scoring evaluates every candidate's tableau on the relation; sibling
    candidates routinely share columns (many dependencies over one driver
    attribute), so all their patterns are primed set-at-a-time first — one
    shared-DFA scan per distinct value per column for the whole batch.
    """
    evaluator = evaluator or default_evaluator()
    prime_for_pfds(
        relation, (dependency.pfd for dependency in dependencies), evaluator
    )
    scored = [
        score_dependency(dependency, relation, evaluator=evaluator)
        for dependency in dependencies
    ]
    scored.sort(key=lambda item: (-item.score, -item.support))
    return scored


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Precision and coverage of a set of constant PFD rows against an
    oracle, as reported per dependency in Table 8 of the paper."""

    dependency_name: str
    pfd_count: int
    correct_count: int
    covered_rows: int
    total_rows: int

    @property
    def precision(self) -> float:
        if self.pfd_count == 0:
            return 0.0
        return self.correct_count / self.pfd_count

    @property
    def coverage(self) -> float:
        if self.total_rows == 0:
            return 0.0
        return self.covered_rows / self.total_rows


def validate_against_oracle(
    pfd: PFD,
    relation: Relation,
    oracle: Callable[[str], Optional[str]],
    dependency_name: str = "",
    evaluator: Optional[PatternEvaluator] = None,
) -> ValidationReport:
    """Validate the constant rows of ``pfd`` against a ground-truth oracle.

    ``oracle`` maps the constrained LHS constant of a tableau row (e.g. the
    first name ``"David"`` or the zip prefix ``"606"``) to the RHS value it
    should determine, or ``None`` when the oracle has no opinion.  A row is
    counted correct when the oracle agrees with the row's RHS constant.
    """
    lhs = pfd.lhs[0]
    rhs = pfd.rhs[0]
    pfd_count = 0
    correct = 0
    covered: set[int] = set()
    # The per-row coverage loop below matches every tableau row's LHS against
    # the same column; batch the whole pattern set into one scan first.
    evaluator = prime_for_pfds(relation, (pfd,), evaluator)
    for row in pfd.tableau:
        lhs_cell = row.cell(lhs)
        rhs_cell = row.cell(rhs)
        if isinstance(lhs_cell, Wildcard) or isinstance(rhs_cell, Wildcard):
            continue
        lhs_group = lhs_cell.constrained_subpattern()
        if lhs_group is None or not lhs_group.is_constant() or not rhs_cell.is_constant():
            continue
        key = lhs_group.constant_value()
        expected = oracle(key.strip())
        pfd_count += 1
        if expected is not None and expected == rhs_cell.constant_value():
            correct += 1
        covered.update(pfd.matching_rows(relation, row, evaluator=evaluator))
    return ValidationReport(
        dependency_name=dependency_name or f"{lhs} -> {rhs}",
        pfd_count=pfd_count,
        correct_count=correct,
        covered_rows=len(covered),
        total_rows=relation.row_count,
    )


def oracle_from_mapping(mapping: Mapping[str, str]) -> Callable[[str], Optional[str]]:
    """Build an oracle function from a plain ground-truth dict."""

    def oracle(key: str) -> Optional[str]:
        return mapping.get(key)

    return oracle
