"""The attribute-set lattice used to enumerate candidate LHS sets.

Restriction (iv) of Section 4.2 adopts the attribute-set lattice of TANE
(Huhtala et al.): level ``n`` of the lattice contains the candidate LHS sets
with ``n`` attributes.  Discovery proceeds level by level; once a dependency
``X -> B`` has been reported, every superset of ``X`` is pruned for RHS ``B``
(a superset could only yield redundant, less general dependencies), and
candidates whose frequent-pattern coverage can no longer reach the minimum
coverage are skipped.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence


class CandidateLattice:
    """Level-wise enumeration of candidate dependencies ``X -> B``.

    Parameters
    ----------
    attributes:
        The attributes eligible for the LHS.
    rhs_attributes:
        The attributes eligible for the RHS (defaults to ``attributes``).
    max_level:
        Largest LHS size to enumerate.
    """

    def __init__(
        self,
        attributes: Sequence[str],
        rhs_attributes: Sequence[str] | None = None,
        max_level: int = 1,
    ):
        self.attributes = tuple(attributes)
        self.rhs_attributes = tuple(rhs_attributes if rhs_attributes is not None else attributes)
        self.max_level = max_level
        #: RHS attribute -> set of LHS sets already satisfied (for pruning).
        self._satisfied: dict[str, list[frozenset[str]]] = {}
        #: candidates explicitly pruned (e.g. coverage bound cannot be met).
        self._pruned: set[tuple[frozenset[str], str]] = set()
        #: LHS sets whose covered rows cannot reach the support/coverage
        #: floor; supersets cover a subset of the same rows, so the whole
        #: cone above them is pruned for every RHS.
        self._deficient: list[frozenset[str]] = []

    # -- pruning ------------------------------------------------------------

    def mark_satisfied(self, lhs: Iterable[str], rhs: str) -> None:
        """Record that ``lhs -> rhs`` was reported; supersets get pruned."""
        self._satisfied.setdefault(rhs, []).append(frozenset(lhs))

    def prune(self, lhs: Iterable[str], rhs: str) -> None:
        """Explicitly prune a single candidate (coverage bound, etc.)."""
        self._pruned.add((frozenset(lhs), rhs))

    def mark_coverage_deficient(self, lhs: Iterable[str]) -> None:
        """Record that ``lhs`` cannot cover enough rows (partition-based
        bound): ``lhs`` and every superset are pruned for every RHS, since
        an intersection partition only ever covers fewer rows."""
        self._deficient.append(frozenset(lhs))

    def is_pruned(self, lhs: Iterable[str], rhs: str) -> bool:
        lhs_set = frozenset(lhs)
        if (lhs_set, rhs) in self._pruned:
            return True
        for deficient in self._deficient:
            if deficient <= lhs_set:
                return True
        for satisfied in self._satisfied.get(rhs, ()):
            if satisfied < lhs_set:
                return True
        return False

    # -- enumeration ---------------------------------------------------------

    def level(self, size: int) -> Iterator[tuple[tuple[str, ...], str]]:
        """Candidates ``(X, B)`` with ``|X| == size``, in deterministic order,
        skipping pruned candidates and trivial dependencies (``B ∈ X``)."""
        for lhs in itertools.combinations(self.attributes, size):
            lhs_set = frozenset(lhs)
            for rhs in self.rhs_attributes:
                if rhs in lhs_set:
                    continue
                if self.is_pruned(lhs_set, rhs):
                    continue
                yield lhs, rhs

    def __iter__(self) -> Iterator[tuple[tuple[str, ...], str]]:
        """All candidates level by level up to ``max_level``."""
        for size in range(1, self.max_level + 1):
            yield from self.level(size)

    def candidate_count(self, size: int) -> int:
        """Number of (unpruned) candidates at a level (mostly for reporting)."""
        return sum(1 for _ in self.level(size))
