"""Configuration of the PFD discovery algorithm.

The thresholds mirror the restrictions of Section 4.2 and the parameter
values used in Section 5 of the paper:

* ``min_support`` (K) — minimum number of records a pattern must appear in
  before the constant PFD built from it is considered (paper default 5, the
  controlled experiments sweep 2/4/6).
* ``noise_ratio`` (δ) — the fraction of supporting records that may deviate
  from the dominant RHS pattern (paper default 5 %, sweeps 1/4/7 %).
* ``min_coverage`` (γ) — minimum fraction of the table that the tableau of a
  reported dependency must cover (paper default 10 %).
* ``max_lhs_size`` — 1 reproduces the single-LHS experiments; 2+ enables the
  multi-attribute-LHS lattice search (Table 7, row 14).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

from ..exceptions import DiscoveryError


@dataclasses.dataclass(frozen=True)
class DiscoveryConfig:
    """Tunable knobs of :class:`~repro.discovery.pfd_discovery.PFDDiscoverer`."""

    min_support: int = 5
    noise_ratio: float = 0.05
    min_coverage: float = 0.10
    max_lhs_size: int = 1
    generalize: bool = True
    generalization_noise_ratio: Optional[float] = None
    prune_substrings: bool = True
    positional_grouping: bool = True
    prefixes_only: bool = True
    max_patterns_per_attribute: int = 5000
    max_tableau_rows: int = 400
    include_attributes: Optional[Sequence[str]] = None
    exclude_attributes: Sequence[str] = ()
    skip_trivial: bool = True
    #: Process-parallel workers for candidate validation (see
    #: :mod:`repro.engine.parallel`).  ``None`` defers to the session's
    #: ``workers=`` (or the ``REPRO_WORKERS`` environment variable, else 1);
    #: 1 bypasses the pool entirely and runs the exact serial path.
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if not 0.0 <= self.noise_ratio < 1.0:
            raise DiscoveryError("noise_ratio must be in [0, 1)")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise DiscoveryError("min_coverage must be in [0, 1]")
        if self.max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        if self.max_patterns_per_attribute < 1:
            raise DiscoveryError("max_patterns_per_attribute must be positive")
        if self.max_tableau_rows < 1:
            raise DiscoveryError("max_tableau_rows must be positive")
        if self.workers is not None and self.workers < 1:
            raise DiscoveryError("workers must be at least 1")

    @property
    def effective_generalization_noise(self) -> float:
        """Noise ratio used when validating a generalized (variable) PFD.

        Defaults to the constant-PFD noise ratio when not set explicitly.
        """
        if self.generalization_noise_ratio is None:
            return self.noise_ratio
        return self.generalization_noise_ratio

    def required_rhs_agreement(self, support: int) -> int:
        """Minimum number of supporting records whose RHS must agree with the
        dominant pattern for the decision function ``f`` of the paper to
        accept the pattern pair.

        The paper allows "δ·100" deviating records per pattern; interpreted
        proportionally that is ``ceil(δ · support)`` records, which keeps the
        tolerance meaningful for both small and large pattern groups.  The
        dominant pattern must additionally be a strict majority, so tiny
        groups cannot be decided by a tie (Example 8: K=2 finds no
        single-attribute PFD because every 2-record group splits 1–1).
        """
        allowed = math.ceil(self.noise_ratio * support) if self.noise_ratio > 0 else 0
        return max(support // 2 + 1, support - allowed)

    def with_overrides(self, **kwargs) -> "DiscoveryConfig":
        """A copy with selected fields replaced (dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **kwargs)


#: Configuration matching the fixed parameters of Section 5.1.
PAPER_DEFAULTS = DiscoveryConfig(min_support=5, noise_ratio=0.05, min_coverage=0.10)
