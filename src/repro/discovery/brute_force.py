"""The brute-force PFD discovery of Section 4.1.

The naive algorithm enumerates *all* substrings of the LHS values, groups the
RHS values by common LHS substring (bag semantics), and applies a decision
function.  It is exponential in practice (challenges C1–C3), but it is the
reference against which the efficient algorithm's recall can be measured on
tiny tables, and the paper walks through it in Example 7 — so it is part of
the reproduction, guarded by hard limits on the input size.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Callable, Optional

from ..core.pfd import PFD
from ..core.tableau import PatternTableau
from ..dataset.relation import Relation
from ..exceptions import DiscoveryError
from ..patterns.ast import ClassAtom, ConstrainedGroup, Literal, Pattern, Repeat
from ..patterns.alphabet import CharClass

#: Hard limits keeping the quadratic substring enumeration tractable.
_MAX_ROWS = 500
_MAX_VALUE_LENGTH = 64


@dataclasses.dataclass(frozen=True)
class SubstringGroup:
    """One entry of Step 2 of Example 7: an LHS substring with the bag of
    RHS values of the tuples containing it."""

    substring: str
    rhs_values: tuple[str, ...]
    row_ids: tuple[int, ...]

    @property
    def support(self) -> int:
        return len(self.row_ids)

    def majority(self) -> tuple[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for value in self.rhs_values:
            counts[value] += 1
        value, count = max(counts.items(), key=lambda item: (item[1], item[0]))
        return value, count


def default_decision_function(group: SubstringGroup) -> bool:
    """The example decision function of Example 7: at most three distinct RHS
    values and a majority of at least 50 %."""
    distinct = len(set(group.rhs_values))
    if distinct > 3:
        return False
    _, majority_count = group.majority()
    return majority_count * 2 >= len(group.rhs_values)


@dataclasses.dataclass
class BruteForceResult:
    """Discovered groups and the constant PFDs built from the accepted ones."""

    groups: list[SubstringGroup]
    accepted: list[SubstringGroup]
    pfd: Optional[PFD]


def enumerate_substring_groups(
    relation: Relation, lhs: str, rhs: str, min_length: int = 1
) -> list[SubstringGroup]:
    """Steps 1–2 of the brute-force algorithm: all substrings with positions
    collapsed (exact string matching), each with its RHS bag.

    The quadratic substring enumeration runs once per *distinct* LHS value —
    the dictionary-encoded column broadcasts each value's substring set to
    all of its rows — so duplicated tables only pay for their distinct
    values, and the RHS bags are filled from dictionary codes instead of
    per-row cell lookups.
    """
    if relation.row_count > _MAX_ROWS:
        raise DiscoveryError(
            f"brute-force discovery is limited to {_MAX_ROWS} rows "
            f"(got {relation.row_count}); use PFDDiscoverer instead"
        )
    column = relation.dictionary(lhs)
    rhs_column = relation.dictionary(rhs)
    rows_by_code = column.rows_by_code()
    substring_codes: dict[str, list[int]] = {}
    for code, value in enumerate(column.values):
        if not value:
            continue
        if len(value) > _MAX_VALUE_LENGTH:
            value = value[:_MAX_VALUE_LENGTH]
        seen: set[str] = set()
        for start in range(len(value)):
            for end in range(start + min_length, len(value) + 1):
                substring = value[start:end]
                if substring in seen:
                    continue
                seen.add(substring)
                substring_codes.setdefault(substring, []).append(code)
    rhs_codes = rhs_column.codes
    groups = []
    for substring, codes in substring_codes.items():
        row_ids = sorted(
            row_id for code in codes for row_id in rows_by_code[code]
        )
        groups.append(
            SubstringGroup(
                substring=substring,
                rhs_values=tuple(
                    rhs_column.values[rhs_codes[row_id]] for row_id in row_ids
                ),
                row_ids=tuple(row_ids),
            )
        )
    groups.sort(key=lambda group: (-group.support, -len(group.substring), group.substring))
    return groups


def brute_force_discover(
    relation: Relation,
    lhs: str,
    rhs: str,
    decision_function: Optional[Callable[[SubstringGroup], bool]] = None,
    min_support: int = 2,
) -> BruteForceResult:
    """Run the brute-force algorithm for a single candidate ``lhs -> rhs``.

    Accepted substring groups become constant tableau rows of the form
    ``\\A*{{substring}}\\A* -> majority value``.
    """
    decision_function = decision_function or default_decision_function
    groups = enumerate_substring_groups(relation, lhs, rhs)
    accepted = [
        group
        for group in groups
        if group.support >= min_support and decision_function(group)
    ]
    if not accepted:
        return BruteForceResult(groups=groups, accepted=[], pfd=None)
    any_star = Repeat(ClassAtom(CharClass.ANY), 0, None)
    rows = []
    for group in accepted:
        majority_value, _ = group.majority()
        lhs_pattern = Pattern(
            (any_star, ConstrainedGroup(tuple(Literal(c) for c in group.substring)), any_star)
        )
        rhs_pattern = Pattern(tuple(Literal(c) for c in majority_value))
        rows.append({lhs: lhs_pattern, rhs: rhs_pattern})
    pfd = PFD((lhs,), (rhs,), PatternTableau(rows), relation.name)
    return BruteForceResult(groups=groups, accepted=accepted, pfd=pfd)
