"""FD discovery baseline (FDep, Flach & Savnik 1999).

The paper compares PFD discovery against FDep as implemented in Metanome.
FDep builds the *negative cover* — the set of attribute pairs refuted by some
tuple pair — and derives the minimal FDs that avoid every refutation.  This
module implements that hypothesis-driven approach directly, with an optional
approximation tolerance so that FDs holding on all but a small fraction of
tuple pairs are still reported (needed because the experiment tables are
dirty).

The output is a list of :class:`~repro.constraints.fd.FD` together with the
embedded-dependency keys used by the evaluation harness.

Candidate checking is partition-based: every LHS set maps to a cached
stripped partition (:meth:`~repro.dataset.relation.Relation.partitions`),
multi-attribute sets are probe-table intersections of the level-1
partitions, and both the exact check and the approximate violation ratio
walk equivalence classes against RHS dictionary codes — no per-candidate
row re-grouping.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections import defaultdict
from typing import Sequence

from ..constraints.base import embedded_dependency_key
from ..constraints.fd import FD
from ..dataset.relation import Relation


@dataclasses.dataclass
class FDepResult:
    """Output of the FDep baseline."""

    relation_name: str
    fds: list[FD]
    runtime_seconds: float

    @property
    def dependency_keys(self) -> set[tuple[tuple[str, ...], tuple[str, ...]]]:
        return {embedded_dependency_key(fd.lhs, fd.rhs) for fd in self.fds}

    def summary(self) -> str:
        lines = [
            f"FDep on {self.relation_name!r}: {len(self.fds)} FDs "
            f"in {self.runtime_seconds:.2f}s"
        ]
        lines.extend(f"  {fd}" for fd in self.fds)
        return "\n".join(lines)


class FDepDiscoverer:
    """Discover (approximate) minimal FDs with single- or multi-attribute LHS.

    Parameters
    ----------
    max_lhs_size:
        Largest LHS considered (the evaluation uses 1 and 2).
    max_violation_ratio:
        Fraction of tuples that may participate in violations before an FD is
        rejected; 0 reproduces exact FD discovery, a small positive value
        tolerates dirty data (the paper's CFDFinder uses confidence 0.995 for
        the same reason).
    exclude_keys:
        When True, LHS sets whose value combinations are (nearly) unique are
        skipped: key-like attributes determine everything and produce
        spurious dependencies (the paper notes FDep reports Full Name -> *
        because full name is almost a key).
    """

    def __init__(
        self,
        max_lhs_size: int = 1,
        max_violation_ratio: float = 0.0,
        exclude_keys: bool = False,
        key_distinct_ratio: float = 0.95,
    ):
        self.max_lhs_size = max_lhs_size
        self.max_violation_ratio = max_violation_ratio
        self.exclude_keys = exclude_keys
        self.key_distinct_ratio = key_distinct_ratio

    def discover(self, relation: Relation) -> FDepResult:
        start = time.perf_counter()
        attributes = list(relation.attribute_names)
        fds: list[FD] = []
        satisfied_lhs: dict[str, list[frozenset[str]]] = defaultdict(list)
        for size in range(1, self.max_lhs_size + 1):
            for lhs in itertools.combinations(attributes, size):
                if self.exclude_keys and self._is_key_like(relation, lhs):
                    continue
                lhs_set = frozenset(lhs)
                for rhs in attributes:
                    if rhs in lhs_set:
                        continue
                    if any(existing < lhs_set for existing in satisfied_lhs[rhs]):
                        # A subset already determines rhs: skip the non-minimal FD.
                        continue
                    fd = FD(lhs, (rhs,), relation.name)
                    if self._holds(relation, fd):
                        fds.append(fd)
                        satisfied_lhs[rhs].append(lhs_set)
        runtime = time.perf_counter() - start
        return FDepResult(relation_name=relation.name, fds=fds, runtime_seconds=runtime)

    # -- helpers -----------------------------------------------------------------

    def _holds(self, relation: Relation, fd: FD) -> bool:
        if self.max_violation_ratio <= 0.0:
            return fd.holds_on(relation)
        # Approximate check: suspect rows are the minority members of the
        # stripped LHS classes, read directly off the cached partition —
        # no Violation objects are materialized for rejected candidates.
        partition = relation.partitions().attribute_set_partition(fd.lhs)
        violating_rows: set[int] = set()
        for rhs_attr in fd.rhs:
            codes = relation.dictionary(rhs_attr).codes
            violating_rows.update(partition.minority_rows(codes))
        if relation.row_count == 0:
            return True
        return len(violating_rows) / relation.row_count <= self.max_violation_ratio

    def _is_key_like(self, relation: Relation, lhs: Sequence[str]) -> bool:
        if relation.row_count == 0:
            return False
        # Distinct combinations over the covered (no empty cell) rows follow
        # from the partition's shape: every covered row is either inside a
        # stripped class (one combination per class) or a singleton.
        partition = relation.partitions().attribute_set_partition(lhs)
        distinct = (
            partition.covered_count
            - partition.stripped_row_count
            + partition.class_count
        )
        uncovered = relation.row_count - partition.covered_count
        if uncovered:
            # Rows with an empty cell fall outside the partition; their key
            # tuples cannot collide with covered ones (those have no empty
            # component), so counting them separately stays exact.
            covered = set(partition.covered)
            distinct += len(
                {
                    tuple(relation.cell(row_id, attr) for attr in lhs)
                    for row_id in range(relation.row_count)
                    if row_id not in covered
                }
            )
        return distinct / relation.row_count >= self.key_distinct_ratio


def discover_fds(
    relation: Relation,
    max_lhs_size: int = 1,
    max_violation_ratio: float = 0.0,
    exclude_keys: bool = False,
) -> FDepResult:
    """Convenience wrapper around :class:`FDepDiscoverer`."""
    discoverer = FDepDiscoverer(
        max_lhs_size=max_lhs_size,
        max_violation_ratio=max_violation_ratio,
        exclude_keys=exclude_keys,
    )
    return discoverer.discover(relation)
