"""repro — Pattern Functional Dependencies (PFDs) for data cleaning.

A from-scratch reproduction of *"Pattern Functional Dependencies for Data
Cleaning"* (Qahtan, Tang, Ouzzani, Cao, Stonebraker; PVLDB 13(5), 2020).

The library provides:

* :mod:`repro.patterns` — the regex-like pattern language with constrained
  parts, NFA-based containment, and pattern induction;
* :mod:`repro.dataset` — relations, CSV I/O, profiling, tokenization, and
  the inverted pattern index;
* :mod:`repro.core` — the :class:`~repro.core.pfd.PFD` constraint class and
  pattern tableaux;
* :mod:`repro.constraints` — classical FDs and CFDs;
* :mod:`repro.inference` — the axiom system, PFD-closure, implication, and
  consistency analysis;
* :mod:`repro.discovery` — PFD discovery from dirty data plus the FDep and
  CFDFinder baselines;
* :mod:`repro.cleaning` — error injection, detection, repair, and metrics;
* :mod:`repro.datagen` — the synthetic 15-table benchmark suite;
* :mod:`repro.experiments` — runners that regenerate every table and figure
  of the paper's evaluation;
* :mod:`repro.session` — the :class:`CleaningSession` facade tying the
  pipeline together over one shared engine state.

Quickstart
----------
>>> from repro import CleaningSession
>>> session = CleaningSession.from_rows(
...     ["zip", "city"],
...     [("90001", "Los Angeles"), ("90002", "Los Angeles"), ("90003", "Los Angeles")],
... )
>>> result = session.discover()     # memoized; primes the shared caches
>>> report = session.detect()       # reuses them — no re-priming
>>> repaired = session.repair()     # applies + verifies on a copy
>>> print(session.stats().summary())  # doctest: +SKIP

The free functions (:func:`discover_pfds`, :func:`detect_errors`,
:func:`repair_errors`, :func:`validate_pfds`) remain as convenience wrappers
that run a single stage through a throwaway session.
"""

from .cleaning import detect_errors, inject_errors, repair_errors
from .constraints import CFD, FD, CellRef, Violation
from .core import (
    PFD,
    PatternTableau,
    PatternTuple,
    WILDCARD,
    load_pfds,
    make_pfd,
    pfds_from_json,
    pfds_to_json,
    save_pfds,
)
from .datagen.scenario import ScenarioSpec
from .dataset import (
    DeleteOp,
    MutationBatch,
    MutationResult,
    Relation,
    Schema,
    UpdateOp,
    UpsertOp,
    batch_from_document,
    read_csv,
    write_csv,
)
from .engine import (
    ColumnMatchSet,
    DictionaryColumn,
    DictionaryDelta,
    ParallelExecutor,
    ParallelStats,
    PartitionManager,
    PatternEvaluator,
    StrippedPartition,
    default_evaluator,
    resolve_workers,
)
from .discovery import (
    DiscoveryConfig,
    DiscoveryResult,
    PFDDiscoverer,
    discover_cfds,
    discover_fds,
    discover_pfds,
)
from .inference import check_consistency, implies
from .patterns import Pattern, compile_pattern, parse_pattern
from .session import (
    CleaningSession,
    PFDValidation,
    SessionStats,
    ValidationReport,
    validate_pfds,
)

__version__ = "1.0.0"

__all__ = [
    "CleaningSession",
    "SessionStats",
    "ValidationReport",
    "PFDValidation",
    "validate_pfds",
    "detect_errors",
    "inject_errors",
    "repair_errors",
    "CFD",
    "FD",
    "CellRef",
    "Violation",
    "PFD",
    "PatternTableau",
    "PatternTuple",
    "WILDCARD",
    "load_pfds",
    "make_pfd",
    "pfds_from_json",
    "pfds_to_json",
    "save_pfds",
    "Relation",
    "Schema",
    "MutationBatch",
    "MutationResult",
    "UpsertOp",
    "UpdateOp",
    "DeleteOp",
    "batch_from_document",
    "ScenarioSpec",
    "DictionaryColumn",
    "DictionaryDelta",
    "ColumnMatchSet",
    "ParallelExecutor",
    "ParallelStats",
    "PartitionManager",
    "StrippedPartition",
    "PatternEvaluator",
    "default_evaluator",
    "resolve_workers",
    "read_csv",
    "write_csv",
    "DiscoveryConfig",
    "DiscoveryResult",
    "PFDDiscoverer",
    "discover_cfds",
    "discover_fds",
    "discover_pfds",
    "check_consistency",
    "implies",
    "Pattern",
    "compile_pattern",
    "parse_pattern",
    "__version__",
]
