"""Inference system for PFDs: the six axioms, PFD-closure, implication, and
consistency analysis (Section 3 of the paper)."""

from .axioms import (
    augmentation,
    inconsistency_efq,
    lhs_generalization,
    reduction,
    reflexivity,
    transitivity,
)
from .closure import PFDClosure, closure_implies, compute_closure
from .consistency import (
    ConsistencyResult,
    attribute_values_consistent,
    check_consistency,
    tuple_satisfies,
)
from .implication import (
    equivalent_pfd_sets,
    find_counterexample,
    implies,
    minimal_cover,
)

__all__ = [
    "augmentation",
    "inconsistency_efq",
    "lhs_generalization",
    "reduction",
    "reflexivity",
    "transitivity",
    "PFDClosure",
    "closure_implies",
    "compute_closure",
    "ConsistencyResult",
    "attribute_values_consistent",
    "check_consistency",
    "tuple_satisfies",
    "equivalent_pfd_sets",
    "find_counterexample",
    "implies",
    "minimal_cover",
]
