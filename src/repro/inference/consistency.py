"""Consistency analysis for PFD sets (Section 3.2 and the proof in 7.3).

The consistency problem asks whether a nonempty instance exists that
satisfies every PFD in a set ``Ψ``.  The paper proves a small-model property:
``Ψ`` is consistent iff a *single-tuple* instance satisfies it, with each
attribute value drawn from strings no longer than the summed pattern lengths.
This module implements exactly that search:

* candidate witness values per attribute are generated from the patterns that
  mention the attribute (example strings of LHS/RHS patterns, their constants,
  and a few "neutral" strings that match no LHS pattern),
* a backtracking search assigns one candidate per attribute and checks the
  single-tuple satisfaction condition of every PFD row (if the tuple matches
  every LHS pattern of a row, it must match every RHS pattern of that row).

Optional per-attribute *domain patterns* restrict which witness values are
admissible; they model the "infinite domains of strings consisting of lower
case letters and digits" style restrictions of the NP-hardness reduction and
let users encode genuine domain knowledge (e.g. a zip column only ever holds
``\\D{5}`` values).  The search is exponential in the number of attributes in
the worst case — as the NP-completeness result requires — but the candidate
sets are tiny in practice.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.pfd import PFD
from ..core.tableau import Wildcard
from ..patterns.ast import Pattern
from ..patterns.matcher import compile_pattern
from ..patterns.nfa import example_string
from ..patterns.parser import parse_pattern

#: Neutral witness values tried for every attribute; one of them almost
#: always fails to match any LHS pattern, making the PFDs vacuous on it.
_NEUTRAL_VALUES = ("", "zz99", "Qx7-", "#", "unmatched value 0")


@dataclasses.dataclass(frozen=True)
class ConsistencyResult:
    """Outcome of a consistency check."""

    consistent: bool
    witness: Optional[dict[str, str]] = None

    def __bool__(self) -> bool:
        return self.consistent


def _as_pattern(value: Union[Pattern, str]) -> Pattern:
    if isinstance(value, Pattern):
        return value
    return parse_pattern(value)


def _normalized_rows(psis: Iterable[PFD]) -> list[tuple[PFD, int]]:
    rows: list[tuple[PFD, int]] = []
    for pfd in psis:
        for index in range(len(pfd.tableau)):
            rows.append((pfd, index))
    return rows


def _mentioned_attributes(psis: Sequence[PFD]) -> list[str]:
    seen: dict[str, None] = {}
    for pfd in psis:
        for attribute in pfd.attributes():
            seen.setdefault(attribute, None)
    return list(seen)


def _candidate_values(
    psis: Sequence[PFD],
    attribute: str,
    domain_pattern: Optional[Pattern],
) -> list[str]:
    """Witness candidates for one attribute (bounded, deterministic)."""
    candidates: dict[str, None] = {}

    def consider(value: Optional[str]) -> None:
        if value is None:
            return
        if domain_pattern is not None and not compile_pattern(domain_pattern).matches(value):
            return
        candidates.setdefault(value, None)

    if domain_pattern is not None:
        consider(example_string(domain_pattern))
    for pfd in psis:
        for row in pfd.tableau:
            if attribute not in (*pfd.lhs, *pfd.rhs):
                continue
            cell = row.cell(attribute)
            if isinstance(cell, Wildcard):
                continue
            consider(example_string(cell))
            if cell.is_constant():
                consider(cell.constant_value())
    for neutral in _NEUTRAL_VALUES:
        consider(neutral)
    return list(candidates)


def tuple_satisfies(psis: Iterable[PFD], assignment: Mapping[str, str]) -> bool:
    """Does the single-tuple instance ``{assignment}`` satisfy every PFD?

    For every tableau row of every PFD: if the tuple matches every LHS
    pattern of the row, it must also match every RHS pattern (taking
    ``t1 = t2 = t`` in the pairwise semantics — equivalence with itself is
    automatic, so only the format requirements remain).
    """
    for pfd in psis:
        for row in pfd.tableau:
            lhs_matches = True
            for attribute in pfd.lhs:
                value = assignment.get(attribute, "")
                if not row.compiled(attribute).matches(value):
                    lhs_matches = False
                    break
            if not lhs_matches:
                continue
            for attribute in pfd.rhs:
                value = assignment.get(attribute, "")
                if not row.compiled(attribute).matches(value):
                    return False
    return True


def check_consistency(
    psis: Sequence[PFD],
    domains: Optional[Mapping[str, Union[Pattern, str]]] = None,
    max_assignments: int = 200_000,
) -> ConsistencyResult:
    """Decide whether ``psis`` admits a nonempty satisfying instance.

    Parameters
    ----------
    psis:
        The PFD set ``Ψ``.
    domains:
        Optional attribute -> pattern restrictions every witness value must
        match (models restricted domains; omit for unrestricted domains).
    max_assignments:
        Upper bound on the number of candidate assignments enumerated; the
        search is reported inconsistent only when the space was fully
        explored, otherwise a :class:`ConsistencyResult` with
        ``consistent=False`` and ``witness=None`` is still returned but the
        caller should treat the bound as the limiting factor.
    """
    psis = list(psis)
    if not psis:
        return ConsistencyResult(True, witness={})
    domain_patterns: dict[str, Pattern] = {}
    if domains:
        domain_patterns = {name: _as_pattern(value) for name, value in domains.items()}
    attributes = _mentioned_attributes(psis)
    candidate_lists = [
        _candidate_values(psis, attribute, domain_patterns.get(attribute))
        for attribute in attributes
    ]
    if any(not candidates for candidates in candidate_lists):
        # An attribute admits no candidate at all (e.g. an unsatisfiable
        # domain pattern): no witness tuple can be built.
        return ConsistencyResult(False)
    total = 1
    for candidates in candidate_lists:
        total *= len(candidates)
    if total > max_assignments:
        # Explore a truncated product; soundness of a positive answer is
        # preserved, a negative answer may be due to the truncation.
        product = itertools.islice(itertools.product(*candidate_lists), max_assignments)
    else:
        product = itertools.product(*candidate_lists)
    for values in product:
        assignment = dict(zip(attributes, values))
        if tuple_satisfies(psis, assignment):
            return ConsistencyResult(True, witness=assignment)
    return ConsistencyResult(False)


def attribute_values_consistent(
    psis: Sequence[PFD],
    attribute: str,
    value_pattern: Union[Pattern, str],
    domains: Optional[Mapping[str, Union[Pattern, str]]] = None,
) -> bool:
    """Is ``attribute`` restricted to ``value_pattern`` still consistent?

    This is the side condition of the Inconsistency-EFQ axiom: ``B ∈ S_B`` is
    consistent w.r.t. ``Ψ`` iff some satisfying instance contains a ``B``
    value in ``S_B``.  It reduces to a consistency check where the domain of
    ``attribute`` is intersected with ``value_pattern``.
    """
    new_domains: dict[str, Union[Pattern, str]] = dict(domains or {})
    new_domains[attribute] = _as_pattern(value_pattern)
    if attribute in (domains or {}):
        # Keep the tighter original restriction too by checking both: the
        # witness must satisfy value_pattern and the original domain.
        original = _as_pattern(dict(domains)[attribute])
        result = check_consistency(psis, new_domains)
        if not result.consistent or result.witness is None:
            return False
        return compile_pattern(original).matches(result.witness.get(attribute, ""))
    return bool(check_consistency(psis, new_domains))
