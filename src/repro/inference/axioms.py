"""The six inference axioms for PFDs (Figure 3 of the paper).

Each axiom is a function that takes the premise PFDs (normalized to a single
tableau row — the paper notes that tableau rows can be reasoned about
independently) and returns the derived PFD, raising
:class:`~repro.exceptions.InferenceError` when the side conditions do not
hold.  The axioms are:

* **Reflexivity** — ``A ∈ X`` derives ``R(X -> A, tp)`` with
  ``tp[A_L] ⊑ tp[A_R]``.
* **Inconsistency-EFQ** — if a set of values for ``B`` is not consistent
  with the current PFD set, anything follows for that set (ex falso
  quodlibet).
* **Augmentation** — ``R(X -> Y, tp)`` and ``A ∉ XY`` derive
  ``R(XA -> YA, tp')`` with the same patterns on ``XY`` and identical
  patterns on ``A_L`` and ``A_R``.
* **Transitivity** — ``R(X -> Y, tp)`` and ``R(Y -> Z, tp')`` with
  ``tp[A] ⊑ tp'[A]`` for all ``A ∈ Y`` derive ``R(X -> Z, tp'')``.
* **Reduction** — ``R(XB -> A, tp)`` with ``tp[B] = ⊥`` and ``tp[A]``
  constant derives ``R(X -> A, tp')``.
* **LHS-Generalization** — two PFDs over the same ``XB -> Y`` whose patterns
  agree on ``XY`` combine their ``B`` patterns.  Because the pattern
  language has no union operator, the combined PFD is represented by a
  two-row tableau, which has exactly the semantics of the union pattern.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..core.pfd import PFD
from ..core.tableau import (
    PatternTableau,
    PatternTuple,
    WILDCARD,
    Wildcard,
    cell_is_restriction,
)
from ..exceptions import InferenceError
from ..patterns.ast import Pattern


def _single_row(pfd: PFD) -> PatternTuple:
    if len(pfd.tableau) != 1:
        raise InferenceError(
            "axioms operate on single-row PFDs; normalize the tableau first "
            f"(got {len(pfd.tableau)} rows)"
        )
    return pfd.tableau[0]


def _cell_restriction_holds(
    specific: Union[Pattern, Wildcard], general: Union[Pattern, Wildcard]
) -> bool:
    """``specific ⊑ general`` lifted to tableau cells (⊥ acts as ``{{\\A*}}``)."""
    return cell_is_restriction(specific, general)


def reflexivity(
    lhs: Sequence[str],
    row: PatternTuple,
    attribute: str,
    rhs_cell: Optional[Union[Pattern, Wildcard, str]] = None,
    relation_name: str = "R",
) -> PFD:
    """Reflexivity: ``A ∈ X`` gives ``R(X -> A, tp)`` with ``tp[A_L] ⊑ tp[A_R]``.

    ``rhs_cell`` is the pattern for the RHS copy of ``attribute``; it defaults
    to the LHS pattern itself (which is trivially a restriction of itself).
    """
    if attribute not in lhs:
        raise InferenceError(f"reflexivity requires {attribute!r} to be in the LHS {lhs}")
    lhs_cell = row.cell(attribute)
    if rhs_cell is None:
        resolved_rhs: Union[Pattern, Wildcard] = lhs_cell
    else:
        resolved_rhs = PatternTuple.from_mapping({attribute: rhs_cell}).cell(attribute)
    if not _cell_restriction_holds(lhs_cell, resolved_rhs):
        raise InferenceError(
            "reflexivity requires the LHS pattern to be a restriction of the RHS pattern"
        )
    # The PFD class does not distinguish A_L from A_R for a shared attribute,
    # so the derived row keeps the (tighter) LHS pattern for the shared cell;
    # its restriction into the requested RHS pattern has been verified above.
    derived_cells = {name: row.cell(name) for name in lhs}
    derived_cells[attribute] = resolved_rhs if isinstance(lhs_cell, Wildcard) else lhs_cell
    return PFD(tuple(lhs), (attribute,), PatternTableau([derived_cells]), relation_name)


def inconsistency_efq(
    attribute: str,
    inconsistent_cell: Union[Pattern, Wildcard, str],
    rhs: Sequence[str],
    rhs_cells: dict[str, Union[Pattern, Wildcard, str]],
    relation_name: str = "R",
) -> PFD:
    """Inconsistency-EFQ: from an inconsistent value set anything follows.

    The caller is responsible for having established (via
    :func:`repro.inference.consistency.attribute_values_consistent`) that no
    instance can place a value matching ``inconsistent_cell`` in
    ``attribute``; the axiom then derives ``R(attribute -> Y, tp)`` for the
    requested ``Y`` and patterns.
    """
    cells: dict[str, Union[Pattern, Wildcard, str]] = {attribute: inconsistent_cell}
    for name in rhs:
        if name not in rhs_cells:
            raise InferenceError(f"missing RHS pattern for {name!r}")
        cells[name] = rhs_cells[name]
    return PFD((attribute,), tuple(rhs), PatternTableau([cells]), relation_name)


def augmentation(
    pfd: PFD, attribute: str, cell: Union[Pattern, Wildcard, str] = WILDCARD
) -> PFD:
    """Augmentation: ``R(X -> Y, tp)`` and ``A ∉ XY`` give ``R(XA -> YA, tp')``.

    The new attribute carries the same pattern on both sides (the paper's
    ``tp'[A_L] = tp'[A_R]``), supplied by ``cell`` and defaulting to ``⊥``.
    """
    row = _single_row(pfd)
    if attribute in pfd.lhs or attribute in pfd.rhs:
        raise InferenceError(
            f"augmentation requires {attribute!r} to be outside {pfd.lhs + pfd.rhs}"
        )
    resolved = PatternTuple.from_mapping({attribute: cell}).cell(attribute)
    cells = {name: row.cell(name) for name in (*pfd.lhs, *pfd.rhs)}
    cells[attribute] = resolved
    return PFD(
        (*pfd.lhs, attribute),
        (*pfd.rhs, attribute),
        PatternTableau([cells]),
        pfd.relation_name,
    )


def transitivity(first: PFD, second: PFD) -> PFD:
    """Transitivity: ``R(X -> Y, tp)``, ``R(Y -> Z, tp')`` with
    ``tp[A] ⊑ tp'[A]`` for every ``A ∈ Y`` give ``R(X -> Z, tp'')``."""
    row_first = _single_row(first)
    row_second = _single_row(second)
    if set(second.lhs) != set(first.rhs):
        raise InferenceError(
            f"transitivity requires the second PFD's LHS {second.lhs} to equal "
            f"the first PFD's RHS {first.rhs}"
        )
    for attribute in first.rhs:
        if not _cell_restriction_holds(row_first.cell(attribute), row_second.cell(attribute)):
            raise InferenceError(
                f"transitivity requires tp[{attribute}] to be a restriction of tp'[{attribute}]"
            )
    cells = {name: row_first.cell(name) for name in first.lhs}
    for name in second.rhs:
        cells[name] = row_second.cell(name)
    return PFD(first.lhs, second.rhs, PatternTableau([cells]), first.relation_name)


def reduction(pfd: PFD, attribute: str) -> PFD:
    """Reduction: drop a wildcard LHS attribute when the RHS is constant."""
    row = _single_row(pfd)
    if attribute not in pfd.lhs:
        raise InferenceError(f"reduction requires {attribute!r} to be in the LHS")
    if len(pfd.lhs) < 2:
        raise InferenceError("reduction cannot remove the only LHS attribute")
    if not row.is_wildcard(attribute):
        raise InferenceError(f"reduction requires tp[{attribute}] to be the wildcard ⊥")
    for rhs_attr in pfd.rhs:
        cell = row.cell(rhs_attr)
        if isinstance(cell, Wildcard) or not cell.is_constant():
            raise InferenceError("reduction requires a constant RHS pattern")
    remaining = tuple(name for name in pfd.lhs if name != attribute)
    cells = {name: row.cell(name) for name in (*remaining, *pfd.rhs)}
    return PFD(remaining, pfd.rhs, PatternTableau([cells]), pfd.relation_name)


def lhs_generalization(first: PFD, second: PFD, attribute: str) -> PFD:
    """LHS-Generalization: combine the ``B`` patterns of two PFDs that agree
    everywhere else.

    The pattern language has no union operator, so the derived PFD carries a
    two-row tableau ``{tp, tp'}`` — a value matches the union of the two
    ``B`` patterns exactly when it matches the ``B`` pattern of one of the
    rows, so the semantics coincide with the axiom's ``tp[B] ∪ tp'[B]``.
    """
    row_first = _single_row(first)
    row_second = _single_row(second)
    if first.lhs != second.lhs or first.rhs != second.rhs:
        raise InferenceError("LHS-generalization requires identical embedded FDs")
    if attribute not in first.lhs:
        raise InferenceError(f"{attribute!r} must be an LHS attribute")
    for name in (*first.lhs, *first.rhs):
        if name == attribute:
            continue
        if row_first.cell(name) != row_second.cell(name):
            raise InferenceError(
                f"LHS-generalization requires identical patterns on {name!r}"
            )
    tableau = PatternTableau([row_first, row_second])
    return PFD(first.lhs, first.rhs, tableau, first.relation_name)
