"""PFD-closure computation (the algorithm of Figure 7 in the paper).

Given a set ``Ψ`` of PFDs and a "seed" ``(X, tp[X])`` — a set of attributes
together with the constrained patterns attached to them — the closure is the
set of pairs ``(A, t_W[A])`` such that ``Ψ`` implies ``R(X -> A, tp)`` with
pattern ``t_W[A]`` on ``A``.  The closure drives the implication test
(Theorem 1 shows the inference system is sound and complete, and the closure
is how completeness is proved constructively).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.pfd import PFD
from ..core.tableau import PatternTuple, Wildcard, cell_is_restriction
from ..exceptions import InferenceError
from ..patterns.ast import Pattern

#: A closure cell: the pattern currently known to be forced on an attribute.
ClosureCell = Union[Pattern, Wildcard]


@dataclasses.dataclass
class PFDClosure:
    """The closure ``(X, tp[X])^Ψ`` as a mapping attribute -> pattern."""

    seed_attributes: tuple[str, ...]
    cells: dict[str, ClosureCell]

    def attributes(self) -> tuple[str, ...]:
        return tuple(self.cells)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self.cells

    def cell(self, attribute: str) -> ClosureCell:
        return self.cells[attribute]

    def covers(self, attribute: str, required: ClosureCell) -> bool:
        """True if the closure forces ``attribute`` at least as tightly as
        ``required`` (i.e. the closure pattern is a restriction of it)."""
        if attribute not in self.cells:
            return False
        return _cell_is_restriction(self.cells[attribute], required)


def _cell_is_restriction(specific: ClosureCell, general: ClosureCell) -> bool:
    return cell_is_restriction(specific, general)


def _normalize(psis: Iterable[PFD]) -> list[PFD]:
    """Split every PFD into single-RHS-attribute, single-tableau-row PFDs."""
    flat: list[PFD] = []
    for pfd in psis:
        for normalized in pfd.normalized():
            for row in normalized.tableau:
                flat.append(
                    PFD(
                        normalized.lhs,
                        normalized.rhs,
                        [ {name: row.cell(name) for name in (*normalized.lhs, *normalized.rhs)} ],
                        normalized.relation_name,
                    )
                )
    return flat


def compute_closure(
    psis: Iterable[PFD],
    seed: Union[PatternTuple, Mapping[str, object]],
    seed_attributes: Optional[Sequence[str]] = None,
) -> PFDClosure:
    """Compute the PFD-closure of ``(X, tp[X])`` under ``psis``.

    Parameters
    ----------
    psis:
        The PFD set ``Ψ``.
    seed:
        The seed patterns, as a :class:`PatternTuple` or a mapping from
        attribute name to pattern / pattern string / ``⊥``.
    seed_attributes:
        The attribute set ``X``; defaults to the attributes of ``seed``.
    """
    if not isinstance(seed, PatternTuple):
        seed = PatternTuple.from_mapping(dict(seed))
    if seed_attributes is None:
        seed_attributes = seed.attributes()
    closure: dict[str, ClosureCell] = {
        attribute: seed.cell(attribute) for attribute in seed_attributes
    }
    unused = _normalize(psis)

    changed = True
    while changed:
        changed = False
        remaining: list[PFD] = []
        for pfd in unused:
            if _can_apply(pfd, closure):
                target = pfd.rhs[0]
                new_cell = pfd.tableau[0].cell(target)
                if target not in closure:
                    closure[target] = new_cell
                    changed = True
                elif _cell_is_restriction(new_cell, closure[target]) and new_cell != closure[target]:
                    # The new pattern is tighter than what we had; keep it.
                    closure[target] = new_cell
                    changed = True
                # The rule has been consumed either way (Figure 7, line 7).
            else:
                remaining.append(pfd)
        unused = remaining
    return PFDClosure(seed_attributes=tuple(seed_attributes), cells=closure)


def _can_apply(pfd: PFD, closure: Mapping[str, ClosureCell]) -> bool:
    """Condition (a.i)/(b) of Figure 7 for extending the closure with ``pfd``.

    Condition (a.ii) — extension via inconsistent pattern differences — is
    delegated to the consistency module and not applied automatically here:
    it only fires for inconsistent PFD sets, for which the implication test
    short-circuits anyway (everything is implied).
    """
    row = pfd.tableau[0]
    lhs = pfd.lhs
    all_present = all(attribute in closure for attribute in lhs)
    if all_present:
        return all(
            _cell_is_restriction(closure[attribute], row.cell(attribute))
            for attribute in lhs
        )
    # Condition (b): constant RHS and wildcards on every LHS attribute that is
    # not (yet) in the closure.
    rhs_cell = row.cell(pfd.rhs[0])
    rhs_is_constant = not isinstance(rhs_cell, Wildcard) and rhs_cell.is_constant()
    if not rhs_is_constant:
        return False
    for attribute in lhs:
        if attribute in closure:
            if not _cell_is_restriction(closure[attribute], row.cell(attribute)):
                return False
        else:
            if not isinstance(row.cell(attribute), Wildcard):
                return False
    return True


def closure_implies(
    psis: Iterable[PFD],
    candidate: PFD,
) -> bool:
    """Does ``Ψ`` imply ``candidate``, judged via the closure construction?

    The candidate may have multiple tableau rows; each row is checked
    independently (rows are independent, Section 3.1).
    """
    results = []
    for normalized in candidate.normalized():
        for row in normalized.tableau:
            seed = PatternTuple.from_mapping(
                {attribute: row.cell(attribute) for attribute in normalized.lhs}
            )
            closure = compute_closure(psis, seed, normalized.lhs)
            target = normalized.rhs[0]
            results.append(closure.covers(target, row.cell(target)))
    if not results:
        raise InferenceError("candidate PFD has an empty tableau")
    return all(results)
