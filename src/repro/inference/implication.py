"""Implication analysis for PFDs (Section 3.1, Theorems 1 and 2).

``Ψ |= ψ`` asks whether every instance satisfying ``Ψ`` also satisfies
``ψ``.  Two complementary procedures are provided:

* :func:`implies` — the constructive test via the PFD-closure of Figure 7
  (sound and complete by Theorem 1 for consistent ``Ψ``; if ``Ψ`` is
  inconsistent everything is implied and the function short-circuits).
* :func:`find_counterexample` — a bounded search for a two-tuple witness
  instance that satisfies ``Ψ`` but violates ``ψ`` (the small-model property
  used in the coNP membership proof, Section 7.2).  It is used by the test
  suite to cross-check the closure-based answer and exposed because a
  concrete counterexample is far more useful to a user than a bare "not
  implied".
"""

from __future__ import annotations

import itertools
from typing import Mapping, Optional, Sequence, Union

from ..core.pfd import PFD
from ..core.tableau import Wildcard
from ..dataset.relation import Relation
from ..dataset.schema import Schema
from ..patterns.ast import Pattern
from ..patterns.nfa import example_string
from .closure import closure_implies
from .consistency import check_consistency

#: Mutations applied to example strings when searching for a disagreeing RHS
#: value in the counterexample search.
_VALUE_VARIANTS = ("X", "0", "z", "Q9")


def implies(
    psis: Sequence[PFD],
    candidate: PFD,
    domains: Optional[Mapping[str, Union[Pattern, str]]] = None,
) -> bool:
    """Closure-based implication test ``Ψ |= ψ``.

    If ``Ψ`` is inconsistent (no satisfying instance exists) the implication
    holds vacuously for any candidate.
    """
    psis = list(psis)
    if not check_consistency(psis, domains=domains):
        return True
    return closure_implies(psis, candidate)


def _attributes_of(psis: Sequence[PFD], candidate: PFD) -> list[str]:
    seen: dict[str, None] = {}
    for pfd in (*psis, candidate):
        for attribute in pfd.attributes():
            seen.setdefault(attribute, None)
    return list(seen)


def _candidate_values_for_attribute(
    psis: Sequence[PFD], candidate: PFD, attribute: str
) -> list[str]:
    values: dict[str, None] = {}

    def consider(value: Optional[str]) -> None:
        if value is not None:
            values.setdefault(value, None)

    for pfd in (*psis, candidate):
        if attribute not in pfd.attributes():
            continue
        for row in pfd.tableau:
            cell = row.cell(attribute)
            if isinstance(cell, Wildcard):
                continue
            base = example_string(cell)
            consider(base)
            if cell.is_constant():
                consider(cell.constant_value())
            if base is not None:
                for variant in _VALUE_VARIANTS:
                    consider(base + variant)
    consider("")
    consider("neutral")
    return list(values)


def find_counterexample(
    psis: Sequence[PFD],
    candidate: PFD,
    max_assignments: int = 100_000,
    relation_name: str = "R",
) -> Optional[Relation]:
    """Search for a two-tuple instance with ``T |= Ψ`` but ``T not|= ψ``.

    Returns the witness relation, or ``None`` when no counterexample was
    found within the (bounded) search space.  A ``None`` answer is *not* a
    proof of implication — use :func:`implies` for that — but the bound is
    generous for the pattern sizes the paper works with.
    """
    psis = list(psis)
    attributes = _attributes_of(psis, candidate)
    per_attribute = [
        _candidate_values_for_attribute(psis, candidate, attribute)
        for attribute in attributes
    ]
    schema = Schema(attributes, name=relation_name)

    # Enumerate pairs of value assignments; to keep the space tractable the
    # two tuples only differ on the candidate's attributes (a violation of
    # the candidate only needs disagreement there).
    varying = [a for a in attributes if a in candidate.attributes()]
    fixed = [a for a in attributes if a not in varying]
    fixed_candidates = [per_attribute[attributes.index(a)] for a in fixed]
    varying_candidates = [per_attribute[attributes.index(a)] for a in varying]

    budget = max_assignments
    fixed_space = itertools.product(*fixed_candidates) if fixed else [()]
    for fixed_values in fixed_space:
        pair_space = itertools.product(
            itertools.product(*varying_candidates),
            itertools.product(*varying_candidates),
        )
        for first_values, second_values in pair_space:
            budget -= 1
            if budget <= 0:
                return None
            rows = []
            for values in (first_values, second_values):
                row = dict(zip(varying, values))
                row.update(dict(zip(fixed, fixed_values)))
                rows.append([row.get(a, "") for a in attributes])
            relation = Relation.from_rows(schema, rows, name=relation_name)
            if candidate.holds_on(relation):
                continue
            if all(pfd.holds_on(relation) for pfd in psis):
                return relation
    return None


def equivalent_pfd_sets(
    first: Sequence[PFD],
    second: Sequence[PFD],
    domains: Optional[Mapping[str, Union[Pattern, str]]] = None,
) -> bool:
    """Two PFD sets are equivalent when each implies every member of the other."""
    return all(implies(first, pfd, domains) for pfd in second) and all(
        implies(second, pfd, domains) for pfd in first
    )


def minimal_cover(
    psis: Sequence[PFD],
    domains: Optional[Mapping[str, Union[Pattern, str]]] = None,
) -> list[PFD]:
    """A subset of ``psis`` with the same logical consequences.

    Greedy reduction: drop any PFD already implied by the remaining ones.
    Used to de-duplicate discovery output before presenting it to a user.
    """
    kept = list(psis)
    changed = True
    while changed:
        changed = False
        for index, pfd in enumerate(kept):
            rest = kept[:index] + kept[index + 1 :]
            if rest and implies(rest, pfd, domains):
                kept = rest
                changed = True
                break
    return kept
