"""Partial-value extraction: tokenization and n-grams.

Restriction (i) of Section 4.2: special characters such as ``-`` in
``F-9-107`` or the space in ``John Charles`` are strong signals for
meaningful substrings, so when they are present a value is *tokenized* on
them.  Columns without such separators (zip codes, phone numbers, single
words) instead contribute *n-grams*: all prefixes/substrings up to the
length of the longest value in the column (Section 4.3).

Every extracted part carries its position so that the inverted index can key
entries by ``(substring, position)`` exactly as in the paper's algorithm.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Sequence

from ..patterns.alphabet import is_word_char


@dataclasses.dataclass(frozen=True)
class Part:
    """A partial value: a substring together with where it came from.

    Attributes
    ----------
    text:
        The substring itself.
    position:
        For tokens: the index of the token within the value (0-based).
        For n-grams: the character offset at which the gram starts.
    kind:
        ``"token"`` or ``"ngram"``.
    start:
        Character offset of the part inside the original value.
    includes_separator:
        For tokens only: whether ``text`` includes the separator that follows
        the token (``"John "`` rather than ``"John"``).  Keeping the
        separator makes induced patterns anchor on token boundaries, which is
        how the paper writes its name patterns (``John\\ \\A*``).
    """

    text: str
    position: int
    kind: str = "token"
    start: int = 0
    includes_separator: bool = False


def has_separators(value: str) -> bool:
    """True if the value contains at least one non-word character between
    word characters (i.e. it naturally splits into several tokens)."""
    seen_word = False
    seen_separator_after_word = False
    for char in value:
        if is_word_char(char):
            if seen_separator_after_word:
                return True
            seen_word = True
        elif seen_word:
            seen_separator_after_word = True
    return False


def tokenize(value: str, keep_separator: bool = True) -> list[Part]:
    """Split ``value`` into word tokens at non-word characters.

    Each returned part is a token; when ``keep_separator`` is True the token
    text additionally includes the separator characters that directly follow
    it (so ``"John Charles"`` yields ``"John "`` and ``"Charles"``), which is
    what anchors the discovered name patterns on a full first token.
    """
    parts: list[Part] = []
    token_start: int | None = None
    index = 0
    position = 0
    length = len(value)
    while index < length:
        char = value[index]
        if is_word_char(char):
            if token_start is None:
                token_start = index
            index += 1
            continue
        if token_start is not None:
            token_end = index
            separator_end = index
            if keep_separator:
                while separator_end < length and not is_word_char(value[separator_end]):
                    separator_end += 1
            parts.append(
                Part(
                    text=value[token_start:separator_end] if keep_separator else value[token_start:token_end],
                    position=position,
                    kind="token",
                    start=token_start,
                    includes_separator=keep_separator and separator_end > token_end,
                )
            )
            position += 1
            token_start = None
            index = separator_end if keep_separator else index + 1
            continue
        index += 1
    if token_start is not None:
        parts.append(
            Part(
                text=value[token_start:],
                position=position,
                kind="token",
                start=token_start,
            )
        )
    return parts


def token_texts(value: str, keep_separator: bool = False) -> list[str]:
    """Just the token strings of ``value`` (no positions)."""
    return [part.text for part in tokenize(value, keep_separator=keep_separator)]


def ngrams(
    value: str,
    max_length: int | None = None,
    min_length: int = 1,
    prefixes_only: bool = False,
) -> list[Part]:
    """All n-grams of ``value`` with their character offsets.

    Parameters
    ----------
    value:
        The cell value.
    max_length:
        Longest gram to produce; defaults to ``len(value)`` (the paper's
        "up to the length of the largest value in the column" is enforced by
        the caller, which knows the column).
    min_length:
        Shortest gram to produce.
    prefixes_only:
        When True only grams starting at offset 0 are produced.  Code-like
        columns (zips, phones) carry their signal in prefixes, and limiting
        to prefixes keeps the index linear in the value length instead of
        quadratic; this implements the single-semantics positional-grouping
        optimization of Section 4.4 at extraction time.
    """
    if max_length is None:
        max_length = len(value)
    grams: list[Part] = []
    starts: Iterable[int] = (0,) if prefixes_only else range(len(value))
    for start in starts:
        longest = min(max_length, len(value) - start)
        for gram_length in range(min_length, longest + 1):
            grams.append(
                Part(
                    text=value[start : start + gram_length],
                    position=start,
                    kind="ngram",
                    start=start,
                )
            )
    return grams


def prefix_ngrams(value: str, max_length: int | None = None, min_length: int = 1) -> list[Part]:
    """Prefix n-grams only (shorthand for ``ngrams(..., prefixes_only=True)``)."""
    return ngrams(value, max_length=max_length, min_length=min_length, prefixes_only=True)


def extract_parts(
    value: str,
    strategy: str,
    max_gram_length: int | None = None,
    prefixes_only: bool = True,
) -> list[Part]:
    """Extract partial values using the given strategy.

    ``strategy`` is ``"tokenize"``, ``"ngrams"`` or ``"value"`` (the whole
    value as a single part, used for short categorical columns such as a
    gender or state column where partial values add nothing).
    """
    if not value:
        return []
    if strategy == "tokenize":
        return tokenize(value)
    if strategy == "ngrams":
        return ngrams(value, max_length=max_gram_length, prefixes_only=prefixes_only)
    if strategy == "value":
        return [Part(text=value, position=0, kind="value", start=0)]
    raise ValueError(f"unknown extraction strategy {strategy!r}")


def iter_column_parts(
    values: Sequence[str],
    strategy: str,
    max_gram_length: int | None = None,
    prefixes_only: bool = True,
) -> Iterator[tuple[int, Part]]:
    """Yield ``(row_id, part)`` for every part of every value in a column."""
    for row_id, value in enumerate(values):
        for part in extract_parts(
            value,
            strategy,
            max_gram_length=max_gram_length,
            prefixes_only=prefixes_only,
        ):
            yield row_id, part
