"""The :class:`Relation` — the library's in-memory table.

A relation is column-oriented: each attribute maps to a list of string cell
values.  Every cell is a string (the pattern machinery is purely textual);
``None`` / missing values are stored as the empty string.  Row identity is
positional (row ``i`` of every column belongs to tuple ``i``), matching the
tuple-id lists used by the discovery algorithm's inverted index.

Relations are cheap to project, filter, and copy, and support the handful of
relational operations the discovery / cleaning pipelines need.  They are not
a general-purpose dataframe.

The engine structures a relation derives — dictionary columns, match masks,
stripped partitions — come in two representations (see
:mod:`repro.engine.backend`): the vectorized ``numpy`` columnar core and the
pure-Python fallback.  ``Relation(backend=...)`` (or :meth:`set_backend`)
pins one; by default the process default applies (``REPRO_ENGINE`` env var,
else numpy when importable).  Derived relations (``copy``/``project``/
``select_rows``) inherit the pin.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

from ..engine.backend import resolve_backend
from ..engine.dictionary import DictionaryColumn, DictionaryUpdate
from ..engine.partitions import PartitionManager
from ..exceptions import ReproError, SchemaError
from .mutations import (
    DeleteOp,
    MutationBatch,
    MutationResult,
    UpdateOp,
    UpsertOp,
)
from .schema import Attribute, AttributeRole, Schema


def _normalize_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, str):
        return value
    return str(value)


class Relation:
    """A named, schema-typed, column-oriented table of strings."""

    def __new__(
        cls,
        schema: Optional[Schema] = None,
        columns: Optional[Mapping[str, Sequence[str]]] = None,
        backend: Optional[str] = None,
    ):
        # ``Relation(..., backend="sql")`` transparently builds the
        # out-of-core SQLite-backed subclass.  Only an *explicit* backend
        # argument dispatches — a bare ``Relation(...)`` stays in memory even
        # under ``REPRO_ENGINE=sql`` (the env default engages via read_csv),
        # so existing construction sites keep their memory profile.
        if cls is Relation and backend is not None and resolve_backend(backend) == "sql":
            from ..storage.relation import SqlRelation

            return super().__new__(SqlRelation)
        return super().__new__(cls)

    def __init__(
        self,
        schema: Schema,
        columns: Optional[Mapping[str, Sequence[str]]] = None,
        backend: Optional[str] = None,
    ):
        self.schema = schema
        #: Engine backend pin (``"numpy"``/``"python"``); ``None`` defers to
        #: the process default at each dictionary build.
        self.backend: Optional[str] = resolve_backend(backend) if backend else None
        self._columns: dict[str, list[str]] = {
            name: list(columns[name]) if columns and name in columns else []
            for name in schema.attribute_names
        }
        lengths = {len(column) for column in self._columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        self._dictionaries: dict[str, DictionaryColumn] = {}
        self._partitions: Optional[PartitionManager] = None
        self._version = 0
        self._deleted: set[int] = set()

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Union[Schema, Sequence[str]],
        rows: Iterable[Sequence[object]],
        name: str = "R",
        backend: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from an iterable of row tuples.

        ``schema`` may be a :class:`Schema` or a plain list of column names.
        """
        if not isinstance(schema, Schema):
            schema = Schema(schema, name=name)
        relation = cls(schema, backend=backend)
        relation.append_rows(rows)
        return relation

    @classmethod
    def from_dicts(
        cls,
        rows: Sequence[Mapping[str, object]],
        schema: Optional[Schema] = None,
        name: str = "R",
        backend: Optional[str] = None,
    ) -> "Relation":
        """Build a relation from a list of dict rows.

        When ``schema`` is omitted, the keys of the first row define it.
        """
        if schema is None:
            if not rows:
                raise SchemaError("cannot infer a schema from zero dict rows")
            schema = Schema(list(rows[0].keys()), name=name)
        relation = cls(schema, backend=backend)
        relation.append_rows(rows)
        return relation

    # -- size / access ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return self.schema.attribute_names

    @property
    def row_count(self) -> int:
        first = self.schema.attribute_names[0]
        return len(self._columns[first])

    @property
    def version(self) -> int:
        """Monotonic mutation counter: bumped by every effective mutation —
        :meth:`append_rows` and :meth:`apply` (so also the :meth:`set_cell`
        / :meth:`delete_rows` wrappers) — alongside the dictionary/partition
        delta maintenance.  Consumers holding results derived from the
        relation (e.g. a :class:`~repro.session.CleaningSession`'s memoized
        stages) compare versions to decide whether a cached result is still
        current."""
        return self._version

    @property
    def deleted_rows(self) -> tuple[int, ...]:
        """Rows tombstoned by :meth:`delete_rows` / delete ops, ascending.

        Deleted rows keep their (dense, stable) row ids but hold only empty
        cells, which no partition, pattern, or PFD covers — they are
        invisible to every analytical result.
        """
        return tuple(sorted(self._deleted))

    def __len__(self) -> int:
        return self.row_count

    def column(self, name: str) -> list[str]:
        """The full column ``name`` (a direct reference, do not mutate)."""
        self.schema.position(name)
        return self._columns[name]

    def dictionary(self, name: str) -> DictionaryColumn:
        """The dictionary encoding of column ``name``.

        Built lazily on first use and cached; :meth:`append_rows` *extends*
        the cached object in place and :meth:`apply` (so also ``set_cell`` /
        ``delete_rows``) *patches* its code vector, so the returned object
        always reflects the current column contents.  Everything downstream
        (the pattern index, PFD validation, error detection) keys its
        memoized per-distinct-value work on the returned object's identity —
        which both appends and updates deliberately preserve.
        """
        self.schema.position(name)
        cached = self._dictionaries.get(name)
        if cached is None:
            cached = DictionaryColumn.from_values(
                self._columns[name], attribute=name, backend=self.backend
            )
            self._dictionaries[name] = cached
        return cached

    def set_backend(self, backend: Optional[str]) -> None:
        """Re-pin the engine backend and drop the derived engine state.

        Cached dictionaries and partitions are rebuilt lazily on the new
        backend; the rows themselves are untouched (no version bump — the
        data did not change, only its derived representation)."""
        self.backend = resolve_backend(backend) if backend else None
        self._dictionaries = {}
        if self._partitions is not None:
            self._partitions.invalidate()
            self._partitions = None

    def partitions(self) -> PartitionManager:
        """The relation's stripped-partition (PLI) cache.

        Built lazily on first use; :meth:`append_rows` *extends* the cached
        entries with the appended row ids, and :meth:`apply` (so also
        ``set_cell`` / ``delete_rows``) regroups only the touched
        attributes' entries in place, mirroring the dictionary cache.  The
        manager object itself is stable across mutations, so its hit/miss
        statistics describe the relation's whole lifetime.
        """
        if self._partitions is None:
            self._partitions = PartitionManager(self)
        return self._partitions

    def cell(self, row_id: int, name: str) -> str:
        """The value of attribute ``name`` in tuple ``row_id``."""
        return self._columns[name][row_id]

    def row(self, row_id: int) -> tuple[str, ...]:
        """Tuple ``row_id`` in schema order."""
        return tuple(self._columns[name][row_id] for name in self.schema.attribute_names)

    def row_dict(self, row_id: int) -> dict[str, str]:
        """Tuple ``row_id`` as an attribute → value dict."""
        return {name: self._columns[name][row_id] for name in self.schema.attribute_names}

    def iter_rows(self) -> Iterator[tuple[str, ...]]:
        for row_id in range(self.row_count):
            yield self.row(row_id)

    def iter_row_dicts(self) -> Iterator[dict[str, str]]:
        for row_id in range(self.row_count):
            yield self.row_dict(row_id)

    # -- mutation ------------------------------------------------------------

    def _normalize_row(self, row: Union[Sequence[object], Mapping[str, object]]) -> list[str]:
        if isinstance(row, Mapping):
            return [_normalize_cell(row.get(name, "")) for name in self.schema.attribute_names]
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row has {len(row)} values, schema {self.schema.name!r} "
                f"has {len(self.schema)} attributes"
            )
        return [_normalize_cell(value) for value in row]

    def append_row(self, row: Union[Sequence[object], Mapping[str, object]]) -> int:
        """Append one tuple; returns its row id.

        .. deprecated::
            Use ``append_rows([row]).start`` (or :meth:`apply` with an
            upsert op) — batching is the one mutation entry point, and even
            a single row is a one-element batch.
        """
        warnings.warn(
            "Relation.append_row is deprecated; use append_rows([row]).start",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.append_rows((row,)).start

    def append_rows(
        self, rows: Iterable[Union[Sequence[object], Mapping[str, object]]]
    ) -> range:
        """Append a batch of tuples; returns the appended row-id range.

        This is the incremental ingestion path: instead of invalidating the
        engine caches wholesale, every cached
        :class:`~repro.engine.dictionary.DictionaryColumn` is extended in
        place (fresh codes for unseen values, row lists patched) and the
        resulting per-column deltas are routed to the stripped-partition
        cache, which patches its equivalence classes and refreshes memoized
        intersections.  Downstream consumers keyed on the dictionary
        objects' identity (the pattern evaluator's memoized masks) observe
        the growth and extend themselves lazily.  An empty batch is a no-op
        (no version bump).
        """
        normalized = [self._normalize_row(row) for row in rows]
        start = self.row_count
        if not normalized:
            return range(start, start)
        names = self.schema.attribute_names
        for position, name in enumerate(names):
            column = self._columns[name]
            for values in normalized:
                column.append(values[position])
        if self._dictionaries:
            deltas = {
                name: dictionary.extend(
                    [values[self.schema.position(name)] for values in normalized]
                )
                for name, dictionary in self._dictionaries.items()
            }
            if self._partitions is not None:
                self._partitions.extend(deltas)
        elif self._partitions is not None:
            # No cached dictionaries to derive deltas from: the partitions
            # (if any survived) cannot be patched — full rebuild on demand.
            self._partitions.extend({})
        self._version += 1
        return range(start, start + len(normalized))

    def set_cell(self, row_id: int, name: str, value: object) -> None:
        """Overwrite one cell (used by error injection and repair).

        A one-cell :meth:`apply` batch.  Unlike the historical behavior
        (which dropped the attribute's dictionary and partitions wholesale),
        the engine caches are now *patched* in place: the dictionary object
        survives — so the evaluator's memoized per-distinct-value masks stay
        valid — and the partition cache regroups only the touched attribute.
        Writing the value the cell already holds is a no-op (no version
        bump).
        """
        self.apply(MutationBatch.update_cells(((row_id, name, value),)))

    def delete_rows(self, row_ids: Iterable[int]) -> MutationResult:
        """Tombstone rows: every cell becomes empty, row ids stay stable.

        Logical deletion keeps row ids dense and append-ordered (the
        contract the delta paths and the SQL backend's ``rid`` arithmetic
        rely on) while removing the rows from every analytical result —
        empty cells are uncovered by all partition and PFD semantics.  The
        deleted ids are recorded in :attr:`deleted_rows`.
        """
        return self.apply(MutationBatch.deletes(row_ids))

    def apply(self, batch: MutationBatch) -> MutationResult:
        """Apply a :class:`~repro.dataset.mutations.MutationBatch` atomically.

        The unified mutation entry point: updates and deletes target
        *pre-batch* row ids, appends land last, and the whole batch is
        validated (row ranges, attribute names, append shapes) before any
        cell changes.  Cached engine state is delta-maintained, not
        dropped — dictionaries patch their code vectors in place
        (:meth:`~repro.engine.dictionary.DictionaryColumn.update_rows`, so
        memoized evaluator masks survive), partitions regroup only the
        touched attributes
        (:meth:`~repro.engine.partitions.PartitionManager.apply_update`),
        and appended rows ride the existing :meth:`append_rows` extend path.
        """
        if not isinstance(batch, MutationBatch):
            raise ReproError(
                f"Relation.apply expects a MutationBatch, got {type(batch).__name__}"
            )
        appends, assignments, deletes = self._collect_mutations(batch)
        updates, touched, changed = self._apply_assignments(assignments)
        if touched:
            if self._partitions is not None:
                patchable = {name: update for name, update in updates.items() if update}
                for name in sorted(touched - set(patchable)):
                    self._partitions.invalidate_attribute(name)
                if patchable:
                    self._partitions.apply_update(patchable)
            self._version += 1
        if deletes:
            self._deleted.update(deletes)
        start = self.row_count
        appended = self.append_rows(appends) if appends else range(start, start)
        return MutationResult(
            appended=appended,
            updated_rows=tuple(sorted(changed - deletes)),
            deleted_rows=tuple(sorted(deletes)),
        )

    def _collect_mutations(
        self, batch: MutationBatch
    ) -> tuple[list[list[str]], dict[str, dict[int, str]], set[int]]:
        """Validate and flatten a batch against the pre-batch state.

        Returns normalized append rows, per-attribute ``{row_id: value}``
        assignments (later ops override earlier ones; deletes blank every
        attribute of their rows), and the deleted row-id set.  Raises before
        anything has been mutated, so a bad batch leaves the relation
        untouched.
        """
        row_count = self.row_count
        appends: list[list[str]] = []
        assignments: dict[str, dict[int, str]] = {}
        deletes: set[int] = set()
        for op in batch.ops:
            if isinstance(op, UpsertOp):
                appends.extend(self._normalize_row(row) for row in op.rows)
            elif isinstance(op, UpdateOp):
                if not 0 <= op.row_id < row_count:
                    raise ReproError(
                        f"update targets row {op.row_id}, but rows 0..{row_count - 1} "
                        "existed before this batch"
                    )
                for attribute, value in op.values:
                    self.schema.position(attribute)
                    assignments.setdefault(attribute, {})[op.row_id] = _normalize_cell(value)
            elif isinstance(op, DeleteOp):
                for row_id in op.row_ids:
                    if not 0 <= row_id < row_count:
                        raise ReproError(
                            f"delete targets row {row_id}, but rows 0..{row_count - 1} "
                            "existed before this batch"
                        )
                    deletes.add(row_id)
            else:  # pragma: no cover - MutationBatch validates op types
                raise ReproError(f"unknown mutation op {type(op).__name__}")
        for row_id in deletes:
            for name in self.schema.attribute_names:
                assignments.setdefault(name, {})[row_id] = ""
        return appends, assignments, deletes

    def _apply_assignments(
        self, assignments: Mapping[str, Mapping[int, str]]
    ) -> tuple[dict[str, DictionaryUpdate], set[str], set[int]]:
        """Write validated cell assignments into the columns and caches.

        Per attribute, assignments that match the stored value are dropped;
        the rest patch the cached dictionary in place (when one exists) and
        overwrite the raw column.  Returns the per-attribute
        :class:`DictionaryUpdate` records (for the partition cache), the
        set of attributes with at least one effective change, and the set
        of changed row ids.
        """
        updates: dict[str, DictionaryUpdate] = {}
        touched: set[str] = set()
        changed: set[int] = set()
        for name in self.schema.attribute_names:
            per_row = assignments.get(name)
            if not per_row:
                continue
            column = self._columns[name]
            effective = sorted(
                (row_id, value)
                for row_id, value in per_row.items()
                if column[row_id] != value
            )
            if not effective:
                continue
            touched.add(name)
            changed.update(row_id for row_id, _ in effective)
            cached = self._dictionaries.get(name)
            if cached is not None:
                updates[name] = cached.update_rows(effective)
            for row_id, value in effective:
                column[row_id] = value
        return updates, touched, changed

    # -- derivation ----------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Relation":
        """A deep copy (new column lists, same schema object)."""
        schema = self.schema if name is None else Schema(self.schema.attributes, name=name)
        clone = Relation(
            schema, {n: list(c) for n, c in self._columns.items()}, backend=self.backend
        )
        clone._deleted = set(self._deleted)
        return clone

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Relation":
        """A new relation with only the columns in ``names``."""
        schema = self.schema.project(names, name=name)
        return Relation(
            schema, {n: list(self._columns[n]) for n in names}, backend=self.backend
        )

    def select_rows(self, row_ids: Sequence[int], name: Optional[str] = None) -> "Relation":
        """A new relation with only the given rows, in the given order."""
        schema = self.schema if name is None else Schema(self.schema.attributes, name=name)
        columns = {
            attr: [self._columns[attr][row_id] for row_id in row_ids]
            for attr in self.schema.attribute_names
        }
        return Relation(schema, columns, backend=self.backend)

    def filter_rows(
        self, predicate: Callable[[dict[str, str]], bool], name: Optional[str] = None
    ) -> "Relation":
        """Rows for which ``predicate(row_dict)`` is true."""
        keep = [i for i in range(self.row_count) if predicate(self.row_dict(i))]
        return self.select_rows(keep, name=name)

    def sample_rows(self, count: int, seed: int = 0, name: Optional[str] = None) -> "Relation":
        """A deterministic random sample of ``count`` rows (without replacement)."""
        rng = random.Random(seed)
        count = min(count, self.row_count)
        row_ids = rng.sample(range(self.row_count), count)
        return self.select_rows(sorted(row_ids), name=name)

    def distinct_values(self, name: str) -> list[str]:
        """Distinct non-empty values of a column, in first-seen order."""
        seen: dict[str, None] = {}
        for value in self.column(name):
            if value and value not in seen:
                seen[value] = None
        return list(seen)

    def value_counts(self, name: str) -> dict[str, int]:
        """Histogram of the values of a column (including empty strings)."""
        counts: dict[str, int] = {}
        for value in self.column(name):
            counts[value] = counts.get(value, 0) + 1
        return counts

    def active_domain(self, name: str) -> set[str]:
        """The active domain of ``name``: the set of non-empty values present."""
        return {value for value in self.column(name) if value}

    # -- convenience ---------------------------------------------------------

    def declare_role(self, name: str, role: AttributeRole) -> None:
        """Declare the semantic role of a column in place."""
        self.schema = self.schema.with_role(name, role)

    def rename(self, name: str) -> "Relation":
        """A shallow-schema renamed copy of the relation."""
        return self.copy(name=name)

    def head(self, count: int = 5) -> list[dict[str, str]]:
        """The first ``count`` rows as dicts (handy in examples / debugging)."""
        return [self.row_dict(i) for i in range(min(count, self.row_count))]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Relation({self.schema.name!r}, rows={self.row_count}, "
            f"columns={list(self.schema.attribute_names)})"
        )

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width textual rendering of the first ``limit`` rows."""
        names = list(self.schema.attribute_names)
        rows = [self.row(i) for i in range(min(limit, self.row_count))]
        widths = [len(n) for n in names]
        for row in rows:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(value))
        header = "  ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        separator = "  ".join("-" * widths[i] for i in range(len(names)))
        lines = [header, separator]
        for row in rows:
            lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
        if self.row_count > limit:
            lines.append(f"... ({self.row_count - limit} more rows)")
        return "\n".join(lines)


def concat(relations: Sequence[Relation], name: Optional[str] = None) -> Relation:
    """Concatenate relations with identical attribute names."""
    if not relations:
        raise SchemaError("concat needs at least one relation")
    first = relations[0]
    for other in relations[1:]:
        if other.attribute_names != first.attribute_names:
            raise SchemaError(
                "cannot concat relations with different attributes: "
                f"{first.attribute_names} vs {other.attribute_names}"
            )
    result = first.copy(name=name or first.name)
    for other in relations[1:]:
        result.append_rows(other.iter_rows())
    return result
