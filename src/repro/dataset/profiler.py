"""Column profiling.

The first step of the discovery algorithm (Figure 4, line 1-3) profiles the
table to decide, per column,

* whether the column can participate in PFDs at all — purely *quantitative*
  columns (measurements, counts) are dropped, while *code* columns
  (zip codes, phone numbers, identifiers) are kept even though they look
  numeric (Section 5.4), and
* how partial values are extracted from the column — tokenization when the
  values contain separator characters, n-grams otherwise, or the whole value
  for short categorical columns (Section 4.2, restriction (i)).

The profiler is heuristic by design (the paper's is too); every decision can
be overridden by declaring a role on the schema or passing explicit
strategies to the discoverer.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..patterns.induction import signature
from .relation import Relation
from .schema import AttributeRole
from .tokenizer import has_separators


@dataclasses.dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics and decisions for one column."""

    name: str
    role: AttributeRole
    strategy: str
    distinct_count: int
    non_empty_count: int
    max_length: int
    mean_length: float
    distinct_ratio: float
    separator_fraction: float
    numeric_fraction: float
    dominant_shape_fraction: float

    @property
    def usable_for_pfd(self) -> bool:
        """Columns dropped by the profiler do not take part in discovery."""
        return self.role is not AttributeRole.QUANTITATIVE and self.non_empty_count > 0


@dataclasses.dataclass(frozen=True)
class TableProfile:
    """Profiles for every column of a relation."""

    relation_name: str
    columns: tuple[ColumnProfile, ...]

    def column(self, name: str) -> ColumnProfile:
        for profile in self.columns:
            if profile.name == name:
                return profile
        raise KeyError(name)

    @property
    def usable_columns(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.columns if p.usable_for_pfd)

    def strategy(self, name: str) -> str:
        return self.column(name).strategy


#: Columns with at most this many distinct values (and short values) are
#: treated as categorical: the whole value is the only meaningful "part".
_CATEGORICAL_DISTINCT_LIMIT = 60
_CATEGORICAL_LENGTH_LIMIT = 24

#: Fraction of numeric-looking values above which a column is numeric-ish.
_NUMERIC_FRACTION_THRESHOLD = 0.9

#: Numeric columns whose value lengths take at most this many distinct
#: lengths are considered *codes* (zip = 5 or 9 digits, phone = 10, ...).
_CODE_LENGTH_VARIETY_LIMIT = 3


def _looks_numeric(value: str) -> bool:
    stripped = value.strip().replace(",", "")
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False


def _looks_like_code(values: list[str]) -> bool:
    """Integer-looking values whose lengths are highly regular (zip, phone,
    ID columns).  Decimal points or huge length variety indicate a genuine
    measurement instead."""
    lengths: set[int] = set()
    for value in values:
        stripped = value.strip()
        if not stripped:
            continue
        digits_only = stripped.replace("-", "").replace(" ", "").replace("(", "").replace(")", "")
        if not digits_only.isdigit():
            return False
        lengths.add(len(stripped))
    return 0 < len(lengths) <= _CODE_LENGTH_VARIETY_LIMIT


def profile_column(relation: Relation, name: str) -> ColumnProfile:
    """Profile a single column of ``relation``.

    Every statistic is computed over the *distinct* values weighted by their
    occurrence counts, never over the decoded rows: the numbers are identical
    to a full row scan (integer numerators divided by the same denominators),
    but the work and memory are O(distinct) — which keeps profiling cheap on
    out-of-core relations whose rows never fit in memory at once.
    """
    dictionary = relation.dictionary(name)
    counts = dictionary.counts()
    weighted = [
        (value, counts[code])
        for code, value in enumerate(dictionary.values)
        if value and counts[code]
    ]
    distinct_values = [value for value, _count in weighted]
    declared_role = relation.schema.role(name)
    distinct = len(weighted)
    non_empty_count = sum(count for _value, count in weighted)
    max_length = max((len(v) for v in distinct_values), default=0)
    mean_length = (
        sum(len(value) * count for value, count in weighted) / non_empty_count
        if non_empty_count
        else 0.0
    )
    distinct_ratio = distinct / non_empty_count if non_empty_count else 0.0
    separator_fraction = (
        sum(count for value, count in weighted if has_separators(value)) / non_empty_count
        if non_empty_count
        else 0.0
    )
    numeric_fraction = (
        sum(count for value, count in weighted if _looks_numeric(value)) / non_empty_count
        if non_empty_count
        else 0.0
    )
    shape_histogram: dict[tuple, int] = {}
    for value, count in weighted:
        shape = signature(value)
        shape_histogram[shape] = shape_histogram.get(shape, 0) + count
    dominant_fraction = (
        max(shape_histogram.values()) / non_empty_count if shape_histogram else 0.0
    )

    role = declared_role
    if role is AttributeRole.UNKNOWN:
        role = _infer_role(distinct_values, numeric_fraction)

    strategy = _choose_strategy(
        role=role,
        distinct=distinct,
        non_empty_count=non_empty_count,
        max_length=max_length,
        separator_fraction=separator_fraction,
    )

    return ColumnProfile(
        name=name,
        role=role,
        strategy=strategy,
        distinct_count=distinct,
        non_empty_count=non_empty_count,
        max_length=max_length,
        mean_length=mean_length,
        distinct_ratio=distinct_ratio,
        separator_fraction=separator_fraction,
        numeric_fraction=numeric_fraction,
        dominant_shape_fraction=dominant_fraction,
    )


def _infer_role(non_empty: list[str], numeric_fraction: float) -> AttributeRole:
    if not non_empty:
        return AttributeRole.QUALITATIVE
    if numeric_fraction >= _NUMERIC_FRACTION_THRESHOLD:
        if _looks_like_code(non_empty):
            return AttributeRole.CODE
        return AttributeRole.QUANTITATIVE
    return AttributeRole.QUALITATIVE


def _choose_strategy(
    role: AttributeRole,
    distinct: int,
    non_empty_count: int,
    max_length: int,
    separator_fraction: float,
) -> str:
    if role is AttributeRole.QUANTITATIVE:
        return "value"
    is_categorical = (
        distinct <= _CATEGORICAL_DISTINCT_LIMIT
        and max_length <= _CATEGORICAL_LENGTH_LIMIT
        and non_empty_count > 0
        and distinct < non_empty_count
    )
    if is_categorical and separator_fraction < 0.5:
        return "value"
    if separator_fraction >= 0.5:
        return "tokenize"
    return "ngrams"


def profile_relation(relation: Relation) -> TableProfile:
    """Profile every column of ``relation`` (Figure 4, lines 1-3)."""
    profiles = tuple(profile_column(relation, name) for name in relation.attribute_names)
    return TableProfile(relation_name=relation.name, columns=profiles)


def candidate_attributes(
    relation: Relation, profile: Optional[TableProfile] = None
) -> list[str]:
    """Attributes that survive profiling and may appear in a PFD."""
    profile = profile or profile_relation(relation)
    return list(profile.usable_columns)
