"""Relational substrate: schemas, relations, CSV I/O, profiling, and the
partial-value inverted index used by PFD discovery."""

from .csvio import (
    read_csv,
    relation_from_csv_string,
    relation_to_csv_string,
    write_csv,
)
from .index import AttributeIndex, PatternIndex
from .mutations import (
    DeleteOp,
    MutationBatch,
    MutationResult,
    UpdateOp,
    UpsertOp,
    batch_from_document,
)
from .profiler import (
    ColumnProfile,
    TableProfile,
    candidate_attributes,
    profile_column,
    profile_relation,
)
from .relation import Relation, concat
from .schema import Attribute, AttributeRole, Schema
from .tokenizer import (
    Part,
    extract_parts,
    has_separators,
    iter_column_parts,
    ngrams,
    prefix_ngrams,
    token_texts,
    tokenize,
)

__all__ = [
    "read_csv",
    "relation_from_csv_string",
    "relation_to_csv_string",
    "write_csv",
    "AttributeIndex",
    "PatternIndex",
    "DeleteOp",
    "MutationBatch",
    "MutationResult",
    "UpdateOp",
    "UpsertOp",
    "batch_from_document",
    "ColumnProfile",
    "TableProfile",
    "candidate_attributes",
    "profile_column",
    "profile_relation",
    "Relation",
    "concat",
    "Attribute",
    "AttributeRole",
    "Schema",
    "Part",
    "extract_parts",
    "has_separators",
    "iter_column_parts",
    "ngrams",
    "prefix_ngrams",
    "token_texts",
    "tokenize",
]
