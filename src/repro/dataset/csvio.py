"""CSV import / export for :class:`~repro.dataset.relation.Relation`.

The experiment datasets ship as generated relations, but downstream users of
the library will want to run discovery on their own files, so the reader
handles the usual CSV dialects (delimiter sniffing, optional header) and the
writer is lossless for the string-valued relations this library uses.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from ..exceptions import SchemaError
from .relation import Relation
from .schema import Schema


def read_csv(
    source: Union[str, Path, io.TextIOBase],
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
    has_header: bool = True,
    column_names: Optional[Sequence[str]] = None,
) -> Relation:
    """Read a CSV file (or open text stream) into a relation.

    Parameters
    ----------
    source:
        Path or readable text stream.
    name:
        Relation name; defaults to the file stem or ``"R"`` for streams.
    delimiter:
        Field delimiter; sniffed from the first 4 KiB when omitted.
    has_header:
        Whether the first row holds column names.
    column_names:
        Explicit column names (required when ``has_header`` is False and
        useful to override a header).
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        inferred_name = name or path.stem
    else:
        text = source.read()
        inferred_name = name or "R"

    if delimiter is None:
        delimiter = _sniff_delimiter(text)

    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(f"CSV source {inferred_name!r} contains no rows")

    if has_header:
        header = [cell.strip() for cell in rows[0]]
        data_rows = rows[1:]
    else:
        header = []
        data_rows = rows

    if column_names is not None:
        header = list(column_names)
    elif not has_header:
        width = max(len(row) for row in data_rows)
        header = [f"column_{i + 1}" for i in range(width)]

    schema = Schema(header, name=inferred_name)
    relation = Relation(schema)
    for row in data_rows:
        padded = list(row) + [""] * (len(header) - len(row))
        relation.append_row(padded[: len(header)])
    return relation


def write_csv(
    relation: Relation,
    destination: Union[str, Path, io.TextIOBase],
    delimiter: str = ",",
    include_header: bool = True,
) -> None:
    """Write ``relation`` to a CSV file or open text stream."""
    if isinstance(destination, (str, Path)):
        path = Path(destination)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            _write_csv_to(relation, handle, delimiter, include_header)
    else:
        _write_csv_to(relation, destination, delimiter, include_header)


def _write_csv_to(
    relation: Relation, handle, delimiter: str, include_header: bool
) -> None:
    writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
    if include_header:
        writer.writerow(relation.schema.attribute_names)
    for row in relation.iter_rows():
        writer.writerow(row)


def relation_to_csv_string(relation: Relation, delimiter: str = ",") -> str:
    """The relation serialized as a CSV string (round-trips via read_csv)."""
    buffer = io.StringIO()
    _write_csv_to(relation, buffer, delimiter, include_header=True)
    return buffer.getvalue()


def relation_from_csv_string(
    text: str, name: str = "R", delimiter: Optional[str] = None
) -> Relation:
    """Parse a CSV string into a relation (inverse of the writer)."""
    return read_csv(io.StringIO(text), name=name, delimiter=delimiter)


def _sniff_delimiter(text: str) -> str:
    sample = text[:4096]
    try:
        dialect = csv.Sniffer().sniff(sample, delimiters=",;\t|")
        return dialect.delimiter
    except csv.Error:
        return ","
