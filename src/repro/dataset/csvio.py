"""CSV import / export for :class:`~repro.dataset.relation.Relation`.

The experiment datasets ship as generated relations, but downstream users of
the library will want to run discovery on their own files, so the reader
handles the usual CSV dialects (delimiter sniffing, optional header) and the
writer is lossless for the string-valued relations this library uses.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence, Union

from ..engine.backend import SQL, resolve_backend
from ..exceptions import SchemaError
from .relation import Relation
from .schema import Schema


def read_csv(
    source: Union[str, Path, io.TextIOBase],
    name: Optional[str] = None,
    delimiter: Optional[str] = None,
    has_header: bool = True,
    column_names: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> Relation:
    """Read a CSV file (or open text stream) into a relation.

    Parameters
    ----------
    source:
        Path or readable text stream.
    name:
        Relation name; defaults to the file stem or ``"R"`` for streams.
    delimiter:
        Field delimiter; sniffed from the first 4 KiB when omitted.
    has_header:
        Whether the first row holds column names.
    column_names:
        Explicit column names (required when ``has_header`` is False and
        useful to override a header).
    backend:
        Engine backend pin for the loaded relation.  When it resolves to
        ``"sql"`` — explicitly, or because the process default
        (``REPRO_ENGINE=sql``) says so — the file is *streamed* in bounded
        chunks into an out-of-core SQLite-backed relation: peak memory is
        one chunk plus the per-column distinct values, never the decoded
        table.  Any other value pins the in-memory relation's engine
        backend; ``None`` keeps the previous behavior (in-memory, process
        default).
    """
    if resolve_backend(backend) == SQL:
        return _read_csv_sql(source, name, delimiter, has_header, column_names)
    if isinstance(source, (str, Path)):
        path = Path(source)
        text = path.read_text(encoding="utf-8")
        inferred_name = name or path.stem
    else:
        text = source.read()
        inferred_name = name or "R"

    if delimiter is None:
        delimiter = _sniff_delimiter(text)

    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError(f"CSV source {inferred_name!r} contains no rows")

    if has_header:
        header = [cell.strip() for cell in rows[0]]
        data_rows = rows[1:]
    else:
        header = []
        data_rows = rows

    if column_names is not None:
        header = list(column_names)
    elif not has_header:
        width = max(len(row) for row in data_rows)
        header = [f"column_{i + 1}" for i in range(width)]

    schema = Schema(header, name=inferred_name)
    relation = Relation(schema, backend=backend)
    relation.append_rows(
        (list(row) + [""] * (len(header) - len(row)))[: len(header)]
        for row in data_rows
    )
    return relation


def _read_csv_sql(
    source: Union[str, Path, io.TextIOBase],
    name: Optional[str],
    delimiter: Optional[str],
    has_header: bool,
    column_names: Optional[Sequence[str]],
) -> Relation:
    """Chunked out-of-core ingestion (semantics identical to the in-memory
    reader: same sniffing, header, padding/truncation, and empty handling —
    pinned by the round-trip parity tests).

    Path sources are re-opened per pass and never fully buffered.  Stream
    sources are drained once into memory (they cannot be rewound); callers
    with out-of-core data pass paths.
    """
    from ..storage.store import BATCH_ROWS

    if isinstance(source, (str, Path)):
        path = Path(source)
        inferred_name = name or path.stem

        def open_source() -> io.TextIOBase:
            return path.open("r", encoding="utf-8", newline="")

    else:
        text = source.read()
        inferred_name = name or "R"

        def open_source() -> io.TextIOBase:
            return io.StringIO(text)

    if delimiter is None:
        with open_source() as handle:
            delimiter = _sniff_delimiter(handle.read(4096))

    header: list[str] = []
    if column_names is not None:
        header = list(column_names)
    elif not has_header:
        # The in-memory reader sizes the schema to the widest data row;
        # streaming needs one extra (cheap, unbuffered) pass to learn it.
        width = 0
        with open_source() as handle:
            for row in csv.reader(handle, delimiter=delimiter):
                if row and len(row) > width:
                    width = len(row)
        header = [f"column_{i + 1}" for i in range(width)]

    relation: Optional[Relation] = None
    saw_any = False

    def flush(batch: list[list[str]]) -> None:
        nonlocal relation
        if relation is None:
            relation = Relation(Schema(header, name=inferred_name), backend=SQL)
        if batch:
            relation.append_rows(batch)

    with open_source() as handle:
        pending_header = has_header
        batch: list[list[str]] = []
        for row in csv.reader(handle, delimiter=delimiter):
            if not row:
                continue
            saw_any = True
            if pending_header:
                pending_header = False
                if column_names is None:
                    header = [cell.strip() for cell in row]
                continue
            width = len(header)
            batch.append((list(row) + [""] * (width - len(row)))[:width])
            if len(batch) >= BATCH_ROWS:
                flush(batch)
                batch = []
        if not saw_any:
            raise SchemaError(f"CSV source {inferred_name!r} contains no rows")
        flush(batch)
    assert relation is not None
    return relation


def estimate_csv_rows(source: Union[str, Path], has_header: bool = True) -> int:
    """A cheap data-row estimate for a CSV path: line count minus header.

    Reads the file in binary chunks without parsing (quoted newlines count,
    so this can overestimate) — intended for backend auto-selection budgets,
    not exact accounting.  Two edges are pinned exactly: an empty (0-byte)
    file estimates 0 rows, and a final line without a trailing newline still
    counts as a line.  ``has_header=False`` skips the header subtraction for
    headerless files.
    """
    count = 0
    last = b"\n"
    with Path(source).open("rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            count += chunk.count(b"\n")
            last = chunk[-1:]
    if last != b"\n":
        count += 1  # unterminated final line
    return max(0, count - 1 if has_header else count)


def write_csv(
    relation: Relation,
    destination: Union[str, Path, io.TextIOBase],
    delimiter: str = ",",
    include_header: bool = True,
) -> None:
    """Write ``relation`` to a CSV file or open text stream."""
    if isinstance(destination, (str, Path)):
        path = Path(destination)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8", newline="") as handle:
            _write_csv_to(relation, handle, delimiter, include_header)
    else:
        _write_csv_to(relation, destination, delimiter, include_header)


def _write_csv_to(
    relation: Relation, handle, delimiter: str, include_header: bool
) -> None:
    writer = csv.writer(handle, delimiter=delimiter, lineterminator="\n")
    if include_header:
        writer.writerow(relation.schema.attribute_names)
    for row in relation.iter_rows():
        writer.writerow(row)


def relation_to_csv_string(relation: Relation, delimiter: str = ",") -> str:
    """The relation serialized as a CSV string (round-trips via read_csv)."""
    buffer = io.StringIO()
    _write_csv_to(relation, buffer, delimiter, include_header=True)
    return buffer.getvalue()


def relation_from_csv_string(
    text: str, name: str = "R", delimiter: Optional[str] = None
) -> Relation:
    """Parse a CSV string into a relation (inverse of the writer)."""
    return read_csv(io.StringIO(text), name=name, delimiter=delimiter)


def _sniff_delimiter(text: str) -> str:
    sample = text[:4096]
    try:
        dialect = csv.Sniffer().sniff(sample, delimiters=",;\t|")
        return dialect.delimiter
    except csv.Error:
        return ","
