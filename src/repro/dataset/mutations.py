"""The unified mutation primitives every write path speaks.

A :class:`MutationBatch` is an ordered list of upsert / update / delete ops
applied atomically by :meth:`repro.dataset.relation.Relation.apply`: the
whole batch is validated against the pre-batch schema and row count before
any cell changes, updates and deletes target *pre-batch* row ids, and
appends land last.  The same batch object is what
:meth:`repro.session.CleaningSession.apply` (and its ``update`` / ``delete``
/ ``append`` wrappers), the service's ``/tenants/<t>/update`` +
``/delete`` endpoints, and the CLI ``update`` / ``delete`` subcommands all
construct — one mutation entry point per layer.

Deletes are *logical tombstones*: every cell of a deleted row becomes the
empty string, which no partition, pattern, or PFD covers, so the row drops
out of every analytical result while row ids stay dense and stable (the
documented contract appends, partitions, and the SQL backend's ``rid``
arithmetic all rely on).  :attr:`Relation.deleted_rows` records which rows
were deleted explicitly.

The wire form (shared by the service bodies and the CLI ops files) is a
JSON document with any of the keys ``cells`` (``[[row, attribute, value],
...]``), ``rows`` (rows to append), ``delete`` (row ids), or ``ops`` (a
list of ``{"op": "update"|"upsert"|"delete", ...}`` objects applied in
order) — parsed by :func:`batch_from_document`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Sequence, Tuple, Union

from ..exceptions import ReproError

#: A row to append: a sequence of cell values or an attribute -> value map.
RowLike = Union[Sequence[object], Mapping[str, object]]


@dataclasses.dataclass(frozen=True)
class UpsertOp:
    """Append rows (sequences in schema order, or attribute -> value maps)."""

    rows: Tuple[RowLike, ...]

    def __init__(self, rows: Iterable[RowLike]):
        object.__setattr__(self, "rows", tuple(rows))


@dataclasses.dataclass(frozen=True)
class UpdateOp:
    """Overwrite some attributes of one existing row."""

    row_id: int
    values: Tuple[Tuple[str, object], ...]

    def __init__(self, row_id: int, values: Union[Mapping[str, object], Iterable[Tuple[str, object]]]):
        object.__setattr__(self, "row_id", int(row_id))
        pairs = values.items() if isinstance(values, Mapping) else values
        object.__setattr__(self, "values", tuple((str(k), v) for k, v in pairs))


@dataclasses.dataclass(frozen=True)
class DeleteOp:
    """Tombstone existing rows (all their cells become empty)."""

    row_ids: Tuple[int, ...]

    def __init__(self, row_ids: Iterable[int]):
        object.__setattr__(self, "row_ids", tuple(int(row_id) for row_id in row_ids))


MutationOp = Union[UpsertOp, UpdateOp, DeleteOp]


@dataclasses.dataclass(frozen=True)
class MutationBatch:
    """An ordered list of mutation ops, applied atomically."""

    ops: Tuple[MutationOp, ...]

    def __init__(self, ops: Iterable[MutationOp]):
        ops = tuple(ops)
        for op in ops:
            if not isinstance(op, (UpsertOp, UpdateOp, DeleteOp)):
                raise ReproError(
                    f"a MutationBatch holds Upsert/Update/Delete ops, got {type(op).__name__}"
                )
        object.__setattr__(self, "ops", ops)

    # -- builders ------------------------------------------------------------

    @classmethod
    def appends(cls, rows: Iterable[RowLike]) -> "MutationBatch":
        """A batch appending ``rows``."""
        return cls((UpsertOp(rows),))

    @classmethod
    def update_cells(cls, cells: Iterable[Tuple[int, str, object]]) -> "MutationBatch":
        """A batch overwriting individual ``(row_id, attribute, value)`` cells."""
        return cls(
            tuple(UpdateOp(row_id, ((attribute, value),)) for row_id, attribute, value in cells)
        )

    @classmethod
    def deletes(cls, row_ids: Iterable[int]) -> "MutationBatch":
        """A batch tombstoning ``row_ids``."""
        return cls((DeleteOp(row_ids),))

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __iter__(self):
        return iter(self.ops)


@dataclasses.dataclass(frozen=True)
class MutationResult:
    """What one :meth:`Relation.apply` call changed.

    Attributes
    ----------
    appended:
        Row ids of the appended rows (empty range if the batch had none).
    updated_rows:
        Pre-existing rows with at least one *effective* cell overwrite
        (assignments that matched the stored value are dropped), ascending.
    deleted_rows:
        Rows the batch tombstoned, ascending (recorded even when the row was
        already blank).
    """

    appended: range
    updated_rows: Tuple[int, ...]
    deleted_rows: Tuple[int, ...]

    @property
    def changed_rows(self) -> Tuple[int, ...]:
        """Every row this batch touched (updated, deleted, or appended),
        ascending — the scope argument for
        :meth:`repro.cleaning.detector.ErrorDetector.detect`."""
        changed = set(self.updated_rows)
        changed.update(self.deleted_rows)
        changed.update(self.appended)
        return tuple(sorted(changed))

    def __bool__(self) -> bool:
        return bool(self.updated_rows or self.deleted_rows or len(self.appended))


def batch_from_document(document: Mapping) -> MutationBatch:
    """Parse the shared wire form of a mutation batch (service + CLI).

    Recognized keys (any combination; simple keys are applied in the fixed
    order updates, deletes, appends):

    - ``cells``: ``[[row_id, attribute, value], ...]`` cell overwrites;
    - ``delete``: ``[row_id, ...]`` rows to tombstone;
    - ``rows``: rows to append (arrays in schema order or objects);
    - ``ops``: explicit op objects ``{"op": "update", "row": r, "values":
      {attr: value}}`` / ``{"op": "delete", "rows": [...]}`` / ``{"op":
      "upsert", "rows": [...]}``, applied in list order.
    """
    if not isinstance(document, Mapping):
        raise ReproError("a mutation document must be a JSON object")
    ops: list[MutationOp] = []
    cells = document.get("cells")
    if cells is not None:
        if not isinstance(cells, Sequence) or isinstance(cells, (str, bytes)):
            raise ReproError("'cells' must be a list of [row_id, attribute, value] triples")
        for entry in cells:
            if not isinstance(entry, Sequence) or isinstance(entry, (str, bytes)) or len(entry) != 3:
                raise ReproError(
                    f"each cell overwrite must be a [row_id, attribute, value] triple, got {entry!r}"
                )
            row_id, attribute, value = entry
            ops.append(UpdateOp(_int(row_id, "cell row id"), ((str(attribute), value),)))
    deletes = document.get("delete")
    if deletes is not None:
        if not isinstance(deletes, Sequence) or isinstance(deletes, (str, bytes)):
            raise ReproError("'delete' must be a list of row ids")
        ops.append(DeleteOp(_int(row_id, "delete row id") for row_id in deletes))
    rows = document.get("rows")
    if rows is not None:
        if not isinstance(rows, Sequence) or isinstance(rows, (str, bytes)):
            raise ReproError("'rows' must be a list of rows")
        ops.append(UpsertOp(rows))
    for entry in document.get("ops") or ():
        if not isinstance(entry, Mapping):
            raise ReproError(f"each op must be an object, got {entry!r}")
        kind = entry.get("op")
        if kind == "update":
            values = entry.get("values")
            if not isinstance(values, Mapping):
                raise ReproError("an update op needs a 'values' object")
            ops.append(UpdateOp(_int(entry.get("row"), "update row id"), values))
        elif kind == "delete":
            entry_rows = entry.get("rows")
            if not isinstance(entry_rows, Sequence) or isinstance(entry_rows, (str, bytes)):
                raise ReproError("a delete op needs a 'rows' list")
            ops.append(DeleteOp(_int(row_id, "delete row id") for row_id in entry_rows))
        elif kind == "upsert":
            entry_rows = entry.get("rows")
            if not isinstance(entry_rows, Sequence) or isinstance(entry_rows, (str, bytes)):
                raise ReproError("an upsert op needs a 'rows' list")
            ops.append(UpsertOp(entry_rows))
        else:
            raise ReproError(f"unknown mutation op {kind!r} (expected update/delete/upsert)")
    if not ops:
        raise ReproError(
            "the mutation document is empty: provide 'cells', 'delete', 'rows', or 'ops'"
        )
    return MutationBatch(ops)


def _int(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(f"{what} must be an integer, got {value!r}")
    return value
