"""The hash-based inverted pattern index of the discovery algorithm.

Figure 4 (lines 5-12) builds, per attribute, a hash map from
``(substring, position)`` to the list of tuple ids whose value contains that
substring at that position.  Section 5.4 additionally mentions a second index
from ``(tuple id, attribute)`` to the parts appearing in that cell, which
speeds up the per-group frequent-pattern lookups; both are implemented here.

Section 4.4's *substring pruning* is also implemented: an entry whose tuple-id
list is identical to that of a longer entry that contains it (same position)
carries no extra information, and only the most specific entry is kept.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from .profiler import TableProfile, profile_relation
from .relation import Relation
from .tokenizer import Part, extract_parts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine ← dataset)
    from ..engine.evaluator import ColumnMatchSet, PatternEvaluator


#: Key of an index entry: the partial value and the position it occupies.
PartKey = tuple[str, int]


@dataclasses.dataclass
class AttributeIndex:
    """Inverted list for a single attribute.

    ``entries`` maps ``(text, position)`` to the sorted list of row ids in
    which that partial value occurs; ``row_parts`` maps a row id to the keys
    extracted from that row's cell.
    """

    attribute: str
    strategy: str
    entries: dict[PartKey, list[int]]
    row_parts: dict[int, list[PartKey]]

    def ids(self, key: PartKey) -> list[int]:
        return self.entries.get(key, [])

    def support(self, key: PartKey) -> int:
        return len(self.entries.get(key, ()))

    def frequent_keys(self, minimum_support: int) -> list[PartKey]:
        """Keys appearing in at least ``minimum_support`` rows, ordered by
        descending support and then by descending specificity (longer text
        first) so that the most informative patterns are examined first."""
        keys = [
            key
            for key, ids in self.entries.items()
            if len(ids) >= minimum_support
        ]
        keys.sort(key=lambda key: (-len(self.entries[key]), -len(key[0]), key[0], key[1]))
        return keys

    def keys_for_rows(self, row_ids: Iterable[int]) -> dict[PartKey, int]:
        """Histogram of part keys over the given rows (uses the row index)."""
        histogram: dict[PartKey, int] = defaultdict(int)
        for row_id in row_ids:
            for key in self.row_parts.get(row_id, ()):
                histogram[key] += 1
        return dict(histogram)

    @property
    def entry_count(self) -> int:
        return len(self.entries)


class PatternIndex:
    """The full inverted index over every usable attribute of a relation.

    Beyond the ``(substring, position)`` inverted lists, the index fronts the
    engine's set-at-a-time matcher for its relation: candidate *patterns*
    (as opposed to raw parts) for one attribute are evaluated as a batch via
    :meth:`match_patterns` — one shared-DFA scan per distinct column value
    for the whole candidate set.  Pass the discovery-wide ``evaluator`` so
    these matches are shared with generalization, selection, and detection.
    """

    def __init__(
        self,
        relation: Relation,
        profile: Optional[TableProfile] = None,
        prune_substrings: bool = True,
        prefixes_only: bool = True,
        evaluator: Optional["PatternEvaluator"] = None,
    ):
        self.relation = relation
        self.profile = profile or profile_relation(relation)
        self.prune_substrings = prune_substrings
        self.prefixes_only = prefixes_only
        self._evaluator = evaluator
        self._attributes: dict[str, AttributeIndex] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        for column in self.profile.usable_columns:
            self._attributes[column] = self._build_attribute(column)

    def _build_attribute(self, attribute: str) -> AttributeIndex:
        strategy = self.profile.strategy(attribute)
        dictionary = self.relation.dictionary(attribute)
        max_gram = self.profile.column(attribute).max_length
        # Parts are a function of the cell value alone, so extract them once
        # per *distinct* value and broadcast to rows through the codes.
        keys_by_code: list[list[PartKey]] = []
        for value in dictionary.values:
            if not value:
                keys_by_code.append([])
                continue
            parts = extract_parts(
                value,
                strategy,
                max_gram_length=max_gram,
                prefixes_only=self.prefixes_only,
            )
            seen_keys: set[PartKey] = set()
            keys: list[PartKey] = []
            for part in parts:
                key = self._part_key(part)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                keys.append(key)
            keys_by_code.append(keys)
        entries: dict[PartKey, list[int]] = defaultdict(list)
        row_parts: dict[int, list[PartKey]] = {}
        for row_id, code in enumerate(dictionary.codes):
            keys = keys_by_code[code]
            if not keys:
                continue
            row_parts[row_id] = keys
            for key in keys:
                entries[key].append(row_id)
        if self.prune_substrings:
            entries, row_parts = _prune_dominated_entries(entries, row_parts)
        return AttributeIndex(
            attribute=attribute,
            strategy=strategy,
            entries=dict(entries),
            row_parts=dict(row_parts),
        )

    @staticmethod
    def _part_key(part: Part) -> PartKey:
        return (part.text, part.position)

    # -- lookup --------------------------------------------------------------

    def attribute_index(self, attribute: str) -> AttributeIndex:
        return self._attributes[attribute]

    @property
    def attributes(self) -> list[str]:
        return list(self._attributes)

    def strategy(self, attribute: str) -> str:
        return self._attributes[attribute].strategy

    def frequent_keys(self, attribute: str, minimum_support: int) -> list[PartKey]:
        return self._attributes[attribute].frequent_keys(minimum_support)

    # -- set-at-a-time pattern evaluation ------------------------------------

    @property
    def evaluator(self) -> "PatternEvaluator":
        """The engine evaluator backing :meth:`match_patterns` (created
        lazily and scoped to this index when none was supplied)."""
        if self._evaluator is None:
            from ..engine.evaluator import PatternEvaluator

            self._evaluator = PatternEvaluator()
        return self._evaluator

    def match_patterns(self, attribute: str, patterns: Sequence) -> "ColumnMatchSet":
        """Match a set of candidate patterns against ``attribute``'s column.

        The whole set is evaluated in one pass over the distinct values
        (shared DFA, with automatic per-pattern fallback), returning the
        column's :class:`~repro.engine.evaluator.ColumnMatchSet` — per-
        pattern supports and row ids come from its ``match_count`` /
        ``matching_rows`` accessors.
        """
        return self.evaluator.match_column_many(
            patterns, self.relation.dictionary(attribute)
        )

    def ids(self, attribute: str, key: PartKey) -> list[int]:
        return self._attributes[attribute].ids(key)

    def total_entries(self) -> int:
        return sum(index.entry_count for index in self._attributes.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatternIndex(relation={self.relation.name!r}, "
            f"attributes={len(self._attributes)}, entries={self.total_entries()})"
        )


def _prune_dominated_entries(
    entries: dict[PartKey, list[int]],
    row_parts: dict[int, list[PartKey]],
) -> tuple[dict[PartKey, list[int]], dict[int, list[PartKey]]]:
    """Substring pruning (Section 4.4).

    If two entries at the same position have identical tuple-id lists and one
    text is a prefix of the other, the shorter one is dominated and dropped:
    the longer (more specific) entry carries strictly more information about
    the same set of rows.
    """
    # Group by (position, tuple-id list identity).
    by_signature: dict[tuple[int, tuple[int, ...]], list[str]] = defaultdict(list)
    for (text, position), ids in entries.items():
        by_signature[(position, tuple(ids))].append(text)
    dominated: set[PartKey] = set()
    for (position, _ids), texts in by_signature.items():
        if len(texts) < 2:
            continue
        longest = max(texts, key=len)
        for text in texts:
            if text != longest and longest.startswith(text):
                dominated.add((text, position))
    if not dominated:
        return entries, row_parts
    kept_entries = {
        key: ids for key, ids in entries.items() if key not in dominated
    }
    kept_row_parts = {
        row_id: [key for key in keys if key not in dominated]
        for row_id, keys in row_parts.items()
    }
    return kept_entries, kept_row_parts
