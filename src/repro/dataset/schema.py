"""Relational schema objects.

A :class:`Schema` is an ordered collection of named :class:`Attribute`\\ s.
Attribute order matters (it is the column order of the relation) and names
must be unique.  Attributes may carry an optional declared role that the
profiler would otherwise infer (quantitative, qualitative, or code).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..exceptions import SchemaError


class AttributeRole(enum.Enum):
    """Semantic role of a column, following Section 2.1's remark.

    * ``QUANTITATIVE`` — numeric measurements/counts; PFDs do not apply.
    * ``QUALITATIVE`` — categorical / textual values; PFDs apply.
    * ``CODE`` — integer-looking values that are really identifiers (zip
      codes, phone numbers, employee IDs); PFDs apply (Section 5.4 keeps
      these despite being numeric).
    * ``UNKNOWN`` — not declared; the profiler decides.
    """

    QUANTITATIVE = "quantitative"
    QUALITATIVE = "qualitative"
    CODE = "code"
    UNKNOWN = "unknown"


@dataclasses.dataclass(frozen=True)
class Attribute:
    """A named column with an optional declared role."""

    name: str
    role: AttributeRole = AttributeRole.UNKNOWN

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name may not be empty")

    def __str__(self) -> str:
        return self.name


class Schema:
    """An ordered, uniquely named collection of attributes.

    Parameters
    ----------
    attributes:
        Attribute objects or bare names (bare names get role ``UNKNOWN``).
    name:
        Optional relation name (used in printed constraints, e.g.
        ``Zip([zip] -> [city])``).
    """

    def __init__(
        self,
        attributes: Iterable[Union[Attribute, str]],
        name: str = "R",
    ):
        self.name = name
        resolved: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = Attribute(attribute)
            resolved.append(attribute)
        self._attributes: tuple[Attribute, ...] = tuple(resolved)
        self._index: dict[str, int] = {}
        for position, attribute in enumerate(self._attributes):
            if attribute.name in self._index:
                raise SchemaError(f"duplicate attribute name {attribute.name!r}")
            self._index[attribute.name] = position
        if not self._attributes:
            raise SchemaError("a schema needs at least one attribute")

    # -- lookup -------------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def position(self, name: str) -> int:
        """Column index of ``name``.

        Raises
        ------
        SchemaError
            If the attribute does not exist.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"attribute {name!r} is not part of schema {self.attribute_names}"
            ) from None

    def attribute(self, name: str) -> Attribute:
        return self._attributes[self.position(name)]

    def role(self, name: str) -> AttributeRole:
        return self.attribute(name).role

    def validate_attributes(self, names: Sequence[str]) -> None:
        """Raise :class:`SchemaError` unless every name exists in the schema."""
        for name in names:
            self.position(name)

    # -- derivation ---------------------------------------------------------

    def project(self, names: Sequence[str], name: Optional[str] = None) -> "Schema":
        """A new schema containing only ``names`` (in the given order)."""
        self.validate_attributes(names)
        return Schema(
            [self.attribute(n) for n in names],
            name=name or self.name,
        )

    def with_role(self, name: str, role: AttributeRole) -> "Schema":
        """A copy of the schema with the role of ``name`` replaced."""
        position = self.position(name)
        attributes = list(self._attributes)
        attributes[position] = Attribute(name, role)
        return Schema(attributes, name=self.name)

    # -- equality / repr ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(self.attribute_names)
        return f"Schema({self.name}: {names})"
