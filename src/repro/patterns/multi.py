"""Set-at-a-time pattern matching: one shared DFA per pattern *set*.

The per-pattern machinery of :mod:`repro.patterns.nfa` decides one pattern at
a time, so validating a K-row tableau or pruning K sibling candidate patterns
costs K separate scans per value.  This module compiles a whole pattern set
into a single automaton:

* the per-pattern epsilon-NFAs (Thompson construction, memoized) are unioned
  under a fresh start state,
* one subset construction over the set's symbolic alphabet turns the union
  into a DFA, and
* every DFA state is labelled with the *bitmask of accepting pattern ids*,
  so one left-to-right scan of a string reports the full set of patterns
  that generate it.

Acceptance concerns the embedded (flattened) languages only; constrained-part
extraction stays lazy via the per-pattern
:class:`~repro.patterns.matcher.CompiledPattern` of the patterns that
matched.

Subset construction can blow up in the worst case, so construction takes a
**state budget**: :func:`compile_pattern_set` (memoized per frozen pattern
set) returns ``None`` when the budget is exceeded, and callers fall back to
per-pattern matching.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import FrozenSet, Iterable, Optional, Sequence, Union

from ..exceptions import PatternError
from .alphabet import CharClass, classify_char
from .ast import ClassAtom, Pattern, Repeat
from .matcher import CompiledPattern
from .nfa import NFA, Symbol, pattern_to_nfa, symbolic_alphabet
from .parser import parse_pattern

PatternSpec = Union[Pattern, str, CompiledPattern]

#: Default *absolute* ceiling on the number of DFA states produced by the
#: subset construction (the effective ceiling is additionally capped relative
#: to the union-NFA size, see :func:`build_multi_automaton`).  Tableau
#: pattern sets are tiny (states roughly proportional to the total pattern
#: length), so hitting the budget signals a pathological set for which
#: per-pattern matching is the safer execution plan.
DEFAULT_STATE_BUDGET = 4096

#: Cache size for :func:`compile_pattern_set` (one entry per distinct frozen
#: pattern set seen by the process).
_SET_CACHE_SIZE = 512


class StateBudgetExceeded(PatternError):
    """Subset construction for a pattern set exceeded its state budget."""


@functools.lru_cache(maxsize=16384)
def is_dfa_friendly(pattern: Pattern) -> bool:
    """Whether ``pattern`` is safe to put in a shared-DFA set.

    *Free-start* patterns — a leading unbounded any-class repeat, i.e. the
    ``\\A*w\\A*`` "contains ``w``" shapes that discovery builds for non-leading
    tokens, and the tableau wildcard ``{{\\A*}}`` — are excluded: a DFA for a
    union of K such patterns must remember which of them have already been
    satisfied at every prefix, so subset construction is exponential in K by
    construction, not by accident.  They are matched per-pattern instead
    (each is a cheap regex); anchored patterns (constants, prefix groups,
    fixed shapes) share one DFA.
    """
    elements = pattern.flattened_elements()
    if not elements:
        return True
    first = elements[0]
    return not (
        isinstance(first, Repeat)
        and first.max_count is None
        and isinstance(first.atom, ClassAtom)
        and first.atom.cls is CharClass.ANY
    )


class MultiPatternAutomaton:
    """A DFA deciding membership in *every* pattern of a set at once.

    Use :func:`compile_pattern_set` (memoized, budget-aware) rather than
    :func:`build_multi_automaton` directly.  ``patterns`` holds the member
    patterns in the automaton's canonical (sorted, deduplicated) order;
    :meth:`match_bits` reports bit ``i`` set iff ``patterns[i]`` generates
    the scanned string.
    """

    __slots__ = (
        "patterns",
        "alphabet",
        "index_of",
        "scans",
        "_transitions",
        "_accept_bits",
        "_start",
        "_dead",
        "_char_index",
        "_residual_index",
    )

    def __init__(
        self,
        patterns: tuple[Pattern, ...],
        alphabet: tuple[Symbol, ...],
        transitions: list[list[int]],
        accept_bits: list[int],
        start: int,
        dead: int,
    ):
        self.patterns = patterns
        self.alphabet = alphabet
        self.index_of: dict[Pattern, int] = {
            pattern: index for index, pattern in enumerate(patterns)
        }
        #: Number of :meth:`match_bits` scans issued (one per value), exposed
        #: so tests can assert the set-at-a-time path really is one scan per
        #: distinct value regardless of the pattern-set size.
        self.scans = 0
        self._transitions = transitions
        self._accept_bits = accept_bits
        self._start = start
        self._dead = dead
        # char -> symbol index, pre-seeded with the literal symbols and
        # extended lazily (memoized residual classification) during scans.
        self._char_index: dict[str, int] = {}
        self._residual_index: dict[CharClass, int] = {}
        for index, symbol in enumerate(alphabet):
            if symbol.kind == "lit":
                self._char_index[symbol.char] = index
            else:
                self._residual_index[symbol.base] = index

    # -- structure ---------------------------------------------------------

    @property
    def pattern_count(self) -> int:
        return len(self.patterns)

    @property
    def state_count(self) -> int:
        return len(self._transitions)

    def bit_of(self, pattern: Pattern) -> int:
        """The bit index assigned to ``pattern`` (raises ``KeyError`` if the
        pattern is not a member of this set)."""
        return self.index_of[pattern]

    # -- matching ----------------------------------------------------------

    def match_bits(self, value: str) -> int:
        """One scan of ``value``: the bitmask of member patterns generating it."""
        self.scans += 1
        state = self._start
        transitions = self._transitions
        char_index = self._char_index
        dead = self._dead
        for char in value:
            index = char_index.get(char)
            if index is None:
                index = self._residual_index[classify_char(char)]
                char_index[char] = index
            state = transitions[state][index]
            if state == dead:
                return 0
        return self._accept_bits[state]

    def match_bits_many(self, values: Iterable[str]) -> list[int]:
        """Scan every value once, returning one bitmask per value.

        Identical to mapping :meth:`match_bits` but with the scan loop
        inlined — this is the hot path of
        :meth:`~repro.engine.evaluator.PatternEvaluator.match_column_many`,
        where per-value call overhead would rival the scans themselves.
        """
        out: list[int] = []
        append = out.append
        transitions = self._transitions
        accept_bits = self._accept_bits
        char_index = self._char_index
        residual_index = self._residual_index
        start = self._start
        dead = self._dead
        count = 0
        for value in values:
            count += 1
            state = start
            for char in value:
                index = char_index.get(char)
                if index is None:
                    index = residual_index[classify_char(char)]
                    char_index[char] = index
                state = transitions[state][index]
                if state == dead:
                    break
            append(accept_bits[state])
        self.scans += count
        return out

    def match_set(self, value: str) -> FrozenSet[int]:
        """Indices (into :attr:`patterns`) of the patterns generating ``value``."""
        bits = self.match_bits(value)
        if not bits:
            return frozenset()
        return frozenset(
            index for index in range(len(self.patterns)) if (bits >> index) & 1
        )

    def matching_patterns(self, value: str) -> tuple[Pattern, ...]:
        """The member patterns generating ``value``, in canonical order."""
        bits = self.match_bits(value)
        return tuple(
            pattern for index, pattern in enumerate(self.patterns) if (bits >> index) & 1
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiPatternAutomaton(patterns={len(self.patterns)}, "
            f"states={self.state_count}, alphabet={len(self.alphabet)})"
        )


def _as_pattern(pattern: PatternSpec) -> Pattern:
    if isinstance(pattern, CompiledPattern):
        return pattern.pattern
    if isinstance(pattern, str):
        return parse_pattern(pattern)
    return pattern


def build_multi_automaton(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> MultiPatternAutomaton:
    """Union the per-pattern NFAs and determinize once, labelling every DFA
    state with the bitmask of accepting pattern ids.

    ``state_budget`` is an *absolute ceiling* on DFA states; the effective
    ceiling is ``min(state_budget, 64 + 4 * union_nfa_states)``.  Well-behaved
    sets of this pattern class determinize to roughly their union-NFA size,
    so a set needing many times that is in exponential territory and the
    relative cap makes it fail fast (a blown absolute-budget exploration
    costs ~1s) instead of being ground out.

    Raises
    ------
    StateBudgetExceeded
        When the subset construction would exceed the effective ceiling;
        callers should fall back to per-pattern matching.
    PatternError
        When ``patterns`` is empty.
    """
    if not patterns:
        raise PatternError("cannot build a multi-pattern automaton for zero patterns")
    alphabet = symbolic_alphabet(patterns)

    # Union NFA: a fresh start state with an epsilon edge into a copy of each
    # pattern's (memoized, shared — hence copied, never mutated) NFA.
    union = NFA()
    start = union.new_state()
    union.start = start
    accept_owner_bits: dict[int, int] = {}
    for bit, pattern in enumerate(patterns):
        nfa = pattern_to_nfa(pattern)
        offset = union.state_count
        for _ in range(nfa.state_count):
            union.new_state()
        for state, edges in nfa.transitions.items():
            for atom, target in edges:
                union.add_transition(state + offset, atom, target + offset)
        for state, targets in nfa.epsilon.items():
            for target in targets:
                union.add_epsilon(state + offset, target + offset)
        union.add_epsilon(start, nfa.start + offset)
        for accepting in nfa.accepting:
            shifted = accepting + offset
            accept_owner_bits[shifted] = accept_owner_bits.get(shifted, 0) | (1 << bit)

    # Subset construction with per-state accept-bit labelling and a budget.
    # Well-behaved sets determinize to roughly their union-NFA size, so the
    # effective budget is tied to it: pathological sets abort after a small
    # multiple of the union size instead of exploring the full absolute
    # budget (a blown 4096-state exploration costs ~1s; this caps it).
    effective_budget = min(state_budget, 64 + 4 * union.state_count)
    start_set = union.epsilon_closure([union.start])
    state_ids: dict[FrozenSet[int], int] = {start_set: 0}
    transitions: list[list[int]] = []
    accept_bits: list[int] = []
    queue: deque[FrozenSet[int]] = deque([start_set])
    while queue:
        current = queue.popleft()
        current_id = state_ids[current]
        while len(transitions) <= current_id:
            transitions.append([0] * len(alphabet))
            accept_bits.append(0)
        bits = 0
        for state in current:
            bits |= accept_owner_bits.get(state, 0)
        accept_bits[current_id] = bits
        for index, symbol in enumerate(alphabet):
            target = union.step_symbol(current, symbol)
            target_id = state_ids.get(target)
            if target_id is None:
                if len(state_ids) >= effective_budget:
                    raise StateBudgetExceeded(
                        f"subset construction for {len(patterns)} patterns exceeded "
                        f"the {effective_budget}-state budget"
                    )
                target_id = len(state_ids)
                state_ids[target] = target_id
                queue.append(target)
            transitions[current_id][index] = target_id
    dead = state_ids.get(frozenset(), -1)
    return MultiPatternAutomaton(
        patterns=tuple(patterns),
        alphabet=alphabet,
        transitions=transitions,
        accept_bits=accept_bits,
        start=0,
        dead=dead,
    )


def canonical_pattern_set(patterns: Iterable[PatternSpec]) -> tuple[Pattern, ...]:
    """Deduplicate and sort a pattern set into the canonical member order
    used by :func:`compile_pattern_set` (stable across call sites, so equal
    sets share one memoized automaton)."""
    unique = {pattern: None for pattern in (_as_pattern(p) for p in patterns)}
    return tuple(sorted(unique, key=Pattern.to_pattern_string))


@functools.lru_cache(maxsize=_SET_CACHE_SIZE)
def _compile_pattern_set_cached(
    patterns: tuple[Pattern, ...], state_budget: int
) -> Optional[MultiPatternAutomaton]:
    try:
        return build_multi_automaton(patterns, state_budget=state_budget)
    except StateBudgetExceeded:
        # Memoize the failure too: retrying a blown-up set every call would
        # pay the exponential construction over and over.
        return None


def compile_pattern_set(
    patterns: Iterable[PatternSpec],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> Optional[MultiPatternAutomaton]:
    """The memoized entry point: one shared automaton per frozen pattern set.

    Returns ``None`` when the subset construction exceeds the effective state
    ceiling — ``min(state_budget, 64 + 4 * union_nfa_states)``, see
    :func:`build_multi_automaton` — and the failure is memoized as well;
    callers must then fall back to per-pattern matching.
    """
    ordered = canonical_pattern_set(patterns)
    if not ordered:
        raise PatternError("cannot compile an empty pattern set")
    return _compile_pattern_set_cached(ordered, state_budget)
