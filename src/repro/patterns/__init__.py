"""The pattern language of PFDs.

This package implements the regex-like pattern language of Section 2.1 of
the paper: the generalization tree over the alphabet, the pattern AST and its
textual syntax, matching with constrained-part extraction, NFA construction
with containment / equivalence decisions, the restriction relation between
constrained patterns, and pattern induction from example strings.

Quick tour::

    >>> from repro.patterns import parse_pattern, compile_pattern
    >>> p = parse_pattern(r"{{900}}\\D{2}")
    >>> compile_pattern(p).matches("90001")
    True
    >>> compile_pattern(r"{{\\LU\\LL*\\ }}\\A*").extract("John Charles")
    'John '
"""

from .alphabet import (
    BASE_CLASSES,
    CharClass,
    char_matches_class,
    classify_char,
    class_subsumes,
    generalize_chars,
    generalize_classes,
)
from .ast import (
    ClassAtom,
    ConstrainedGroup,
    Literal,
    Pattern,
    Repeat,
    any_string_pattern,
    literal_pattern,
)
from .containment import is_generalization_of, is_restriction_of, patterns_compatible
from .induction import (
    Run,
    column_shape_histogram,
    dominant_shape,
    induce_pattern,
    induce_prefix_pattern,
    signature,
    string_runs,
)
from .matcher import (
    CompiledPattern,
    MatchResult,
    compile_pattern,
    equivalent,
    extract_constrained,
    matches,
    reference_match,
)
from .multi import (
    DEFAULT_STATE_BUDGET,
    MultiPatternAutomaton,
    StateBudgetExceeded,
    build_multi_automaton,
    canonical_pattern_set,
    compile_pattern_set,
    is_dfa_friendly,
)
from .nfa import (
    DFA,
    NFA,
    determinize,
    example_string,
    language_contains,
    language_equivalent,
    language_nonempty_intersection,
    pattern_to_nfa,
    symbolic_alphabet,
)
from .parser import parse_pattern, try_parse_pattern

__all__ = [
    "BASE_CLASSES",
    "CharClass",
    "char_matches_class",
    "classify_char",
    "class_subsumes",
    "generalize_chars",
    "generalize_classes",
    "ClassAtom",
    "ConstrainedGroup",
    "Literal",
    "Pattern",
    "Repeat",
    "any_string_pattern",
    "literal_pattern",
    "is_generalization_of",
    "is_restriction_of",
    "patterns_compatible",
    "Run",
    "column_shape_histogram",
    "dominant_shape",
    "induce_pattern",
    "induce_prefix_pattern",
    "signature",
    "string_runs",
    "CompiledPattern",
    "MatchResult",
    "compile_pattern",
    "equivalent",
    "extract_constrained",
    "matches",
    "reference_match",
    "DEFAULT_STATE_BUDGET",
    "MultiPatternAutomaton",
    "StateBudgetExceeded",
    "build_multi_automaton",
    "canonical_pattern_set",
    "compile_pattern_set",
    "is_dfa_friendly",
    "DFA",
    "NFA",
    "determinize",
    "example_string",
    "language_contains",
    "language_equivalent",
    "language_nonempty_intersection",
    "pattern_to_nfa",
    "symbolic_alphabet",
    "parse_pattern",
    "try_parse_pattern",
]
