"""Pattern induction: learn a pattern that covers a set of example strings.

Discovery needs this in two places (Section 4.3 of the paper):

* **Generalize** — after constant PFDs have been found (e.g. ``John ``,
  ``Susan ``, ``Tayseer `` each determining a gender), the algorithm looks
  for a single variable pattern that represents all of the constants
  (``\\LU\\LL*\\ ``) and, if the variable PFD holds on the whole column with
  few violations, replaces the constants with it.
* **Column formats** — the profiler summarizes a column by the pattern shape
  of its values (e.g. every zip code matches ``\\D{5}``), which drives the
  tokenize-vs-n-grams decision and the "code column" heuristic of
  Section 5.4.

The induction is deterministic:

1. Each string is split into maximal runs of characters of the same base
   class (``John `` -> ``[UPPER x1, LOWER x3, SYMBOL x1]``).
2. If all strings share the same run-class sequence, each run becomes one
   pattern element: a literal sequence when the text is identical across all
   strings, ``\\C{n}`` when only the length is fixed, and ``\\C+`` when the
   length varies.
3. Otherwise the strings do not share a shape and induction falls back to
   ``None`` (callers then keep the constants or widen to ``\\A+``).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from .alphabet import CharClass, classify_char
from .ast import ClassAtom, Literal, Pattern, Repeat


@dataclasses.dataclass(frozen=True)
class Run:
    """A maximal run of same-class characters inside a string."""

    cls: CharClass
    text: str

    @property
    def length(self) -> int:
        return len(self.text)


def string_runs(value: str) -> tuple[Run, ...]:
    """Split ``value`` into maximal same-class runs."""
    runs: list[Run] = []
    if not value:
        return ()
    current_cls = classify_char(value[0])
    start = 0
    for index in range(1, len(value)):
        cls = classify_char(value[index])
        if cls is not current_cls:
            runs.append(Run(current_cls, value[start:index]))
            current_cls = cls
            start = index
    runs.append(Run(current_cls, value[start:]))
    return tuple(runs)


def signature(value: str) -> tuple[CharClass, ...]:
    """The run-class sequence of ``value`` (its *shape*)."""
    return tuple(run.cls for run in string_runs(value))


def induce_pattern(
    values: Sequence[str],
    keep_literals: bool = True,
    max_literal_run: int = 24,
) -> Optional[Pattern]:
    """Induce a single pattern covering every string in ``values``.

    Parameters
    ----------
    values:
        Non-empty collection of example strings.
    keep_literals:
        When True, runs whose text is identical across all examples are kept
        as literal characters (producing e.g. ``900\\D{2}`` rather than
        ``\\D{5}``).
    max_literal_run:
        Literal runs longer than this are demoted to class runs, which keeps
        induced patterns compact on long free-text values.

    Returns
    -------
    Pattern or None
        ``None`` when the examples do not share a common run shape.
    """
    values = [v for v in values if v]
    if not values:
        return None
    run_lists = [string_runs(value) for value in values]
    shape = tuple(run.cls for run in run_lists[0])
    for runs in run_lists[1:]:
        if tuple(run.cls for run in runs) != shape:
            return None
    elements: list = []
    for position in range(len(shape)):
        runs_here = [runs[position] for runs in run_lists]
        elements.extend(
            _induce_run_elements(runs_here, keep_literals, max_literal_run)
        )
    return Pattern(tuple(elements))


def _induce_run_elements(
    runs: Sequence[Run], keep_literals: bool, max_literal_run: int
) -> list:
    cls = runs[0].cls
    texts = {run.text for run in runs}
    lengths = {run.length for run in runs}
    if keep_literals and len(texts) == 1:
        text = next(iter(texts))
        if len(text) <= max_literal_run:
            return [Literal(char) for char in text]
    atom = ClassAtom(cls)
    if len(lengths) == 1:
        count = next(iter(lengths))
        if count == 1:
            return [atom]
        return [Repeat(atom, count, count)]
    return [Repeat(atom, 1, None)]


def induce_prefix_pattern(
    values: Sequence[str],
    prefix_lengths: Sequence[int],
    keep_literals: bool = False,
) -> Optional[Pattern]:
    """Induce a pattern for the *prefixes* of ``values``.

    ``prefix_lengths[i]`` gives the length of the meaningful prefix of
    ``values[i]`` (for instance the first token plus its trailing separator).
    The induced pattern describes only the prefixes; callers typically append
    ``\\A*`` and wrap the prefix in a constrained group.
    """
    if len(values) != len(prefix_lengths):
        raise ValueError("values and prefix_lengths must have the same length")
    prefixes = [value[:length] for value, length in zip(values, prefix_lengths)]
    return induce_pattern(prefixes, keep_literals=keep_literals)


def column_shape_histogram(values: Iterable[str]) -> dict[tuple[CharClass, ...], int]:
    """Histogram of run shapes over a column; used by the profiler."""
    histogram: dict[tuple[CharClass, ...], int] = {}
    for value in values:
        if not value:
            continue
        shape = signature(value)
        histogram[shape] = histogram.get(shape, 0) + 1
    return histogram


def dominant_shape(
    values: Sequence[str], minimum_fraction: float = 0.5
) -> Optional[tuple[CharClass, ...]]:
    """The most common run shape if it covers at least ``minimum_fraction``
    of the non-empty values, else ``None``."""
    histogram = column_shape_histogram(values)
    if not histogram:
        return None
    total = sum(histogram.values())
    shape, count = max(histogram.items(), key=lambda item: (item[1], len(item[0])))
    if count / total >= minimum_fraction:
        return shape
    return None
