"""Non-deterministic finite automata for the pattern language.

The paper observes (Section 2.1) that its patterns can be converted to NFAs
in polynomial time, and that acceptance, equivalence, and containment are all
decidable in PTIME for this simple class.  This module implements exactly
that machinery:

* :func:`pattern_to_nfa` — Thompson construction over the pattern AST,
* :class:`NFA` — epsilon-closure simulation for acceptance,
* :func:`determinize` — subset construction over a *symbolic alphabet*,
* :func:`language_contains` / :func:`language_equivalent` — decided on the
  product of the determinized automata.

Because the concrete alphabet (all of Unicode) is huge, automata operate on a
**symbolic alphabet**: the finitely many literal characters mentioned by the
patterns under consideration, plus one "residual" symbol per base character
class (an upper-case letter that is none of the mentioned literals, and so
on).  This partition is exact for the pattern language of the paper — every
transition predicate is either a single literal or a whole class — so
containment decided over the symbolic alphabet coincides with containment
over the concrete alphabet.
"""

from __future__ import annotations

import dataclasses
import functools
from collections import deque
from typing import FrozenSet, Iterable, Optional, Union

from .alphabet import BASE_CLASSES, CharClass, classify_char
from .ast import ClassAtom, Literal, Pattern, Repeat
from .parser import parse_pattern

# ---------------------------------------------------------------------------
# Symbolic alphabet
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Symbol:
    """One element of the symbolic alphabet.

    ``kind`` is ``"lit"`` for a concrete literal character (``char`` is set)
    or ``"residual"`` for "some character of ``base`` that is none of the
    literals under consideration".
    """

    kind: str
    base: CharClass
    char: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.kind == "lit":
            return f"Sym({self.char!r})"
        return f"Sym(residual:{self.base.name})"


def symbolic_alphabet(patterns: Iterable[Pattern]) -> tuple[Symbol, ...]:
    """The partition of the character universe induced by ``patterns``."""
    literals: set[str] = set()
    for pattern in patterns:
        for element in pattern.flattened_elements():
            atom = element.atom if isinstance(element, Repeat) else element
            if isinstance(atom, Literal):
                literals.add(atom.char)
    symbols = [Symbol("lit", classify_char(char), char) for char in sorted(literals)]
    symbols.extend(Symbol("residual", base) for base in BASE_CLASSES)
    return tuple(symbols)


def _atom_accepts_symbol(atom: Union[Literal, ClassAtom], symbol: Symbol) -> bool:
    if isinstance(atom, Literal):
        return symbol.kind == "lit" and symbol.char == atom.char
    if atom.cls is CharClass.ANY:
        return True
    return symbol.base is atom.cls


# ---------------------------------------------------------------------------
# NFA
# ---------------------------------------------------------------------------


class NFA:
    """An epsilon-NFA over atom predicates.

    States are integers.  ``transitions[state]`` is a list of
    ``(atom, target)`` pairs where ``atom`` is a :class:`Literal` or
    :class:`ClassAtom`; ``epsilon[state]`` is a list of targets reachable by
    an epsilon move.
    """

    def __init__(self) -> None:
        self.transitions: dict[int, list[tuple[Union[Literal, ClassAtom], int]]] = {}
        self.epsilon: dict[int, list[int]] = {}
        self.start: int = 0
        self.accepting: set[int] = set()
        self._next_state = 0

    # -- construction ------------------------------------------------------

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        self.transitions.setdefault(state, [])
        self.epsilon.setdefault(state, [])
        return state

    def add_transition(self, source: int, atom: Union[Literal, ClassAtom], target: int) -> None:
        self.transitions[source].append((atom, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].append(target)

    @property
    def state_count(self) -> int:
        return self._next_state

    # -- simulation --------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon moves."""
        stack = list(states)
        seen = set(stack)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def accepts(self, value: str) -> bool:
        """Simulate the NFA on ``value`` (anchored acceptance)."""
        current = self.epsilon_closure([self.start])
        for char in value:
            following: set[int] = set()
            for state in current:
                for atom, target in self.transitions[state]:
                    if _atom_matches_char(atom, char):
                        following.add(target)
            if not following:
                return False
            current = self.epsilon_closure(following)
        return bool(current & self.accepting)

    def step_symbol(self, states: FrozenSet[int], symbol: Symbol) -> FrozenSet[int]:
        """One symbolic step (used by the subset construction)."""
        following: set[int] = set()
        for state in states:
            for atom, target in self.transitions[state]:
                if _atom_accepts_symbol(atom, symbol):
                    following.add(target)
        return self.epsilon_closure(following)


def _atom_matches_char(atom: Union[Literal, ClassAtom], char: str) -> bool:
    if isinstance(atom, Literal):
        return char == atom.char
    if atom.cls is CharClass.ANY:
        return True
    return classify_char(char) is atom.cls


def pattern_to_nfa(pattern: Union[Pattern, str]) -> NFA:
    """Thompson construction: build an epsilon-NFA for ``pattern``.

    The constrained group plays no role for the generated language, so the
    construction works on the embedded (flattened) element sequence.

    Construction is memoized on parsed-pattern identity (patterns are
    immutable, hashable ASTs), so repeated containment checks and multi-
    pattern unions reuse one NFA per pattern.  The returned automaton is
    shared: callers must treat it as read-only.
    """
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    return _pattern_to_nfa_cached(pattern)


@functools.lru_cache(maxsize=4096)
def _pattern_to_nfa_cached(pattern: Pattern) -> NFA:
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    current = start
    for element in pattern.flattened_elements():
        if isinstance(element, Repeat):
            current = _add_repeat(nfa, current, element)
        else:
            target = nfa.new_state()
            nfa.add_transition(current, element, target)
            current = target
    nfa.accepting = {current}
    return nfa


def _add_repeat(nfa: NFA, entry: int, repeat: Repeat) -> int:
    """Append states implementing ``repeat`` after ``entry``; return exit."""
    current = entry
    # Mandatory copies.
    for _ in range(repeat.min_count):
        target = nfa.new_state()
        nfa.add_transition(current, repeat.atom, target)
        current = target
    if repeat.max_count is None:
        # A single looping state: exit via epsilon, loop on the atom.
        loop = nfa.new_state()
        exit_state = nfa.new_state()
        nfa.add_epsilon(current, loop)
        nfa.add_transition(loop, repeat.atom, loop)
        nfa.add_epsilon(loop, exit_state)
        return exit_state
    # Bounded optional copies.
    exit_state = nfa.new_state()
    nfa.add_epsilon(current, exit_state)
    for _ in range(repeat.max_count - repeat.min_count):
        target = nfa.new_state()
        nfa.add_transition(current, repeat.atom, target)
        nfa.add_epsilon(target, exit_state)
        current = target
    return exit_state


# ---------------------------------------------------------------------------
# DFA over the symbolic alphabet
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class DFA:
    """A deterministic automaton over a symbolic alphabet.

    ``transitions[state][symbol_index]`` is the target state; the dead state
    is represented explicitly so the transition function is total.
    """

    alphabet: tuple[Symbol, ...]
    transitions: list[list[int]]
    accepting: set[int]
    start: int

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    def accepts_symbols(self, symbols: Iterable[int]) -> bool:
        """Acceptance of a word given as symbol indices (used in tests)."""
        state = self.start
        for index in symbols:
            state = self.transitions[state][index]
        return state in self.accepting


def determinize(nfa: NFA, alphabet: tuple[Symbol, ...]) -> DFA:
    """Subset construction of ``nfa`` over ``alphabet``.

    Memoized on (NFA identity, alphabet): NFAs produced by the (cached)
    :func:`pattern_to_nfa` are shared per pattern, so repeated containment
    checks over the same pattern pair reuse one DFA instead of re-running
    the subset construction.  The returned DFA is shared: treat as read-only.
    """
    return _determinize_cached(nfa, alphabet)


@functools.lru_cache(maxsize=4096)
def _determinize_cached(nfa: NFA, alphabet: tuple[Symbol, ...]) -> DFA:
    start_set = nfa.epsilon_closure([nfa.start])
    state_ids: dict[FrozenSet[int], int] = {start_set: 0}
    transitions: list[list[int]] = []
    accepting: set[int] = set()
    queue: deque[FrozenSet[int]] = deque([start_set])
    ordered_sets: list[FrozenSet[int]] = [start_set]
    while queue:
        current = queue.popleft()
        current_id = state_ids[current]
        while len(transitions) <= current_id:
            transitions.append([0] * len(alphabet))
        if current & nfa.accepting:
            accepting.add(current_id)
        for index, symbol in enumerate(alphabet):
            target = nfa.step_symbol(current, symbol)
            if target not in state_ids:
                state_ids[target] = len(state_ids)
                ordered_sets.append(target)
                queue.append(target)
            transitions[current_id][index] = state_ids[target]
    # Ensure every discovered state has a transition row (dead states at the
    # end of the queue already got one, but guard anyway).
    while len(transitions) < len(state_ids):
        transitions.append([0] * len(alphabet))
    return DFA(alphabet=alphabet, transitions=transitions, accepting=accepting, start=0)


# ---------------------------------------------------------------------------
# Language comparisons
# ---------------------------------------------------------------------------


def language_contains(general: Union[Pattern, str], specific: Union[Pattern, str]) -> bool:
    """True iff every string generated by ``specific`` is generated by
    ``general`` (``L(specific)`` is a subset of ``L(general)``).

    The decision is memoized per (general, specific) pattern pair on top of
    the NFA/DFA construction caches, so the repeated containment checks of
    tableau normalization and discovery cost one product walk per distinct
    pair.
    """
    if isinstance(general, str):
        general = parse_pattern(general)
    if isinstance(specific, str):
        specific = parse_pattern(specific)
    return _language_contains_cached(general, specific)


@functools.lru_cache(maxsize=8192)
def _language_contains_cached(general: Pattern, specific: Pattern) -> bool:
    alphabet = symbolic_alphabet([general, specific])
    general_dfa = determinize(pattern_to_nfa(general), alphabet)
    specific_dfa = determinize(pattern_to_nfa(specific), alphabet)
    return _product_containment(specific_dfa, general_dfa)


def language_equivalent(first: Union[Pattern, str], second: Union[Pattern, str]) -> bool:
    """True iff the two patterns generate exactly the same language."""
    return language_contains(first, second) and language_contains(second, first)


def language_nonempty_intersection(
    first: Union[Pattern, str], second: Union[Pattern, str]
) -> bool:
    """True iff some string is generated by both patterns.

    Used by the consistency checker to decide whether two tableau cells on
    the same attribute can be witnessed by a single value.
    """
    if isinstance(first, str):
        first = parse_pattern(first)
    if isinstance(second, str):
        second = parse_pattern(second)
    alphabet = symbolic_alphabet([first, second])
    first_dfa = determinize(pattern_to_nfa(first), alphabet)
    second_dfa = determinize(pattern_to_nfa(second), alphabet)
    for state_a, state_b in _reachable_product_states(first_dfa, second_dfa):
        if state_a in first_dfa.accepting and state_b in second_dfa.accepting:
            return True
    return False


def example_string(pattern: Union[Pattern, str], max_unbounded: int = 1) -> Optional[str]:
    """A shortest-ish witness string generated by ``pattern``.

    Unbounded repeats contribute ``max(min_count, max_unbounded)`` copies so
    the witness is finite.  Returns ``None`` only for patterns whose language
    is empty, which cannot happen for the pattern class of the paper.
    """
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    pieces: list[str] = []
    for element in pattern.flattened_elements():
        if isinstance(element, Repeat):
            count = element.min_count
            if element.max_count is None:
                count = max(count, max_unbounded)
            pieces.append(_atom_example(element.atom) * count)
        else:
            pieces.append(_atom_example(element))
    return "".join(pieces)


def _atom_example(atom: Union[Literal, ClassAtom]) -> str:
    if isinstance(atom, Literal):
        return atom.char
    defaults = {
        CharClass.ANY: "x",
        CharClass.UPPER: "A",
        CharClass.LOWER: "a",
        CharClass.DIGIT: "0",
        CharClass.SYMBOL: "-",
    }
    return defaults[atom.cls]


def _reachable_product_states(first: DFA, second: DFA) -> Iterable[tuple[int, int]]:
    """All reachable state pairs of the product automaton.

    Both automata must share the same symbolic alphabet.
    """
    assert first.alphabet == second.alphabet
    start = (first.start, second.start)
    seen = {start}
    queue: deque[tuple[int, int]] = deque([start])
    while queue:
        state_a, state_b = queue.popleft()
        yield state_a, state_b
        for index in range(len(first.alphabet)):
            target = (
                first.transitions[state_a][index],
                second.transitions[state_b][index],
            )
            if target not in seen:
                seen.add(target)
                queue.append(target)


def _product_containment(specific: DFA, general: DFA) -> bool:
    """True iff L(specific) is a subset of L(general)."""
    for state_s, state_g in _reachable_product_states(specific, general):
        if state_s in specific.accepting and state_g not in general.accepting:
            return False
    return True
