"""Parser for the textual pattern syntax.

Grammar (informal)::

    pattern     := element*
    element     := group | quantified
    group       := "{{" quantified* "}}"
    quantified  := atom quantifier?
    atom        := class | literal
    class       := "\\A" | "\\LU" | "\\LL" | "\\D" | "\\S"
    literal     := any character, or "\\" followed by the literal character
    quantifier  := "*" | "+" | "{" N "}" | "{" M "," N? "}"

Examples from the paper::

    parse_pattern(r"{{900}}\\D{2}")          # zip prefix 900 determines LA
    parse_pattern(r"{{John\\ }}\\A*")         # first name John
    parse_pattern(r"{{\\LU\\LL*\\ }}\\A*")     # any first name (variable PFD)
    parse_pattern(r"{{\\D{3}}}\\D{2}")         # first three digits of a zip

The parser is a small hand-written recursive-descent scanner; errors carry
the position of the offending character.
"""

from __future__ import annotations

from ..exceptions import PatternSyntaxError
from .alphabet import ESCAPE_TO_CLASS
from .ast import (
    Atom,
    ClassAtom,
    ConstrainedGroup,
    Element,
    Literal,
    Pattern,
    Repeat,
)

#: Escapes that denote character classes (longest first so ``\\LU`` is tried
#: before ``\\L`` would be).
_CLASS_ESCAPES = ("LU", "LL", "D", "S", "A")


class _Scanner:
    """Cursor over the pattern string with error reporting."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        self.pos += count
        return chunk

    def error(self, message: str) -> PatternSyntaxError:
        return PatternSyntaxError(message, pattern=self.text, position=self.pos)


def parse_pattern(text: str) -> Pattern:
    """Parse ``text`` into a :class:`~repro.patterns.ast.Pattern`.

    Raises
    ------
    PatternSyntaxError
        If ``text`` is not a well-formed pattern.
    """
    scanner = _Scanner(text)
    elements = _parse_elements(scanner, inside_group=False)
    if not scanner.eof():
        raise scanner.error(f"unexpected character {scanner.peek()!r}")
    return Pattern(tuple(elements))


def _parse_elements(scanner: _Scanner, inside_group: bool) -> list[Element]:
    elements: list[Element] = []
    while not scanner.eof():
        if scanner.peek() == "}" and scanner.peek(1) == "}":
            if inside_group:
                return elements
            raise scanner.error("'}}' without a matching '{{'")
        if scanner.peek() == "{" and scanner.peek(1) == "{":
            if inside_group:
                raise scanner.error("constrained groups cannot be nested")
            scanner.advance(2)
            inner = _parse_elements(scanner, inside_group=True)
            if scanner.peek() != "}" or scanner.peek(1) != "}":
                raise scanner.error("unterminated constrained group, expected '}}'")
            scanner.advance(2)
            if not inner:
                raise scanner.error("constrained group may not be empty")
            elements.append(ConstrainedGroup(tuple(inner)))
            continue
        elements.append(_parse_quantified(scanner))
    if inside_group:
        raise scanner.error("unterminated constrained group, expected '}}'")
    return elements


def _parse_quantified(scanner: _Scanner) -> Element:
    atom = _parse_atom(scanner)
    char = scanner.peek()
    if char == "*":
        scanner.advance()
        return Repeat(atom, 0, None)
    if char == "+":
        scanner.advance()
        return Repeat(atom, 1, None)
    if char == "{" and scanner.peek(1) != "{":
        return _parse_braced_repeat(scanner, atom)
    return atom


def _parse_braced_repeat(scanner: _Scanner, atom: Atom) -> Repeat:
    assert scanner.peek() == "{"
    scanner.advance()
    minimum = _parse_int(scanner)
    if scanner.peek() == "}":
        scanner.advance()
        return Repeat(atom, minimum, minimum)
    if scanner.peek() != ",":
        raise scanner.error("expected ',' or '}' in repetition")
    scanner.advance()
    if scanner.peek() == "}":
        scanner.advance()
        return Repeat(atom, minimum, None)
    maximum = _parse_int(scanner)
    if scanner.peek() != "}":
        raise scanner.error("expected '}' to close repetition")
    scanner.advance()
    return Repeat(atom, minimum, maximum)


def _parse_int(scanner: _Scanner) -> int:
    digits = ""
    while scanner.peek().isdigit():
        digits += scanner.advance()
    if not digits:
        raise scanner.error("expected a number in repetition")
    return int(digits)


def _parse_atom(scanner: _Scanner) -> Atom:
    char = scanner.peek()
    if char == "":
        raise scanner.error("unexpected end of pattern")
    if char in "*+":
        raise scanner.error(f"quantifier {char!r} with nothing to repeat")
    if char == "\\":
        scanner.advance()
        return _parse_escape(scanner)
    if char == "{":
        raise scanner.error("'{' must follow an atom or start a '{{' group")
    if char == "}":
        raise scanner.error("unexpected '}'")
    scanner.advance()
    return Literal(char)


def _parse_escape(scanner: _Scanner) -> Atom:
    for name in _CLASS_ESCAPES:
        if scanner.text.startswith(name, scanner.pos):
            scanner.advance(len(name))
            return ClassAtom(ESCAPE_TO_CLASS[name])
    char = scanner.peek()
    if char == "":
        raise scanner.error("dangling escape at end of pattern")
    scanner.advance()
    return Literal(char)


def try_parse_pattern(text: str) -> Pattern | None:
    """Parse ``text`` and return ``None`` instead of raising on failure."""
    try:
        return parse_pattern(text)
    except PatternSyntaxError:
        return None
