"""Restriction / generalization relation between (constrained) patterns.

Section 2.1 of the paper defines: a constrained pattern ``Q`` is a
*restricted* pattern of ``Q'`` (written ``Q [= Q'``) if for any two strings
``s, s'``, ``s ==_Q s'`` implies ``s ==_{Q'} s'``; ``Q'`` is then a
*generalized* pattern of ``Q``.

Deciding this relation exactly for arbitrary regular constrained patterns is
involved; for the single-constrained-group, concatenation-only pattern class
used throughout the paper the following *sound* criterion captures every case
that occurs in discovery, inference, and the paper's own examples:

``is_restriction_of(q, q_general)`` holds when

1. the language of ``q`` is contained in the language of ``q_general``
   (every string constrained by ``q`` is also in scope for ``q_general``),
   and
2. one of
   a. ``q_general`` has no constrained group (it constrains nothing, so the
      implication is vacuous on the right),
   b. both constrained groups are *anchored prefixes* (the group is the
      first element of the pattern) and the group language of ``q`` is
      contained in the group language of ``q_general`` while the remainder
      languages are also contained — then equality of the ``q``-prefix
      forces equality of the ``q_general``-prefix because the
      ``q_general`` group's greedy extent is determined by the ``q``
      group's content, or
   c. ``q`` is a constant pattern whose unique value matches
      ``q_general`` — two strings equivalent under a constant ``q`` are
      *identical on the whole string*, hence equivalent under any pattern
      they match.

Case (c) is what licenses generalizing constant PFD tableau rows (e.g.
``{{John\\ }}\\A*``) under a variable row (``{{\\LU\\LL*\\ }}\\A*``); case (b)
covers wildcard-style comparisons between variable rows.  The criterion is
sound (never claims a restriction that does not hold) and is complete on the
anchored-prefix patterns produced by this library's discovery algorithm.
"""

from __future__ import annotations

from typing import Union

from .ast import Pattern
from .matcher import compile_pattern
from .nfa import language_contains
from .parser import parse_pattern


def _as_pattern(pattern: Union[Pattern, str]) -> Pattern:
    if isinstance(pattern, str):
        return parse_pattern(pattern)
    return pattern


def _group_is_prefix(pattern: Pattern) -> bool:
    """True if the constrained group is the first top-level element."""
    index = pattern.constrained_group_index
    return index == 0


def _remainder_pattern(pattern: Pattern) -> Pattern:
    """The pattern consisting of everything after the constrained group."""
    index = pattern.constrained_group_index
    if index is None:
        return pattern
    return Pattern(tuple(pattern.elements[index + 1 :]))


def is_restriction_of(
    restricted: Union[Pattern, str], general: Union[Pattern, str]
) -> bool:
    """Sound test for ``restricted [= general`` (see module docstring).

    Parameters
    ----------
    restricted:
        The candidate more-specific constrained pattern (``Q``).
    general:
        The candidate more-general constrained pattern (``Q'``).
    """
    q_restricted = _as_pattern(restricted)
    q_general = _as_pattern(general)

    # Condition 1: language containment of the embedded patterns.
    if not language_contains(q_general.embedded(), q_restricted.embedded()):
        return False

    # Condition 2a: the general pattern constrains nothing.
    if not q_general.has_constrained_group:
        return True

    # Condition 2c: a constant restricted pattern pins the whole value.
    if q_restricted.is_constant():
        constant = q_restricted.constant_value()
        return compile_pattern(q_general).matches(constant)

    # Condition 2c': constant constrained group that spans a prefix also pins
    # the part the general group can capture, provided both are prefixes.
    if not q_restricted.has_constrained_group:
        # The restricted pattern does not constrain anything, so equivalence
        # under it only requires both strings to match; that does not imply
        # equality of any substring unless the general group is constant
        # across the language, i.e. the general group is a constant pattern.
        general_group = q_general.constrained_subpattern()
        return general_group is not None and general_group.is_constant()

    # Condition 2b: aligned prefix groups with containment of both the group
    # languages and the remainder languages.
    if not (_group_is_prefix(q_restricted) and _group_is_prefix(q_general)):
        return False
    restricted_group = q_restricted.constrained_subpattern()
    general_group = q_general.constrained_subpattern()
    assert restricted_group is not None and general_group is not None
    if not language_contains(general_group.embedded(), restricted_group.embedded()):
        return False
    restricted_rest = _remainder_pattern(q_restricted)
    general_rest = _remainder_pattern(q_general)
    return language_contains(general_rest.embedded(), restricted_rest.embedded())


def is_generalization_of(
    general: Union[Pattern, str], restricted: Union[Pattern, str]
) -> bool:
    """Symmetric convenience wrapper: ``general`` generalizes ``restricted``."""
    return is_restriction_of(restricted, general)


def patterns_compatible(first: Union[Pattern, str], second: Union[Pattern, str]) -> bool:
    """True if one of the patterns is a restriction of the other.

    Used by the inference axioms (Transitivity requires the middle patterns
    to be comparable) and by tableau normalization.
    """
    return is_restriction_of(first, second) or is_restriction_of(second, first)
