"""Abstract syntax tree for the paper's pattern language.

A pattern is a concatenation of *elements*.  Each element is either

* a :class:`Literal` character,
* a :class:`ClassAtom` (one of the generalization-tree classes),
* a :class:`Repeat` wrapping a literal/class atom with a repetition range, or
* a :class:`ConstrainedGroup` containing a sub-sequence of elements.

The constrained group corresponds to the underlined part of a constrained
pattern in the paper (Section 2.1): when two strings both match the pattern,
they are *equivalent* with respect to it iff the substrings captured by the
constrained group are identical.

The AST is immutable and hashable, so patterns can be used as dictionary keys
(the discovery algorithm indexes tableaux by pattern).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterator, Optional, Union

from ..exceptions import PatternError
from .alphabet import CharClass

#: Characters that need escaping when serialising a literal back to the
#: textual pattern syntax.  ``⊥`` is included so a literal-⊥ pattern never
#: serialises to the bare wildcard marker used by tableau (de)serialization.
_ESCAPE_REQUIRED = set("\\{}*+ ⊥")

#: Upper bound used when converting an unbounded repetition to a finite one
#: (only for length estimation, never for matching).
UNBOUNDED = None


def _escape_literal(char: str) -> str:
    if char in _ESCAPE_REQUIRED:
        return "\\" + char
    return char


@dataclasses.dataclass(frozen=True)
class Literal:
    """A single concrete character, e.g. ``J`` or an escaped ``\\ `` space."""

    char: str

    def __post_init__(self) -> None:
        if len(self.char) != 1:
            raise PatternError(f"Literal must be a single character, got {self.char!r}")

    def to_pattern_string(self) -> str:
        return _escape_literal(self.char)

    def to_regex(self) -> str:
        return re.escape(self.char)

    def min_length(self) -> int:
        return 1

    def max_length(self) -> Optional[int]:
        return 1

    def is_constant(self) -> bool:
        return True


@dataclasses.dataclass(frozen=True)
class ClassAtom:
    """A character-class atom from the generalization tree, e.g. ``\\D``."""

    cls: CharClass

    def to_pattern_string(self) -> str:
        return self.cls.escape

    def to_regex(self) -> str:
        mapping = {
            CharClass.ANY: r"[\s\S]",
            CharClass.UPPER: r"[A-Z]",
            CharClass.LOWER: r"[a-z]",
            CharClass.DIGIT: r"[0-9]",
            CharClass.SYMBOL: r"[^A-Za-z0-9]",
        }
        return mapping[self.cls]

    def min_length(self) -> int:
        return 1

    def max_length(self) -> Optional[int]:
        return 1

    def is_constant(self) -> bool:
        return False


Atom = Union[Literal, ClassAtom]


@dataclasses.dataclass(frozen=True)
class Repeat:
    """Repetition of an atom: ``X*``, ``X+``, ``X{N}`` or ``X{m,n}``.

    ``max_count`` of ``None`` means unbounded.
    """

    atom: Atom
    min_count: int
    max_count: Optional[int]

    def __post_init__(self) -> None:
        if self.min_count < 0:
            raise PatternError("Repeat min_count must be >= 0")
        if self.max_count is not None and self.max_count < self.min_count:
            raise PatternError("Repeat max_count must be >= min_count")

    def to_pattern_string(self) -> str:
        inner = self.atom.to_pattern_string()
        if self.min_count == 0 and self.max_count is None:
            return inner + "*"
        if self.min_count == 1 and self.max_count is None:
            return inner + "+"
        if self.max_count == self.min_count:
            return f"{inner}{{{self.min_count}}}"
        if self.max_count is None:
            return f"{inner}{{{self.min_count},}}"
        return f"{inner}{{{self.min_count},{self.max_count}}}"

    def to_regex(self) -> str:
        inner = self.atom.to_regex()
        if self.min_count == 0 and self.max_count is None:
            return inner + "*"
        if self.min_count == 1 and self.max_count is None:
            return inner + "+"
        if self.max_count == self.min_count:
            return f"{inner}{{{self.min_count}}}"
        if self.max_count is None:
            return f"{inner}{{{self.min_count},}}"
        return f"{inner}{{{self.min_count},{self.max_count}}}"

    def min_length(self) -> int:
        return self.min_count * self.atom.min_length()

    def max_length(self) -> Optional[int]:
        if self.max_count is None:
            return None
        return self.max_count * self.atom.min_length()

    def is_constant(self) -> bool:
        return isinstance(self.atom, Literal) and self.min_count == self.max_count


@dataclasses.dataclass(frozen=True)
class ConstrainedGroup:
    """The constrained (underlined) part of a pattern: ``{{ ... }}``.

    Two strings matching the enclosing pattern are equivalent with respect to
    the pattern iff the substring matched by this group is identical in both.
    """

    elements: tuple[Union[Literal, ClassAtom, Repeat], ...]

    def to_pattern_string(self) -> str:
        inner = "".join(e.to_pattern_string() for e in self.elements)
        return "{{" + inner + "}}"

    def to_regex(self) -> str:
        inner = "".join(e.to_regex() for e in self.elements)
        return f"(?P<constrained>{inner})"

    def min_length(self) -> int:
        return sum(e.min_length() for e in self.elements)

    def max_length(self) -> Optional[int]:
        total = 0
        for element in self.elements:
            part = element.max_length()
            if part is None:
                return None
            total += part
        return total

    def is_constant(self) -> bool:
        return all(e.is_constant() for e in self.elements)


Element = Union[Literal, ClassAtom, Repeat, ConstrainedGroup]


@dataclasses.dataclass(frozen=True)
class Pattern:
    """A full pattern: an anchored concatenation of elements.

    Matching is *anchored*: a string matches the pattern iff the whole string
    is generated by it (``90001`` matches ``\\D{5}``, not ``\\D{3}``).

    At most one :class:`ConstrainedGroup` is allowed — the paper restricts
    attention to constrained patterns with a single constrained part.

    Patterns are cache keys all over the engine (memoized NFAs, shared-DFA
    pattern sets, per-column match sets), so the recursive hash and the
    textual serialization are computed once and cached on the instance.
    """

    elements: tuple[Element, ...]

    def __post_init__(self) -> None:
        groups = [e for e in self.elements if isinstance(e, ConstrainedGroup)]
        if len(groups) > 1:
            raise PatternError(
                "a pattern may contain at most one constrained group "
                f"(got {len(groups)})"
            )

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.elements)
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- structure ---------------------------------------------------------

    @property
    def has_constrained_group(self) -> bool:
        """True if the pattern carries a constrained (underlined) part."""
        return any(isinstance(e, ConstrainedGroup) for e in self.elements)

    @property
    def constrained_group(self) -> Optional[ConstrainedGroup]:
        """The constrained group, or ``None`` if the pattern has none."""
        for element in self.elements:
            if isinstance(element, ConstrainedGroup):
                return element
        return None

    @property
    def constrained_group_index(self) -> Optional[int]:
        """Index of the constrained group among the top-level elements."""
        for i, element in enumerate(self.elements):
            if isinstance(element, ConstrainedGroup):
                return i
        return None

    def flattened_elements(self) -> tuple[Union[Literal, ClassAtom, Repeat], ...]:
        """All atoms/repeats in order, with constrained-group markers removed.

        This is the *embedded* pattern of the paper: the regular expression
        obtained by erasing the underline.
        """
        flat: list[Union[Literal, ClassAtom, Repeat]] = []
        for element in self.elements:
            if isinstance(element, ConstrainedGroup):
                flat.extend(element.elements)
            else:
                flat.append(element)
        return tuple(flat)

    def embedded(self) -> "Pattern":
        """The embedded pattern: same language, no constrained group."""
        return Pattern(self.flattened_elements())

    def constrained_subpattern(self) -> Optional["Pattern"]:
        """The constrained group as a stand-alone pattern (or ``None``)."""
        group = self.constrained_group
        if group is None:
            return None
        return Pattern(group.elements)

    def with_constrained_prefix(self, prefix_length: int) -> "Pattern":
        """Return a copy where the first ``prefix_length`` top-level elements
        form the constrained group.  Raises if a group already exists."""
        if self.has_constrained_group:
            raise PatternError("pattern already has a constrained group")
        if not 0 < prefix_length <= len(self.elements):
            raise PatternError(
                f"prefix_length must be in [1, {len(self.elements)}], got {prefix_length}"
            )
        head = ConstrainedGroup(tuple(self.elements[:prefix_length]))
        return Pattern((head,) + tuple(self.elements[prefix_length:]))

    # -- properties of the generated language ------------------------------

    def is_constant(self) -> bool:
        """True if the pattern generates exactly one string."""
        return all(e.is_constant() for e in self.elements)

    def constant_value(self) -> str:
        """The unique string generated by a constant pattern.

        Raises
        ------
        PatternError
            If the pattern is not constant.
        """
        if not self.is_constant():
            raise PatternError(f"pattern {self} is not constant")
        parts: list[str] = []
        for element in self.flattened_elements():
            if isinstance(element, Literal):
                parts.append(element.char)
            elif isinstance(element, Repeat):
                assert isinstance(element.atom, Literal)
                parts.append(element.atom.char * element.min_count)
            else:  # pragma: no cover - is_constant() rules this out
                raise PatternError("non-constant element in constant pattern")
        return "".join(parts)

    def min_length(self) -> int:
        """Length of the shortest string generated by the pattern."""
        return sum(e.min_length() for e in self.elements)

    def max_length(self) -> Optional[int]:
        """Length of the longest generated string, or ``None`` if unbounded."""
        total = 0
        for element in self.elements:
            part = element.max_length()
            if part is None:
                return None
            total += part
        return total

    def specificity(self) -> float:
        """A heuristic score of how specific the pattern is.

        Literals count 3, bounded classes 2, unbounded repeats of classes 1.
        Used when ranking competing patterns during discovery (the most
        specific pattern that still covers the group is preferred,
        cf. the substring-pruning optimization in Section 4.4).
        """
        score = 0.0
        for element in self.flattened_elements():
            if isinstance(element, Literal):
                score += 3.0
            elif isinstance(element, ClassAtom):
                score += 2.0
            elif isinstance(element, Repeat):
                unit = 3.0 if isinstance(element.atom, Literal) else 2.0
                if element.max_count is None:
                    score += 1.0
                else:
                    score += unit * element.min_count
        return score

    # -- serialization -----------------------------------------------------

    def to_pattern_string(self) -> str:
        """Serialize back to the textual pattern syntax (cached)."""
        cached = self.__dict__.get("_pattern_string")
        if cached is None:
            cached = "".join(e.to_pattern_string() for e in self.elements)
            object.__setattr__(self, "_pattern_string", cached)
        return cached

    def to_regex(self, anchored: bool = True) -> str:
        """Translate to an equivalent Python ``re`` expression.

        The constrained group becomes the named group ``constrained``.
        """
        body = "".join(e.to_regex() for e in self.elements)
        if anchored:
            return r"\A" + body + r"\Z"
        return body

    def __str__(self) -> str:
        return self.to_pattern_string()

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)


def literal_pattern(value: str, constrain_all: bool = False) -> Pattern:
    """Build a constant pattern matching exactly ``value``.

    Parameters
    ----------
    value:
        The constant string.
    constrain_all:
        If True, the whole constant becomes the constrained group (the
        common case for constant PFD tableau cells, where equivalence means
        exact equality on the full value).
    """
    atoms: tuple[Literal, ...] = tuple(Literal(c) for c in value)
    if constrain_all and atoms:
        return Pattern((ConstrainedGroup(atoms),))
    return Pattern(atoms)


def any_string_pattern() -> Pattern:
    """The pattern ``\\A*`` that matches every string (the wildcard body)."""
    return Pattern((Repeat(ClassAtom(CharClass.ANY), 0, None),))
