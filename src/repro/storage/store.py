"""The SQLite backing store of the out-of-core ``sql`` backend.

One :class:`SqlStore` owns a private temporary on-disk database holding a
dictionary-encoded copy of a relation:

``rows(rid INTEGER PRIMARY KEY, c0, c1, ...)``
    One row per tuple; ``c<i>`` is the dictionary code of attribute ``i``
    (schema order).  Row ids are dense and append-ordered, matching the
    in-memory engine's row numbering exactly.
``vals(attr, code, value)``
    The dictionary table: one row per distinct ``(attribute, value)`` pair
    with its code, in first-seen order per attribute.

The *encode state* (distinct values, value → code map, per-code counts)
stays in process memory — the paper's working assumption, shared by the
whole engine, is that the distinct values of a column always fit even when
the decoded rows do not.  Everything per-row lives in SQLite and is written
and read in bounded batches, so peak memory is O(chunk + distinct), not
O(rows).
"""

from __future__ import annotations

import sqlite3
from array import array
from typing import Iterable, Iterator, Optional, Sequence

from ..engine.dictionary import DictionaryDelta, DictionaryUpdate

#: Rows per INSERT batch during ingestion/copy (peak-memory bound).
BATCH_ROWS = 8192

#: Code sets up to this size are inlined as SQL literal lists; larger sets
#: go through a temporary table (SQLite's parser dislikes huge IN lists).
MAX_INLINE_CODES = 500


class SqlStore:
    """Dictionary-encoded rows in a private temporary SQLite database."""

    def __init__(self, attribute_names: Sequence[str]):
        self.attributes = tuple(attribute_names)
        self.row_count = 0
        # Live encode state, one entry per attribute (shared with the
        # SqlDictionaryColumn wrappers layered on top).
        self.values: dict[str, list[str]] = {name: [] for name in self.attributes}
        self.code_of: dict[str, dict[str, int]] = {name: {} for name in self.attributes}
        self.counts: dict[str, list[int]] = {name: [] for name in self.attributes}
        self._positions = {name: i for i, name in enumerate(self.attributes)}
        self._temp_serial = 0
        # True once any in-place update has run (mirrors
        # DictionaryColumn.has_updates for wrappers built after the fact).
        self.has_updates = False
        # sqlite3.connect("") creates a private temporary *on-disk* database
        # that SQLite deletes when the connection closes.
        self._conn = sqlite3.connect("")
        cursor = self._conn
        cursor.execute("PRAGMA journal_mode=OFF")
        cursor.execute("PRAGMA synchronous=OFF")
        cursor.execute("PRAGMA cache_size=-8192")
        cursor.execute("PRAGMA temp_store=FILE")
        code_columns = ", ".join(f"c{i} INTEGER NOT NULL" for i in range(len(self.attributes)))
        cursor.execute(f"CREATE TABLE rows (rid INTEGER PRIMARY KEY{', ' if code_columns else ''}{code_columns})")
        cursor.execute("CREATE TABLE vals (attr TEXT NOT NULL, code INTEGER NOT NULL, value TEXT NOT NULL)")

    # -- identity -------------------------------------------------------------

    def column_index(self, name: str) -> int:
        return self._positions[name]

    def close(self) -> None:
        self._conn.close()

    # -- SQL plumbing ---------------------------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        return self._conn.execute(sql, params)

    def fetch_one(self, sql: str, params: Sequence = ()) -> tuple:
        return self._conn.execute(sql, params).fetchone()

    def fetch_value(self, sql: str, params: Sequence = ()):
        return self._conn.execute(sql, params).fetchone()[0]

    def int_map_table(self, pairs: Iterable[tuple[int, int]]) -> str:
        """Materialize ``(key, val)`` int pairs as a keyed scratch table."""
        self._temp_serial += 1
        name = f"map_{self._temp_serial}"
        self._conn.execute(f"CREATE TABLE {name} (code INTEGER PRIMARY KEY, comp INTEGER NOT NULL)")
        self._conn.executemany(f"INSERT INTO {name} VALUES (?, ?)", pairs)
        return name

    def int_set_table(self, values: Iterable[int]) -> str:
        """Materialize a set of ints as a single-column scratch table."""
        self._temp_serial += 1
        name = f"set_{self._temp_serial}"
        self._conn.execute(f"CREATE TABLE {name} (v INTEGER PRIMARY KEY)")
        self._conn.executemany(f"INSERT OR IGNORE INTO {name} VALUES (?)", ((v,) for v in values))
        return name

    def extend_int_map(self, name: str, pairs: Iterable[tuple[int, int]]) -> None:
        self._conn.executemany(f"INSERT INTO {name} VALUES (?, ?)", pairs)

    def drop_table(self, name: str) -> None:
        self._conn.execute(f"DROP TABLE IF EXISTS {name}")

    def code_set_sql(self, expr: str, codes: Sequence[int]) -> tuple[str, list[str]]:
        """``expr IN <codes>`` as SQL, plus scratch tables to drop after use."""
        if len(codes) <= MAX_INLINE_CODES:
            return f"{expr} IN ({', '.join(str(int(c)) for c in codes)})", []
        table = self.int_set_table(codes)
        return f"{expr} IN (SELECT v FROM {table})", [table]

    # -- ingestion ------------------------------------------------------------

    def append(self, normalized_rows: Sequence[Sequence[str]]) -> dict[str, DictionaryDelta]:
        """Append encoded rows; returns one delta per attribute.

        ``normalized_rows`` must already be lists of strings in schema order
        (the relation layer normalizes).  New distinct values get fresh codes
        after all existing ones — the same first-seen contract as
        :meth:`repro.engine.dictionary.DictionaryColumn.extend` — so the
        returned :class:`DictionaryDelta` objects plug straight into the
        partition cache's incremental maintenance.
        """
        start_row = self.row_count
        width = len(self.attributes)
        old_distinct = {name: len(self.values[name]) for name in self.attributes}
        appended: dict[str, list[int]] = {name: [] for name in self.attributes}
        new_vals: list[tuple[str, int, str]] = []
        encoded: list[tuple[int, ...]] = []
        rid = start_row
        for row in normalized_rows:
            codes = [rid]
            for i in range(width):
                name = self.attributes[i]
                value = row[i]
                code_of = self.code_of[name]
                code = code_of.get(value)
                if code is None:
                    code = len(code_of)
                    code_of[value] = code
                    self.values[name].append(value)
                    self.counts[name].append(0)
                    new_vals.append((name, code, value))
                self.counts[name][code] += 1
                appended[name].append(code)
                codes.append(code)
            encoded.append(tuple(codes))
            rid += 1
        placeholders = ", ".join("?" for _ in range(width + 1))
        insert = f"INSERT INTO rows VALUES ({placeholders})"
        for start in range(0, len(encoded), BATCH_ROWS):
            self._conn.executemany(insert, encoded[start : start + BATCH_ROWS])
        if new_vals:
            self._conn.executemany("INSERT INTO vals VALUES (?, ?, ?)", new_vals)
        self.row_count = rid
        return {
            name: DictionaryDelta(
                attribute=name,
                start_row=start_row,
                appended_codes=tuple(appended[name]),
                old_distinct_count=old_distinct[name],
            )
            for name in self.attributes
        }

    # -- point / bulk access --------------------------------------------------

    def code_at(self, row_id: int, col_index: int) -> int:
        row = self.fetch_one(f"SELECT c{col_index} FROM rows WHERE rid = ?", (row_id,))
        if row is None:
            raise IndexError(f"row id {row_id} out of range")
        return row[0]

    def cell(self, row_id: int, name: str) -> str:
        return self.values[name][self.code_at(row_id, self.column_index(name))]

    def row_codes(self, row_id: int) -> tuple[int, ...]:
        cols = ", ".join(f"c{i}" for i in range(len(self.attributes)))
        row = self.fetch_one(f"SELECT {cols} FROM rows WHERE rid = ?", (row_id,))
        if row is None:
            raise IndexError(f"row id {row_id} out of range")
        return row

    def codes_for(self, col_index: int) -> "array":
        """The full code vector of one column as a compact int array."""
        codes = array("i")
        cursor = self._conn.execute(f"SELECT c{col_index} FROM rows ORDER BY rid")
        while True:
            chunk = cursor.fetchmany(BATCH_ROWS)
            if not chunk:
                break
            codes.extend(row[0] for row in chunk)
        return codes

    def iter_code_rows(self) -> Iterator[tuple[int, ...]]:
        """All rows' code tuples (without rid), in row order, batched."""
        cols = ", ".join(f"c{i}" for i in range(len(self.attributes)))
        cursor = self._conn.execute(f"SELECT {cols} FROM rows ORDER BY rid")
        while True:
            chunk = cursor.fetchmany(BATCH_ROWS)
            if not chunk:
                break
            yield from chunk

    def cooccurrence_counts(
        self, lhs_col: int, lhs_codes: Sequence[int], rhs_col: int, max_rid: Optional[int] = None
    ) -> dict[int, int]:
        """``rhs`` code histogram over the rows whose ``lhs`` code is in the set."""
        in_sql, scratch = self.code_set_sql(f"c{lhs_col}", lhs_codes)
        bound = f" AND rid < {int(max_rid)}" if max_rid is not None else ""
        try:
            cursor = self.execute(
                f"SELECT c{rhs_col}, COUNT(*) FROM rows WHERE {in_sql}{bound} GROUP BY c{rhs_col}"
            )
            return dict(cursor.fetchall())
        finally:
            for table in scratch:
                self.drop_table(table)

    # -- mutation -------------------------------------------------------------

    def update_cell(self, row_id: int, name: str, value: str) -> None:
        col = self.column_index(name)
        old_code = self.code_at(row_id, col)
        code_of = self.code_of[name]
        code = code_of.get(value)
        if code is None:
            code = len(code_of)
            code_of[value] = code
            self.values[name].append(value)
            self.counts[name].append(0)
            self._conn.execute("INSERT INTO vals VALUES (?, ?, ?)", (name, code, value))
        if code == old_code:
            return
        self.counts[name][old_code] -= 1
        self.counts[name][code] += 1
        self.has_updates = True
        self._conn.execute(f"UPDATE rows SET c{col} = ? WHERE rid = ?", (code, row_id))

    def update_rows(
        self, assignments: "dict[str, dict[int, str]]"
    ) -> dict[str, DictionaryUpdate]:
        """Batch-overwrite cells; returns one effective update per attribute.

        ``assignments`` maps attribute name -> ``{row_id: new_value}``.  New
        distinct values get fresh codes after all existing ones (same
        first-seen contract as :meth:`append`); codes whose last row is
        rewritten away become zero-count tombstones, never renumbered.
        Assignments matching the stored value are dropped, so the returned
        :class:`DictionaryUpdate` objects carry effective changes only.
        """
        results: dict[str, DictionaryUpdate] = {}
        for name in self.attributes:
            per_attr = assignments.get(name)
            if not per_attr:
                continue
            col = self.column_index(name)
            values = self.values[name]
            code_of = self.code_of[name]
            counts = self.counts[name]
            old_distinct = len(values)
            effective: list[tuple[int, int, int]] = []
            writes: list[tuple[int, int]] = []
            new_vals: list[tuple[str, int, str]] = []
            for row_id in sorted(per_attr):
                value = per_attr[row_id]
                old_code = self.code_at(row_id, col)
                code = code_of.get(value)
                if code is None:
                    code = len(code_of)
                    code_of[value] = code
                    values.append(value)
                    counts.append(0)
                    new_vals.append((name, code, value))
                if code == old_code:
                    continue
                counts[old_code] -= 1
                counts[code] += 1
                effective.append((row_id, old_code, code))
                writes.append((code, row_id))
            if new_vals:
                self._conn.executemany("INSERT INTO vals VALUES (?, ?, ?)", new_vals)
            if writes:
                self._conn.executemany(f"UPDATE rows SET c{col} = ? WHERE rid = ?", writes)
                self.has_updates = True
            results[name] = DictionaryUpdate(
                attribute=name,
                assignments=tuple(effective),
                old_distinct_count=old_distinct,
            )
        return results

    # -- copy -----------------------------------------------------------------

    def copy(self) -> "SqlStore":
        """An independent store with identical rows, codes, and dictionaries."""
        clone = SqlStore(self.attributes)
        clone.has_updates = self.has_updates
        for name in self.attributes:
            clone.values[name] = list(self.values[name])
            clone.code_of[name] = dict(self.code_of[name])
            clone.counts[name] = list(self.counts[name])
        clone._conn.executemany(
            "INSERT INTO vals VALUES (?, ?, ?)",
            (
                (name, code, value)
                for name in self.attributes
                for code, value in enumerate(clone.values[name])
            ),
        )
        width = len(self.attributes)
        placeholders = ", ".join("?" for _ in range(width + 1))
        insert = f"INSERT INTO rows VALUES ({placeholders})"
        cursor = self._conn.execute("SELECT * FROM rows ORDER BY rid")
        while True:
            chunk = cursor.fetchmany(BATCH_ROWS)
            if not chunk:
                break
            clone._conn.executemany(insert, chunk)
        clone.row_count = self.row_count
        return clone
